#!/usr/bin/env python
"""Performance baseline: simulator, checker, sweep, and sharded throughput.

Unlike the figure/table benchmarks (which reproduce the paper's *results*),
this file tracks how fast the reproduction itself runs, so every PR has a
trajectory to beat.  The meters:

* **simulator** — events/sec through the network + round engine on seeded
  workloads over three protocols, measured on **both simulation engines**
  (``event`` per-message loop vs ``batched`` wave-stepped) across a spaced
  and a wave-dense concurrency regime; every (workload, protocol) pair runs
  on both engines and the run *asserts* equal event counts and equal wire
  trace fingerprints, so CI fails on an engine divergence, never on timing;
* **checker** — linearizability verdicts/sec of the bitmask search on
  adversarial (overlap-heavy, duplicate-value) histories, against the
  frozenset reference implementation (whose verdicts must match — the run
  *asserts* equivalence, so CI fails on a checker divergence, never on
  timing noise);
* **sweep** — trials/sec of a 4-protocol sweep executed serially and with
  ``parallel=True``, asserting byte-identical ``to_dict()`` output;
* **sharded** — events/sec of the keyspace-sharded backend over a
  keys × protocol grid (skewed keyed workloads through the multiplexed
  object handlers), asserting per-key atomicity on every cell;
* **explore** — schedules/sec of the bounded schedule explorer: one
  certification sweep (a clean configuration over its full bounded
  schedule space) and one refutation sweep (an under-provisioned
  fast-read stack whose known atomicity violation the run *asserts* is
  found, minimized, and replayed byte-identically); the certification
  sweep runs on both simulation engines with asserted outcome parity;
* **storage** — the durability seam: ops/sec of a crash-recover run on
  both engines with *asserted* result parity, the run-time overhead of
  the ``mem`` and ``dir`` durability levels against a ``none`` baseline,
  and the retained-space meter on a superseded-value workload (the run
  *asserts* GC shrinks retention);
* **reconfig** — availability under churn: a rolling-replacement run
  (every original object permanently lost and repaired online through the
  membership-epoch backend) on both engines with *asserted* result parity
  and the *asserted* two-rounds-per-repair profile, plus the availability
  meter — operations completed and worst/p99 client latency (simulated
  ticks) during repair windows vs steady state;
* **consistency** — the spectrum layer: k-atomicity checks/sec of the
  greedy SWMR verifier against the plain atomicity checker on adversarial
  single-writer histories (the run *asserts* verdict-for-verdict k = 1
  parity), and the bounded-stale backend's measured staleness by
  k ∈ {1, 2, 4} (the run *asserts* ``max ≤ k − 1`` and byte-identical
  event/batched payloads on every bound);
* **obs** — the observability axis: ops/sec with ``observe`` off vs on
  (the on/off ratio is *recorded* for the trajectory, never asserted —
  timing is noise on shared runners), with *asserted* determinism gates:
  a disabled run's ``to_dict()`` is byte-identical to a never-observed
  run's, observing changes no verdict (the observed payload minus its
  ``events``/``elapsed_s`` keys equals the disabled payload exactly), and
  span/metric dumps are byte-identical across both simulation engines;
* **robustness** — schedules/sec of the certified frontier walk on the
  under-provisioned fast-read stack with fault-timing choice points
  swept, on both engines; the run *asserts* the ladder verdicts
  (atomicity refuted, k-atomic(2) certified, degradation flagged), that
  the separating witness carries a fault-trigger decision and replays
  byte-identically, and that the engines' frontier payloads agree modulo
  the engine tag — never timing.

The results land in ``BENCH_perf.json`` at the repository root (schema
documented in ``benchmarks/README.md``).  Run it directly::

    PYTHONPATH=src python benchmarks/bench_perf.py [--quick] [--output PATH]

``--quick`` shrinks every meter to a smoke-test size for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import Cluster, get_spec, sweep
from repro.sim.tracing import trace_fingerprint
from repro.registers.base import RegisterSystem
from repro.sim.batched import ENGINES
from repro.spec.history import History, OperationRecord
from repro.spec.linearizability import is_linearizable, is_linearizable_reference
from repro.types import (
    BOTTOM,
    ProcessId,
    fresh_operation_id,
    reader_id,
    scoped_operation_serials,
    writer_id,
)
from repro.workloads.generator import WorkloadGenerator, apply_plan

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 9

SWEEP_PROTOCOLS = ("abd", "fast-regular", "secret-token", "atomic-fast-regular")


# --------------------------------------------------------------------- #
# Simulator throughput: event vs batched engine
# --------------------------------------------------------------------- #

#: Concurrency regimes of the simulator meter.  ``spaced`` is the PR-2
#: baseline shape (sparse waves — the engine-dispatch-heavy regime);
#: ``concurrent`` keeps eight clients continuously in flight so every tick
#: carries multi-round waves (the regime the batched engine's per-object
#: grouping and run batching target).
SIMULATOR_REGIMES = (
    {"name": "spaced", "n_readers": 4, "spacing": 30, "op_scale": 1},
    {"name": "concurrent", "n_readers": 8, "spacing": 10, "op_scale": 2},
)


def bench_simulator(quick: bool) -> dict:
    """Events/sec on both simulation engines over seeded workloads.

    Every workload runs on the ``event`` engine and the ``batched`` engine
    back to back.  Per-engine seconds are the **minimum over timing
    repetitions** of the summed workload time: repetitions replay identical
    seeded workloads, and the minimum is the standard low-noise cost
    estimator on shared machines (contention only ever adds time; both
    engines get the identical treatment).  All timed repetitions run first
    — repetition-outermost, engines interleaved per workload — so on
    quota-throttled runners the measurement window stays as early and
    short as possible; the untimed equivalence pass afterwards re-executes
    every workload on both engines and *asserts* equal event counts and
    byte-identical wire traces (fingerprint equality), so CI fails on an
    engine divergence — never on timing.
    """
    operations = 40 if quick else 150
    seeds = 1 if quick else 2
    repetitions = 2 if quick else 3
    protocols = ("abd", "fast-regular", "secret-token")
    engines = {
        engine: {"events": 0, "seconds": 0.0, "regimes": {}} for engine in ENGINES
    }

    def execute(engine: str, regime: dict, seed: int, name: str) -> tuple:
        with scoped_operation_serials():
            system = RegisterSystem(
                get_spec(name).build(n_readers=regime["n_readers"]),
                t=1, n_readers=regime["n_readers"], engine=engine,
            )
            plans = WorkloadGenerator(
                seed=seed, n_readers=regime["n_readers"], spacing=regime["spacing"]
            ).plan(operations * regime["op_scale"])
            apply_plan(system, plans)
            started = time.perf_counter()
            events = system.run()
            elapsed = time.perf_counter() - started
            return events, elapsed, system

    # Timed phase: repetition-outermost, nothing but simulation runs.
    totals = {
        regime["name"]: {engine: [0.0] * repetitions for engine in ENGINES}
        for regime in SIMULATOR_REGIMES
    }
    for repetition in range(repetitions):
        for regime in SIMULATOR_REGIMES:
            for seed in range(seeds):
                for name in protocols:
                    for engine in ENGINES:
                        _, elapsed, _ = execute(engine, regime, seed, name)
                        totals[regime["name"]][engine][repetition] += elapsed

    # Untimed equivalence pass: every workload once more on both engines.
    regime_events = {
        regime["name"]: {engine: 0 for engine in ENGINES}
        for regime in SIMULATOR_REGIMES
    }
    for regime in SIMULATOR_REGIMES:
        for seed in range(seeds):
            for name in protocols:
                observed = {}
                for engine in ENGINES:
                    events, _, system = execute(engine, regime, seed, name)
                    regime_events[regime["name"]][engine] += events
                    observed[engine] = (events, trace_fingerprint(system.trace))
                reference = observed[ENGINES[0]]
                for engine, outcome in observed.items():
                    # Equivalence gate: engines must execute the identical
                    # run — same event count, byte-identical wire trace.
                    assert outcome == reference, (
                        f"engine {engine!r} diverged from {ENGINES[0]!r} "
                        f"on {name} ({regime['name']}, seed {seed}): "
                        f"{outcome[0]} events / trace {outcome[1]} vs "
                        f"{reference[0]} / {reference[1]}"
                    )

    for regime in SIMULATOR_REGIMES:
        label = regime["name"]
        for engine in ENGINES:
            best = min(totals[label][engine])
            events = regime_events[label][engine]
            engines[engine]["events"] += events
            engines[engine]["seconds"] += best
            engines[engine]["regimes"][label] = {
                "events": events,
                "seconds": round(best, 4),
                "events_per_sec": round(events / best),
            }

    for engine in ENGINES:
        entry = engines[engine]
        entry["seconds"] = round(entry["seconds"], 4)
        entry["events_per_sec"] = round(entry["events"] / entry["seconds"])

    event, batched = engines["event"], engines["batched"]
    return {
        "protocols": list(protocols),
        "operations_per_run": operations,
        "workload_seeds": seeds,
        "timing_repetitions": repetitions,
        "regimes": [
            {key: regime[key] for key in ("name", "n_readers", "spacing", "op_scale")}
            for regime in SIMULATOR_REGIMES
        ],
        "engines": engines,
        # Headline: events/sec of the default (event) engine.  Only loosely
        # comparable to schema v1-v3: v4 times system.run() alone (not
        # construction/plan generation) and reports the min over timing
        # repetitions, so part of the v3→v4 jump is estimator, not engine.
        "events": event["events"],
        "seconds": event["seconds"],
        "events_per_sec": event["events_per_sec"],
        "batched_speedup": round(
            batched["events_per_sec"] / event["events_per_sec"], 2
        ),
        "identical_runs": True,  # asserted above, per workload
    }


# --------------------------------------------------------------------- #
# Checker throughput
# --------------------------------------------------------------------- #


def _op(kind, client, invoked, responded, value) -> OperationRecord:
    return OperationRecord(
        op_id=fresh_operation_id(client, kind), kind=kind, client=client,
        invoked_at=invoked, invocation_step=invoked, value=value,
        responded_at=responded, response_step=responded,
    )


def adversarial_history(seed: int, n_clients: int = 8, ops_per_client: int = 2,
                        n_values: int = 3) -> History:
    """An overlap-heavy multi-writer history that stresses the search.

    Half the clients write values drawn from a small pool (duplicate write
    values multiply the feasible frontiers), intervals are long so almost
    everything is concurrent, and reads sample the same pool — the regime
    where memoized frontier search dominates the checker's cost.
    """
    rng = random.Random(seed)
    records = []
    for index in range(n_clients):
        is_writer = index < n_clients // 2
        client = (
            ProcessId("writer", index + 1) if is_writer else reader_id(index + 1)
        )
        clock = rng.randint(1, 4)
        for _ in range(ops_per_client):
            duration = rng.randint(8, 30)
            value = f"v{rng.randint(1, n_values)}"
            records.append(
                _op("write" if is_writer else "read", client, clock,
                    clock + duration, value)
            )
            clock += duration + rng.randint(1, 3)
    return History(records)


def bench_checker(quick: bool) -> dict:
    """Bitmask vs reference checker on identical adversarial histories."""
    count = 25 if quick else 120
    histories = [adversarial_history(seed) for seed in range(count)]

    started = time.perf_counter()
    bitmask_verdicts = [is_linearizable(history) for history in histories]
    bitmask_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference_verdicts = [is_linearizable_reference(history) for history in histories]
    reference_seconds = time.perf_counter() - started

    # Equivalence gate: a divergence is a checker bug, fail loudly.
    disagreements = [
        index
        for index, (new, old) in enumerate(zip(bitmask_verdicts, reference_verdicts))
        if new != old
    ]
    assert not disagreements, (
        f"bitmask checker disagrees with the frozenset reference on "
        f"history seeds {disagreements}"
    )

    return {
        "histories": count,
        "operations_per_history": 16,
        "linearizable_fraction": round(sum(bitmask_verdicts) / count, 3),
        "bitmask_seconds": round(bitmask_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "bitmask_histories_per_sec": round(count / bitmask_seconds),
        "reference_histories_per_sec": round(count / reference_seconds),
        "speedup": round(reference_seconds / bitmask_seconds, 2),
        "verdicts_equal": True,
    }


# --------------------------------------------------------------------- #
# Sweep engine: serial vs parallel
# --------------------------------------------------------------------- #


def bench_sweep(quick: bool, trials: int | None = None,
                workers: int | None = None) -> dict:
    """Trials/sec of a 4-protocol sweep, serial vs process-pool parallel."""
    trials = trials if trials is not None else (25 if quick else 200)
    kwargs = dict(
        t=1,
        n_readers=3,
        scenarios=("fault-free",),
        operations=12,
        spacing=60,
        trials=trials,
        seed=11,
        checks=("linearizability",),
    )

    started = time.perf_counter()
    serial = sweep(SWEEP_PROTOCOLS, **kwargs)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = sweep(SWEEP_PROTOCOLS, parallel=True, max_workers=workers, **kwargs)
    parallel_seconds = time.perf_counter() - started

    serial_payload = json.dumps(serial.to_dict(), sort_keys=True)
    parallel_payload = json.dumps(parallel.to_dict(), sort_keys=True)
    # Contract gate: parallel execution must be invisible in the results.
    assert serial_payload == parallel_payload, (
        "parallel sweep produced different results than serial"
    )

    total_trials = trials * len(SWEEP_PROTOCOLS)
    return {
        "protocols": list(SWEEP_PROTOCOLS),
        "trials_per_protocol": trials,
        "total_trials": total_trials,
        "workers": workers or os.cpu_count() or 1,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "serial_trials_per_sec": round(total_trials / serial_seconds, 1),
        "parallel_trials_per_sec": round(total_trials / parallel_seconds, 1),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "identical_results": True,
    }


# --------------------------------------------------------------------- #
# Sharded backend: events/sec over a keys × protocol grid
# --------------------------------------------------------------------- #


def bench_sharded(quick: bool) -> dict:
    """Events/sec of keyspace-sharded clusters (keys × protocol grid).

    Each cell builds a sharded backend (one register per key on shared
    physical objects), replays a skewed keyed workload, and checks
    atomicity per key — the run *asserts* every shard's verdict, so CI
    fails on a correctness regression, never on timing.
    """
    operations = 24 if quick else 80
    key_counts = (2, 8) if quick else (2, 8, 32)
    protocols = ("abd", "fast-regular")
    grid = []
    total_events = 0
    total_seconds = 0.0
    for name in protocols:
        for key_count in key_counts:
            cluster = (
                Cluster(name, t=1, n_readers=3, backend="sharded", keys=key_count)
                .with_workload(operations=operations, spacing=30, key_skew=1.0)
                .check("atomicity")
            )
            result = cluster.run(trials=1, seed=13, keep_history=False)
            assert result.ok, (
                f"sharded {name} with {key_count} keys failed: {result.failures()}"
            )
            backend = cluster.build_backend()
            plans = WorkloadGenerator(
                seed=13, n_readers=3, spacing=30, keys=key_count, key_skew=1.0
            ).plan(operations)
            for plan in plans:
                backend.schedule(plan)
            cell_started = time.perf_counter()
            events = backend.run()
            cell_seconds = time.perf_counter() - cell_started
            total_events += events
            total_seconds += cell_seconds
            grid.append({
                "protocol": name,
                "keys": key_count,
                "events": events,
                "seconds": round(cell_seconds, 4),
                "events_per_sec": round(events / cell_seconds),
            })
    # The aggregate counts only the timed backend.run() windows, so the
    # metric tracks simulator throughput — not the per-cell verification
    # runs or workload generation around them.
    return {
        "protocols": list(protocols),
        "key_counts": list(key_counts),
        "operations_per_cell": operations,
        "key_skew": 1.0,
        "grid": grid,
        "events": total_events,
        "seconds": round(total_seconds, 4),
        "events_per_sec": round(total_events / total_seconds),
        "per_key_atomicity": True,  # asserted above, not just reported
    }


# --------------------------------------------------------------------- #
# Schedule explorer: schedules/sec, certification + refutation
# --------------------------------------------------------------------- #


def bench_explore(quick: bool) -> dict:
    """Schedules/sec of the bounded model checker over two sweeps.

    The certification cell sweeps a clean fast-regular configuration to
    exhaustion; the refutation cell sweeps the under-provisioned fast-read
    stack (t=1 provisioning, two stale-echo objects) and *asserts* that the
    known stale-read violation is found, minimized to a single held link,
    and replayed byte-identically — so CI fails on an explorer-correctness
    regression, never on timing.
    """
    granularity = "operation" if quick else "round"
    certify_cluster = (
        Cluster("fast-regular", t=1)
        .with_operations([("write", "v1", 0), ("read", 1, 120), ("read", 2, 240)])
    )
    engine_cells = {}
    certify_outcomes = {}
    for engine in ENGINES:
        started = time.perf_counter()
        certified = certify_cluster.with_engine(engine).explore(
            max_holds=2, granularity=granularity
        )
        seconds = time.perf_counter() - started
        assert certified.certified, (
            f"fault-free fast-regular failed certification on {engine}: "
            f"{[w.describe() for w in certified.witnesses]}"
        )
        payload = certified.to_dict()
        payload.pop("engine")
        certify_outcomes[engine] = json.dumps(payload, sort_keys=True)
        engine_cells[engine] = {
            "schedules": certified.stats.explored,
            "seconds": round(seconds, 4),
            "schedules_per_sec": round(certified.stats.explored / seconds, 1),
        }
    # Engine-parity gate: both engines must certify the identical bounded
    # space with identical stats and pruning decisions.
    assert certify_outcomes["batched"] == certify_outcomes["event"], (
        "batched-engine certification diverged from the event engine"
    )
    certify_seconds = engine_cells["event"]["seconds"]

    refute_cluster = (
        Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
        .with_faults("stale-echo", count=2)
        .with_operations([("write", "v1", 0), ("read", 1, 100)])
        .check("atomicity")
    )
    started = time.perf_counter()
    refuted = refute_cluster.explore(max_holds=2)
    refute_seconds = time.perf_counter() - started
    # Correctness gates: the violation must be found, minimal, and replayable.
    assert refuted.violations >= 1, "known violation not found"
    witness = refuted.witnesses[0]
    assert len(witness.decisions) == 1, "witness not minimized to one held link"
    assert witness.reproduces(), "witness replay diverged"

    schedules = certified.stats.explored + refuted.stats.explored
    seconds = certify_seconds + refute_seconds
    return {
        "granularity_certify": granularity,
        "certify": {
            "schedules": certified.stats.explored,
            "alphabet": certified.alphabet,
            "pruned": certified.stats.pruned_duplicate + certified.stats.pruned_seen
                      + certified.stats.pruned_inactive,
            "seconds": round(certify_seconds, 4),
            "certified": True,  # asserted above
            "engines": engine_cells,
            "batched_speedup": round(
                engine_cells["batched"]["schedules_per_sec"]
                / engine_cells["event"]["schedules_per_sec"], 2
            ),
            "identical_outcomes": True,  # asserted above
        },
        "refute": {
            "schedules": refuted.stats.explored,
            "violations": refuted.violations,
            "minimization_runs": refuted.stats.minimization_runs,
            "seconds": round(refute_seconds, 4),
            "witness_replays": True,  # asserted above
        },
        "schedules": schedules,
        "seconds": round(seconds, 4),
        "schedules_per_sec": round(schedules / seconds, 1),
    }


# --------------------------------------------------------------------- #
# Storage seam: recovery parity, durability overhead, retained space
# --------------------------------------------------------------------- #


def bench_storage(quick: bool) -> dict:
    """The durability seam: recovery parity, overhead, and retained space.

    Three cells.  **recovery** runs a crash-recovering ABD cluster on both
    simulation engines and *asserts* byte-identical ``RunResult.to_dict()``
    payloads (the engine tag aside), timing each engine.  **overhead**
    replays one fault-free workload at every durability level and reports
    run time relative to the ``durability="none"`` baseline.  **meter**
    runs a writes-only (every value superseded) workload and reports the
    space meter's figures, *asserting* that GC shrinks both bytes and
    distinct timestamps retained — so CI fails on a durability-semantics
    regression, never on timing.
    """
    operations = 12 if quick else 60
    trials = 2 if quick else 5

    def recovering(engine: str) -> Cluster:
        return (
            Cluster("abd", t=1, n_readers=3, engine=engine, durability="mem")
            .with_faults("crash-recover", survive_messages=4, rejoin_after=2)
            .with_workload(operations=operations, spacing=40)
            .check("atomicity")
        )

    recovery_cells = {}
    payloads = {}
    for engine in ENGINES:
        started = time.perf_counter()
        result = recovering(engine).run(trials=trials, seed=7, keep_history=False)
        seconds = time.perf_counter() - started
        assert result.ok, f"crash-recover run failed on {engine}: {result.failures()}"
        payload = result.to_dict()
        payload.pop("engine", None)
        payloads[engine] = json.dumps(payload, sort_keys=True)
        total_ops = trials * operations
        recovery_cells[engine] = {
            "operations": total_ops,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(total_ops / seconds, 1),
        }
    # Parity gate: recovery must be invisible to the equivalence contract.
    assert payloads["batched"] == payloads["event"], (
        "crash-recover run diverged between the event and batched engines"
    )

    def plain(durability: str) -> Cluster:
        return (
            Cluster("abd", t=1, n_readers=3, durability=durability)
            .with_workload(operations=operations, spacing=40)
            .check("atomicity")
        )

    overhead = {}
    baseline_seconds = None
    for durability in ("none", "mem", "dir"):
        started = time.perf_counter()
        result = plain(durability).run(trials=trials, seed=9, keep_history=False)
        seconds = time.perf_counter() - started
        assert result.ok
        cell = {"seconds": round(seconds, 4)}
        if durability == "none":
            baseline_seconds = seconds
        else:
            cell["relative"] = round(seconds / baseline_seconds, 2)
        overhead[durability] = cell

    meter_result = (
        Cluster("abd", t=1, durability="mem")
        .with_workload(operations=operations, reads=0.0, spacing=30)
        .check("atomicity")
        .run(trials=1, seed=11, keep_history=False)
    )
    assert meter_result.ok
    meter = meter_result.trials[0].storage
    # Semantics gate: a writes-only workload supersedes every earlier
    # value, so compaction must reclaim space and old timestamps.
    assert meter["gc_retained_bytes"] < meter["retained_bytes"], (
        "space-meter GC failed to shrink a superseded-value journal"
    )
    assert meter["gc_retained_timestamps"] < meter["retained_timestamps"], (
        "space-meter GC failed to drop superseded timestamps"
    )

    return {
        "operations_per_run": operations,
        "trials": trials,
        "recovery": {
            "engines": recovery_cells,
            "identical_results": True,  # asserted above
        },
        "overhead": overhead,
        "meter": {
            "workload": "writes-only (every value superseded)",
            "retained_bytes": meter["retained_bytes"],
            "retained_records": meter["retained_records"],
            "retained_timestamps": meter["retained_timestamps"],
            "gc_retained_bytes": meter["gc_retained_bytes"],
            "gc_retained_records": meter["gc_retained_records"],
            "gc_retained_timestamps": meter["gc_retained_timestamps"],
            "gc_freed_bytes": meter["gc_freed_bytes"],
            "gc_shrinks_retention": True,  # asserted above
        },
    }


# --------------------------------------------------------------------- #
# Reconfig backend: availability through online repair
# --------------------------------------------------------------------- #


def _latency_stats(values: list[int]) -> dict:
    """Worst / p99 / mean over per-operation latencies in simulated ticks."""
    if not values:
        return {"operations": 0}
    ordered = sorted(values)
    p99_index = max(0, -(-99 * len(ordered) // 100) - 1)  # ceil, no math import
    return {
        "operations": len(ordered),
        "worst": ordered[-1],
        "p99": ordered[p99_index],
        "mean": round(sum(ordered) / len(ordered), 2),
    }


def bench_reconfig(quick: bool) -> dict:
    """Availability under churn: rolling replacement with online repair.

    The acceptance-run shape of the reconfig backend: rolling-replace
    permanently kills s1, s2, s3 in sequence and three repair steps retire
    each dead member via a state-transfer round while client operations
    keep flowing.  The run *asserts* atomic verdicts with zero incomplete
    operations, the two-rounds-per-repair profile, and byte-identical
    ``RunResult.to_dict()`` payloads across both engines — so CI fails on
    a reconfiguration-semantics regression, never on timing.

    The availability meter re-drives the same seeded workloads and
    partitions client operations by whether their span overlaps a repair
    window (repair invocation to completion), reporting operations
    completed and worst/p99/mean latency in simulated ticks per bucket.
    Repair windows are brief (two rounds), so the during-repair bucket is
    small by design — the point is that it is *nonempty* (asserted) and
    its latencies stay in family with steady state.
    """
    operations = 9
    trials = 3 if quick else 6

    def churn(engine: str) -> Cluster:
        return (
            Cluster("abd", t=1, S=3, backend="reconfig", engine=engine,
                    allow_overfault=True)
            .with_faults("rolling-replace", count=3, base=4, stagger=8)
            .with_repairs((1, 40), (2, 110), (3, 180))
            .with_workload(operations=operations, reads=0.5, spacing=30)
            .check("atomicity")
        )

    cells = {}
    payloads = {}
    for engine in ENGINES:
        started = time.perf_counter()
        result = churn(engine).run(trials=trials, seed=3, keep_history=False)
        seconds = time.perf_counter() - started
        assert result.ok and result.incomplete == 0, (
            f"churn run failed on {engine}: {result.failures()} "
            f"({result.incomplete} incomplete)"
        )
        for trial in result.trials:
            # Repair accounting gate: each of the three repairs is exactly
            # one transfer read + one install.
            assert trial.repair_rounds == [2, 2, 2], (
                f"unexpected repair profile on {engine}: {trial.repair_rounds}"
            )
        payload = result.to_dict()
        payload.pop("engine", None)
        payloads[engine] = json.dumps(payload, sort_keys=True)
        total_ops = trials * operations
        cells[engine] = {
            "operations": total_ops,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(total_ops / seconds, 1),
        }
    # Parity gate: churn runs extend the engine-equivalence contract.
    assert payloads["batched"] == payloads["event"], (
        "churn run diverged between the event and batched engines"
    )

    during = {"read": [], "write": []}
    steady = {"read": [], "write": []}
    repair_latencies = []
    for trial in range(trials):
        with scoped_operation_serials():
            backend = churn("event").build_backend()
            plans = WorkloadGenerator(
                seed=3 + trial, n_readers=2, read_fraction=0.5, spacing=30
            ).plan(operations)
            for plan in plans:
                backend.schedule(plan)
            backend.run()
            windows = [
                (op.invoked_at, op.completed_at)
                for op in backend.simulator.operations
                if op.op_id.kind == "repair"
            ]
            for op in backend.simulator.operations:
                latency = op.completed_at - op.invoked_at
                if op.op_id.kind == "repair":
                    repair_latencies.append(latency)
                    continue
                overlaps = any(
                    op.invoked_at <= hi and op.completed_at >= lo
                    for lo, hi in windows
                )
                bucket = during if overlaps else steady
                bucket[op.op_id.kind].append(latency)
    during_count = sum(len(v) for v in during.values())
    steady_count = sum(len(v) for v in steady.values())
    # Meter sanity: the partition must not be one-sided — some operations
    # overlap a repair window, most run in steady state.
    assert during_count > 0, "no client operation overlapped a repair window"
    assert steady_count > during_count, "repair windows swallowed the workload"

    return {
        "operations_per_trial": operations,
        "trials": trials,
        "repairs_per_trial": 3,
        "engines": cells,
        "identical_results": True,  # asserted above
        "repair_rounds_each": 2,    # asserted above, per repair
        "availability": {
            "repair_latency_ticks": _latency_stats(repair_latencies),
            "during_repair": {
                "operations": during_count,
                "read": _latency_stats(during["read"]),
                "write": _latency_stats(during["write"]),
            },
            "steady_state": {
                "operations": steady_count,
                "read": _latency_stats(steady["read"]),
                "write": _latency_stats(steady["write"]),
            },
        },
    }


# --------------------------------------------------------------------- #
# Consistency spectrum: k-verifier throughput + measured staleness
# --------------------------------------------------------------------- #


def swmr_adversarial_history(seed: int, writes: int = 6, n_readers: int = 4,
                             reads_per_reader: int = 3, n_values: int = 3) -> History:
    """An overlap-heavy *single-writer* history for the greedy k-verifier.

    One sequential writer over a small value pool (duplicates multiply the
    candidate sets), several readers whose long intervals overlap most of
    the write span, read values sampled from the pool plus ⊥ — roughly
    half the histories violate atomicity, so neither checker path is
    exercised one-sidedly.
    """
    rng = random.Random(seed)
    records = []
    writer = writer_id()
    clock = 1
    for _ in range(writes):
        duration = rng.randint(2, 8)
        records.append(_op("write", writer, clock, clock + duration,
                           f"v{rng.randint(1, n_values)}"))
        clock += duration + rng.randint(1, 4)
    pool = [BOTTOM] + [f"v{v}" for v in range(1, n_values + 1)]
    for index in range(n_readers):
        reader = reader_id(index + 1)
        reader_clock = rng.randint(1, 6)
        for _ in range(reads_per_reader):
            duration = rng.randint(2, 14)
            records.append(_op("read", reader, reader_clock,
                               reader_clock + duration, rng.choice(pool)))
            reader_clock += duration + rng.randint(1, 8)
    return History(records)


def bench_consistency(quick: bool) -> dict:
    """The spectrum layer: k-verifier vs atomicity checker, staleness by k.

    Two sub-meters.  **checker** times ``check_k_atomicity(h, 1)`` against
    ``check_swmr_atomicity`` on identical adversarial SWMR histories and
    *asserts* verdict-for-verdict agreement (ok and violated property) —
    the greedy k-pass must be the atomicity checker at k = 1, never just
    close to it.  **staleness** runs the bounded-stale backend at
    k ∈ {1, 2, 4}, *asserts* the measured lag never reaches the bound and
    that both simulation engines produce byte-identical payloads, and
    reports the distribution plus end-to-end ops/sec per bound.
    """
    from repro.consistency import check_k_atomicity, read_staleness
    from repro.spec.atomicity import check_swmr_atomicity

    count = 25 if quick else 120
    histories = [swmr_adversarial_history(seed) for seed in range(count)]
    operations_per_history = 6 + 4 * 3

    started = time.perf_counter()
    k_verdicts = [check_k_atomicity(history, 1) for history in histories]
    k_atomic_seconds = time.perf_counter() - started

    started = time.perf_counter()
    atomicity_verdicts = [check_swmr_atomicity(history) for history in histories]
    atomicity_seconds = time.perf_counter() - started

    disagreements = [
        seed
        for seed, (k1, plain) in enumerate(zip(k_verdicts, atomicity_verdicts))
        if (k1.ok, k1.violated_property) != (plain.ok, plain.violated_property)
    ]
    assert not disagreements, (
        f"check_k_atomicity(h, 1) disagrees with check_swmr_atomicity on "
        f"history seeds {disagreements}"
    )

    checker = {
        "histories": count,
        "operations_per_history": operations_per_history,
        "atomic_fraction": round(sum(v.ok for v in k_verdicts) / count, 3),
        "k_atomic_seconds": round(k_atomic_seconds, 4),
        "atomicity_seconds": round(atomicity_seconds, 4),
        "k_atomic_checks_per_sec": round(count / k_atomic_seconds),
        "atomicity_checks_per_sec": round(count / atomicity_seconds),
        "relative": round(k_atomic_seconds / atomicity_seconds, 2),
        "verdicts_equal": True,
    }

    operations = 24
    trials = 2 if quick else 4
    by_k = []
    for bound in (1, 2, 4):
        results = {}
        seconds = {}
        for engine in ENGINES:
            cluster = (
                Cluster("abd", t=1, n_readers=3, engine=engine,
                        consistency=f"k-atomic({bound})")
                .with_workload(operations=operations, spacing=25)
                .check(f"k-atomic({bound})")
            )
            started = time.perf_counter()
            results[engine] = cluster.run(
                trials=trials, seed=5, keep_history=(engine == "event")
            )
            seconds[engine] = time.perf_counter() - started
            assert results[engine].ok, f"k-atomic({bound}) failed on {engine}"
        payloads = {}
        for engine, result in results.items():
            payload = result.to_dict()
            payload.pop("engine", None)
            # keep_history is metadata-free, so payloads stay comparable
            payloads[engine] = json.dumps(payload, sort_keys=True)
        assert payloads["event"] == payloads["batched"], (
            f"engine payloads diverged on the k-atomic({bound}) backend"
        )
        samples = [
            lag
            for trial in results["event"].trials
            for lag in read_staleness(trial.history)
            if lag is not None
        ]
        assert max(samples) <= bound - 1, (
            f"staleness exceeded the configured bound on k-atomic({bound})"
        )
        stats = _latency_stats(samples)
        by_k.append({
            "k": bound,
            "reads": stats["operations"],
            "max": stats["worst"],
            "mean": stats["mean"],
            "p99": stats["p99"],
            "ops_per_sec": round(operations * trials / seconds["event"], 1),
        })

    return {
        "checker": checker,
        "staleness": {
            "operations_per_trial": operations,
            "trials": trials,
            "by_k": by_k,
            "bound_respected": True,
            "identical_results": True,
        },
    }


# --------------------------------------------------------------------- #
# Observability axis: disabled-mode cost + determinism gates
# --------------------------------------------------------------------- #


def bench_obs(quick: bool) -> dict:
    """The observe axis: disabled-mode cost and derivation determinism.

    Observability is derived *post hoc* from bookkeeping the engines
    already keep, so the disabled path must be the PR-8 path — same
    bytes out, same speed.  The timing cells run the identical seeded
    workload with ``observe`` off and on (minimum over repetitions, like
    the simulator meter) and *record* the on/off ratio for the perf
    trajectory; the ratio is never asserted, because timing is noise on
    shared runners.  What the run *asserts* is determinism: a disabled
    run's ``RunResult.to_dict()`` is byte-identical to a never-observed
    run's and carries no observability keys; enabling ``observe`` changes
    no verdict (the observed payload minus its ``events``/``elapsed_s``
    keys equals the disabled payload exactly); and the span/metric dumps
    are byte-identical across the event and batched engines — so CI
    fails on a derivation or off-state regression, never on timing.
    """
    operations = 20 if quick else 80
    trials = 2 if quick else 4
    repetitions = 2 if quick else 3

    def cluster(observe: bool, engine: str = "event") -> Cluster:
        return (
            Cluster("abd", t=1, n_readers=3, engine=engine, observe=observe)
            .with_workload(operations=operations, spacing=30)
            .check("atomicity")
        )

    def timed(observe: bool) -> tuple:
        best, result = None, None
        for _ in range(repetitions):
            started = time.perf_counter()
            result = cluster(observe).run(trials=trials, seed=7, keep_history=False)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return result, best

    disabled_result, disabled_seconds = timed(False)
    enabled_result, enabled_seconds = timed(True)
    assert disabled_result.ok and enabled_result.ok

    # Off-state gate: a disabled run is byte-identical to a run that never
    # had the observe axis threaded at all, with no observability keys.
    baseline = cluster(False).run(trials=trials, seed=7, keep_history=False)
    disabled_payload = json.dumps(disabled_result.to_dict(), sort_keys=True)
    assert disabled_payload == json.dumps(baseline.to_dict(), sort_keys=True), (
        "disabled-observe run diverged from an unobserved run"
    )
    assert '"events"' not in disabled_payload and '"elapsed_s"' not in disabled_payload

    # Verdict gate: observing must not change what the run computes.
    observed_payload = enabled_result.to_dict()
    for trial in observed_payload["trials"]:
        trial.pop("events", None)
        trial.pop("elapsed_s", None)
    assert json.dumps(observed_payload, sort_keys=True) == disabled_payload, (
        "enabling observe changed the run's deterministic payload"
    )

    # Derivation gate: span/metric dumps are part of the engine-equivalence
    # contract — byte-identical across event and batched execution.
    dumps = {}
    for engine in ENGINES:
        result = cluster(True, engine).run(trials=trials, seed=7, keep_history=False)
        dumps[engine] = json.dumps(
            [[t.obs["spans"], t.obs["metrics"], t.obs["events"]]
             for t in result.trials],
            sort_keys=True,
        )
    assert dumps["batched"] == dumps["event"], (
        "observability dumps diverged between the event and batched engines"
    )

    total_ops = trials * operations
    return {
        "operations_per_run": operations,
        "trials": trials,
        "timing_repetitions": repetitions,
        "disabled": {
            "seconds": round(disabled_seconds, 4),
            "ops_per_sec": round(total_ops / disabled_seconds, 1),
        },
        "enabled": {
            "seconds": round(enabled_seconds, 4),
            "ops_per_sec": round(total_ops / enabled_seconds, 1),
            "spans": sum(len(t.obs["spans"]) for t in enabled_result.trials),
            "metrics": sum(len(t.obs["metrics"]) for t in enabled_result.trials),
        },
        # Recorded for the trajectory, never asserted: timing is noise on CI.
        "enabled_relative": round(enabled_seconds / disabled_seconds, 2),
        "off_state_identical": True,        # asserted above
        "verdicts_unchanged": True,         # asserted above
        "identical_dumps_across_engines": True,  # asserted above
    }


# --------------------------------------------------------------------- #
# Robustness frontier: certified model walk with fault-timing choices
# --------------------------------------------------------------------- #


def bench_robustness(quick: bool) -> dict:
    """Frontier walk throughput, gated on its verdicts — never its timing.

    One configuration, the pinned degradation story of the robustness
    layer: the fast-read stack provisioned for ``t=1`` carrying one
    always-stale object plus one whose staleness hides behind an inert
    ``timed(stale-echo@99)`` wrapper, so refuting atomicity *requires*
    the explorer's swept fault-trigger choice points.  The walk runs on
    both simulation engines (minimum over repetitions, like the other
    meters); the run *asserts* the ladder verdicts — atomicity refuted,
    k-atomic(2) certified, ``degraded`` flagged — that the separating
    witness mixes held links with at least one fault trigger and replays
    byte-identically, and that the engines' frontier payloads agree
    modulo the engine tag.  CI fails on a frontier or vocabulary
    regression, never on timing noise.
    """
    max_schedules = 1_000 if quick else 3_000
    repetitions = 1 if quick else 2

    def cluster(engine: str) -> Cluster:
        return (
            Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True,
                    engine=engine)
            .with_faults("stale-echo", count=1)
            .with_faults("timed", count=1, inner="stale-echo", at=99)
            .with_operations([("write", "v1", 0), ("read", 1, 100)])
        )

    payloads, timings = {}, {}
    result = None
    for engine in ENGINES:
        best, res = None, None
        for _ in range(repetitions):
            started = time.perf_counter()
            res = cluster(engine).frontier(max_holds=2,
                                           max_schedules=max_schedules)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        payloads[engine] = res.to_dict()
        timings[engine] = best
        if engine == "event":
            result = res

    # Verdict gates: the frontier's degradation story is pinned.
    assert result.outcomes["atomicity"] == "refuted"
    assert result.strongest == "k-atomic(2)" and result.certified
    assert result.degraded
    witness = result.witness
    assert witness is not None
    assert any(d.to_json()[0] == "fault" for d in witness.decisions), (
        "the separating witness lost its fault-timing choice point"
    )
    outcome = witness.replay()
    assert witness.reproduces(outcome), "frontier witness replay diverged"

    # Parity gate: engines agree on everything but their own tag.
    def normalize(payload: dict) -> str:
        payload = dict(payload)
        payload.pop("engine")
        if payload.get("witness"):
            payload["witness"] = {key: value
                                  for key, value in payload["witness"].items()
                                  if key != "engine"}
        return json.dumps(payload, sort_keys=True)

    assert normalize(payloads["event"]) == normalize(payloads["batched"]), (
        "frontier payloads diverged between the event and batched engines"
    )

    schedules = result.schedules
    return {
        "protocol": "atomic-fast-regular",
        "faults": result.faults,
        "bounds": {"max_holds": 2, "max_schedules": max_schedules},
        "timing_repetitions": repetitions,
        "rungs": len(result.outcomes),
        "schedules": schedules,
        "engines": {
            engine: {
                "seconds": round(timings[engine], 4),
                "schedules_per_sec": round(schedules / timings[engine], 1),
            }
            for engine in ENGINES
        },
        "schedules_per_sec": round(schedules / timings["event"], 1),
        "strongest": result.strongest,
        "refuted": result.refuted,
        "degraded": True,                    # asserted above
        "witness_decisions": [d.to_json() for d in witness.decisions],
        "witness_replay_identical": True,    # asserted above
        "identical_across_engines": True,    # asserted above
    }


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #


def run_benchmark(quick: bool = False, trials: int | None = None,
                  workers: int | None = None) -> dict:
    report = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "simulator": bench_simulator(quick),
        "checker": bench_checker(quick),
        "sweep": bench_sweep(quick, trials=trials, workers=workers),
        "sharded": bench_sharded(quick),
        "explore": bench_explore(quick),
        "storage": bench_storage(quick),
        "reconfig": bench_reconfig(quick),
        "consistency": bench_consistency(quick),
        "obs": bench_obs(quick),
        "robustness": bench_robustness(quick),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizes (CI); full sizes otherwise")
    parser.add_argument("--trials", type=int, default=None,
                        help="override trials per protocol in the sweep meter")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for the parallel sweep")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_perf.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick, trials=args.trials, workers=args.workers)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")

    simulator, checker, swept = report["simulator"], report["checker"], report["sweep"]
    batched = simulator["engines"]["batched"]
    print(f"simulator : {simulator['events_per_sec']:>10,} events/sec event engine, "
          f"{batched['events_per_sec']:,} batched "
          f"({simulator['batched_speedup']}x, identical runs asserted)")
    print(f"checker   : {checker['bitmask_histories_per_sec']:>10,} histories/sec "
          f"bitmask vs {checker['reference_histories_per_sec']:,} reference "
          f"({checker['speedup']}x, verdicts equal)")
    print(f"sweep     : {swept['serial_trials_per_sec']:>10,} trials/sec serial, "
          f"{swept['parallel_trials_per_sec']:,} parallel "
          f"({swept['speedup']}x on {swept['workers']} worker(s) / "
          f"{report['cpu_count']} CPU(s), identical results)")
    sharded = report["sharded"]
    print(f"sharded   : {sharded['events_per_sec']:>10,} events/sec over "
          f"{len(sharded['grid'])} cells (keys {sharded['key_counts']}, "
          f"per-key atomicity asserted)")
    explore = report["explore"]
    certify_engines = explore["certify"]["engines"]
    print(f"explore   : {explore['schedules_per_sec']:>10,} schedules/sec "
          f"({explore['schedules']} schedules: {explore['certify']['schedules']} "
          f"certified, {explore['refute']['schedules']} refuting with "
          f"{explore['refute']['violations']} violation(s); witness replay asserted)")
    print(f"            certify meter: {certify_engines['event']['schedules_per_sec']:,} "
          f"schedules/sec event vs {certify_engines['batched']['schedules_per_sec']:,} "
          f"batched ({explore['certify']['batched_speedup']}x, identical outcomes)")
    storage = report["storage"]
    meter = storage["meter"]
    print(f"storage   : {storage['recovery']['engines']['event']['ops_per_sec']:>10,} "
          f"ops/sec crash-recover (identical across engines); durability "
          f"overhead mem {storage['overhead']['mem']['relative']}x, "
          f"dir {storage['overhead']['dir']['relative']}x; GC "
          f"{meter['retained_bytes']:,} -> {meter['gc_retained_bytes']:,} bytes, "
          f"{meter['retained_timestamps']} -> {meter['gc_retained_timestamps']} "
          f"timestamp(s) retained")
    reconfig = report["reconfig"]
    availability = reconfig["availability"]
    steady_reads = availability["steady_state"]["read"]
    during_all = availability["during_repair"]
    print(f"reconfig  : {reconfig['engines']['event']['ops_per_sec']:>10,} "
          f"ops/sec under churn (identical across engines, "
          f"{reconfig['repairs_per_trial']} repairs × {reconfig['repair_rounds_each']} "
          f"rounds); availability: {during_all['operations']} op(s) during "
          f"repair, {availability['steady_state']['operations']} steady "
          f"(p99 read {steady_reads.get('p99', '-')} tick(s))")
    consistency = report["consistency"]
    spectrum_checker = consistency["checker"]
    staleness_p99 = ", ".join(
        f"k={row['k']}: {row['p99']}" for row in consistency["staleness"]["by_k"]
    )
    print(f"consistency: {spectrum_checker['k_atomic_checks_per_sec']:>9,} "
          f"k-atomicity checks/sec vs "
          f"{spectrum_checker['atomicity_checks_per_sec']:,} atomicity "
          f"({spectrum_checker['relative']}x, k=1 verdicts equal); "
          f"staleness p99 by bound [{staleness_p99}] "
          f"(max <= k-1 and engine parity asserted)")
    obs = report["obs"]
    print(f"obs       : {obs['disabled']['ops_per_sec']:>10,} ops/sec observe off, "
          f"{obs['enabled']['ops_per_sec']:,} on "
          f"({obs['enabled_relative']}x recorded, never asserted; "
          f"{obs['enabled']['spans']} span(s) derived, off-state bytes and "
          f"cross-engine dump parity asserted)")
    robustness = report["robustness"]
    print(f"robustness: {robustness['schedules_per_sec']:>10,} schedules/sec "
          f"frontier walk ({robustness['schedules']} schedules over "
          f"{robustness['rungs']} rung(s): {robustness['refuted']} refuted, "
          f"{robustness['strongest']} certified; trigger witness replay and "
          f"engine parity asserted)")
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
