"""E4 — Lemma 1 / Proposition 2 sweep: 3-round reads need Ω(log t) writes.

Executes the write-bound construction for ``k = 1..4`` (fault budgets
``t_k = 1, 2, 5, 10``; the ``k = 4`` case is the paper's Figure 2 instance)
plus one Proposition 2 scaled instance, and prints the conviction table.
"""

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.core.recurrence import t_k
from repro.core.write_bound import WriteLowerBoundConstruction
from repro.registers.strawman import ThreeRoundReadProtocol


def _convict(k: int, scale: int = 1):
    construction = WriteLowerBoundConstruction(
        lambda: ThreeRoundReadProtocol(write_rounds=k), k=k, scale=scale
    )
    return construction.execute()


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_strawman_convicted_for_each_k(benchmark, k):
    outcome = benchmark.pedantic(_convict, args=(k,), rounds=1, iterations=1)
    assert outcome.certificate.valid, outcome.certificate.render()


def test_sweep_table(benchmark):
    def sweep():
        rows = []
        for k in (1, 2, 3, 4):
            outcome = _convict(k)
            cert = outcome.certificate
            rows.append({
                "k (write rounds)": str(k),
                "t = t_k": str(t_k(k)),
                "S = 3t_k+1": str(cert.parameters["S"]),
                "R = k": str(k),
                "runs": str(outcome.runs_executed),
                "violated": f"property {cert.verdict.violated_property}",
                "certificate": "valid" if cert.valid else "INVALID",
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        "Lemma 1 — k-round writes + 3-round reads are impossible at t_k faults",
        ("k (write rounds)", "t = t_k", "S = 3t_k+1", "R = k", "runs",
         "violated", "certificate"),
        rows,
    )
    emit("write_lower_bound", table)
    assert all(row["certificate"] == "valid" for row in rows)


def test_proposition2_scaled_instance(benchmark):
    outcome = benchmark.pedantic(_convict, args=(2,), kwargs={"scale": 3}, rounds=1, iterations=1)
    cert = outcome.certificate
    assert cert.valid
    emit(
        "write_lower_bound_scaled",
        (
            "Proposition 2 scaling (c = 3): the k=2 construction carries over to "
            f"t = {cert.parameters['t']}, S = {cert.parameters['S']} "
            f"(= 3t + t/t_k) — certificate valid: {cert.valid}"
        ),
    )
