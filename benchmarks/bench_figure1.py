"""E1 — Figure 1: the read-lower-bound run diagrams, regenerated.

The paper's Figure 1 (a)–(n) illustrates the chain ``pr_1 … Δpr_{4k−1}`` of
Proposition 1.  This benchmark *executes* the construction (k = 2 write
rounds, t = 1, S = 4t, R = 4) and renders every run as an ASCII block
diagram — the diagrams are output of the executed proof, not drawings.
"""

from benchmarks._output import emit
from repro.core.diagrams import legend, render_chain
from repro.core.read_bound import ReadLowerBoundConstruction
from repro.registers.strawman import TwoRoundReadProtocol


def _regenerate(t: int = 1, k: int = 2):
    construction = ReadLowerBoundConstruction(
        lambda: TwoRoundReadProtocol(write_rounds=k), t=t
    )
    return construction.execute(keep_runs=True)


def test_figure1_diagrams(benchmark):
    outcome = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    assert outcome.certificate.valid
    caption = (
        "Figure 1 — runs of the Proposition 1 construction "
        f"(t=1, S=4, k=2, R=4; {len(outcome.kept_runs)} runs pr_n/Δpr_n)\n" + legend()
    )
    text = render_chain(outcome.kept_runs, caption)
    text += "\n\n" + outcome.certificate.render()
    emit("figure1", text)


def test_figure1_certificate_chain_is_fully_verified(benchmark):
    outcome = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    assert all(line.verified for line in outcome.certificate.evidence)
    assert outcome.certificate.verdict.violated_property == 1
