"""E6 — the Section 5 latency matrix: measured worst-case rounds.

Reproduces the paper's bottom line as *measurements*: over every adversary
regime each protocol's model covers,

* ABD (crash): 1-round writes, 2-round reads;
* GV06-style regular: 2 / 2;
* bounded regular: 2-round writes, O(t)-round reads (the pre-GV06 regime);
* secret-token regular: 2 / 1;
* **regular→atomic over GV06: 2-round writes, 4-round reads** — the
  paper's time-optimal scalable robust atomic storage;
* **regular→atomic over secret tokens: 2 / 3** — optimal in that model;
* MWMR transform: reads 4, writes 6.

Expected ordering: ABD < tokens(3R) < unauthenticated(4R), with the bounded
protocol degrading with t.
"""

from benchmarks._output import emit
from repro.analysis.metrics import measure_latency
from repro.analysis.tables import format_table
from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.registers.bounded_regular import BoundedRegularProtocol
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.secret_token import SecretTokenProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import standard_scenarios

N_READERS = 2
T = 1

PROTOCOLS = [
    ("abd (crash baseline)", lambda: AbdProtocol(), ("fault-free", "crash", "silent"), "atomic"),
    ("fast-regular [GV06-style]", lambda: FastRegularProtocol("replay"),
     ("fault-free", "crash", "silent", "replay"), "regular"),
    ("bounded-regular [AAB07-style]", lambda: BoundedRegularProtocol(),
     ("fault-free", "silent", "fabricate"), "regular"),
    ("secret-token [DMSS09-style]", lambda: SecretTokenProtocol(),
     ("fault-free", "silent", "replay", "fabricate"), "regular"),
    ("ATOMIC = transform(fast-regular)",
     lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol("replay"), n_readers=N_READERS),
     ("fault-free", "crash", "silent", "replay"), "atomic"),
    ("ATOMIC = transform(secret-token)",
     lambda: RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=N_READERS),
     ("fault-free", "silent", "replay", "fabricate"), "atomic"),
]


def _measure_all():
    rows = []
    scenarios = {s.name: s for s in standard_scenarios(T)}
    for name, factory, covered, semantics in PROTOCOLS:
        worst_write = 0
        worst_read = 0
        for scenario_name in covered:
            scenario = scenarios[scenario_name]
            system = RegisterSystem(
                factory(), t=T, n_readers=N_READERS,
                behaviors=scenario.fault_plan.behaviors(T),
            )
            plans = WorkloadGenerator(seed=17, n_readers=N_READERS, spacing=150).plan(10)
            report = measure_latency(system, plans, scenario=scenario_name)
            assert report.incomplete == 0, (name, scenario_name)
            worst_write = max(worst_write, report.worst_write)
            worst_read = max(worst_read, report.worst_read)
        rows.append({
            "protocol": name,
            "semantics": semantics,
            "write rounds (worst)": str(worst_write),
            "read rounds (worst)": str(worst_read),
            "scenarios": ",".join(covered),
        })
    return rows


def test_latency_matrix(benchmark):
    rows = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    table = format_table(
        "Section 5 latency matrix — measured worst-case communication rounds (t=1)",
        ("protocol", "semantics", "write rounds (worst)", "read rounds (worst)", "scenarios"),
        rows,
    )
    emit("latency_matrix", table)
    by_name = {row["protocol"]: row for row in rows}
    assert by_name["abd (crash baseline)"]["write rounds (worst)"] == "1"
    assert by_name["abd (crash baseline)"]["read rounds (worst)"] == "2"
    assert by_name["ATOMIC = transform(fast-regular)"]["write rounds (worst)"] == "2"
    assert by_name["ATOMIC = transform(fast-regular)"]["read rounds (worst)"] == "4"
    assert by_name["ATOMIC = transform(secret-token)"]["read rounds (worst)"] == "3"
    assert by_name["secret-token [DMSS09-style]"]["read rounds (worst)"] == "1"


def test_bounded_regular_reads_degrade_with_t(benchmark):
    """The O(t) regime the paper contrasts with its O(1) upper bounds."""

    def sweep():
        rows = []
        for t in (1, 2, 3):
            bound = BoundedRegularProtocol().read_round_bound(t)
            rows.append({
                "t": str(t),
                "S": str(3 * t + 1),
                "read-round bound": str(bound),
                "fast-regular reads": "2",
                "token reads": "1",
            })
        return rows

    rows = benchmark(sweep)
    table = format_table(
        "Read-round bounds vs t — bounded-regular grows, the matching protocols stay constant",
        ("t", "S", "read-round bound", "fast-regular reads", "token reads"),
        rows,
    )
    emit("bounded_degradation", table)


def test_mwmr_round_counts(benchmark):
    from repro.registers.transform_mwmr import MultiWriterRegisterSystem

    def measure():
        system = MultiWriterRegisterSystem(
            lambda: FastRegularProtocol("replay"), t=1, n_writers=2, n_readers=1
        )
        system.write(1, "a", at=0)
        system.write(2, "b", at=300)
        system.read(1, at=600)
        system.run()
        ops = system.simulator.completed_operations()
        return (
            max(o.rounds_used for o in ops if o.op_id.kind == "write"),
            max(o.rounds_used for o in ops if o.op_id.kind == "read"),
        )

    write_rounds, read_rounds = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "mwmr_rounds",
        ("MWMR transform over the 2W/4R SWMR atomic stack: "
         f"writes {write_rounds} rounds, reads {read_rounds} rounds"),
    )
    assert (write_rounds, read_rounds) == (6, 4)
