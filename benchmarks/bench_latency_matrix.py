"""E6 — the Section 5 latency matrix: measured worst-case rounds.

Reproduces the paper's bottom line as *measurements*: over every adversary
regime each protocol's model covers,

* ABD (crash): 1-round writes, 2-round reads;
* GV06-style regular: 2 / 2;
* bounded regular: 2-round writes, O(t)-round reads (the pre-GV06 regime);
* secret-token regular: 2 / 1;
* **regular→atomic over GV06: 2-round writes, 4-round reads** — the
  paper's time-optimal scalable robust atomic storage;
* **regular→atomic over secret tokens: 2 / 3** — optimal in that model;
* MWMR transform: reads 4, writes 6.

Expected ordering: ABD < tokens(3R) < unauthenticated(4R), with the bounded
protocol degrading with t.

The grid is driven entirely by the :mod:`repro.api` facade: each protocol's
covered scenarios come from its registry metadata, and the measurements are
a :func:`repro.api.sweep` over that grid.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.api import get_spec, sweep

N_READERS = 2
T = 1

#: Registry names of the protocols the paper's Section 5 table compares.
PROTOCOLS = (
    "abd",
    "fast-regular",
    "bounded-regular",
    "secret-token",
    "atomic-fast-regular",
    "atomic-secret-token",
)


def _measure_all():
    result = sweep(PROTOCOLS, t=T, n_readers=N_READERS, operations=10, spacing=150, seed=17)
    assert result.runs, "sweep produced no runs"
    rows = []
    for name in result.protocols():
        spec = get_spec(name)
        assert sum(r.incomplete for r in result.for_protocol(name)) == 0, name
        worst_write, worst_read = result.worst_rounds(name)
        rows.append({
            "protocol": name,
            "semantics": spec.semantics,
            "write rounds (worst)": str(worst_write),
            "read rounds (worst)": str(worst_read),
            "scenarios": ",".join(spec.scenarios),
        })
    return rows


def test_latency_matrix(benchmark):
    rows = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    table = format_table(
        "Section 5 latency matrix — measured worst-case communication rounds (t=1)",
        ("protocol", "semantics", "write rounds (worst)", "read rounds (worst)", "scenarios"),
        rows,
    )
    emit("latency_matrix", table)
    by_name = {row["protocol"]: row for row in rows}
    assert by_name["abd"]["write rounds (worst)"] == "1"
    assert by_name["abd"]["read rounds (worst)"] == "2"
    assert by_name["atomic-fast-regular"]["write rounds (worst)"] == "2"
    assert by_name["atomic-fast-regular"]["read rounds (worst)"] == "4"
    assert by_name["atomic-secret-token"]["read rounds (worst)"] == "3"
    assert by_name["secret-token"]["read rounds (worst)"] == "1"


def test_bounded_regular_reads_degrade_with_t(benchmark):
    """The O(t) regime the paper contrasts with its O(1) upper bounds."""

    def sweep_bounds():
        spec = get_spec("bounded-regular")
        rows = []
        for t in (1, 2, 3):
            rows.append({
                "t": str(t),
                "S": str(spec.min_size(t)),
                "read-round bound": str(spec.read_round_bound(t)),
                "fast-regular reads": str(get_spec("fast-regular").read_rounds),
                "token reads": str(get_spec("secret-token").read_rounds),
            })
        return rows

    rows = benchmark(sweep_bounds)
    table = format_table(
        "Read-round bounds vs t — bounded-regular grows, the matching protocols stay constant",
        ("t", "S", "read-round bound", "fast-regular reads", "token reads"),
        rows,
    )
    emit("bounded_degradation", table)
    assert [row["read-round bound"] for row in rows] == ["3", "4", "5"]


def test_mwmr_round_counts(benchmark):
    from repro.registers.fast_regular import FastRegularProtocol
    from repro.registers.transform_mwmr import MultiWriterRegisterSystem

    def measure():
        system = MultiWriterRegisterSystem(
            lambda: FastRegularProtocol("replay"), t=1, n_writers=2, n_readers=1
        )
        system.write(1, "a", at=0)
        system.write(2, "b", at=300)
        system.read(1, at=600)
        system.run()
        ops = system.simulator.completed_operations()
        return (
            max(o.rounds_used for o in ops if o.op_id.kind == "write"),
            max(o.rounds_used for o in ops if o.op_id.kind == "read"),
        )

    write_rounds, read_rounds = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "mwmr_rounds",
        ("MWMR transform over the 2W/4R SWMR atomic stack: "
         f"writes {write_rounds} rounds, reads {read_rounds} rounds"),
    )
    assert (write_rounds, read_rounds) == (6, 4)
