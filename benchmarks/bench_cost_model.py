"""E8 — the Introduction's cloud-cost motivation, quantified.

"The number of interactions with the remote cloud storage … is often
directly associated with the monetary cost."  This benchmark prices the
measured round counts of every protocol stack under an S3-style
per-request model and a WAN RTT, for a read-heavy key-value workload.
"""

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.cost.model import CloudCostModel

#: (stack, write rounds, read rounds) — the measured values of E6.
STACKS = [
    ("abd (crash only)", 1, 2),
    ("atomic over secret tokens", 2, 3),
    ("atomic over fast-regular (unauthenticated)", 2, 4),
    ("mwmr over fast-regular", 6, 4),
]


def test_per_operation_cost_table(benchmark):
    model = CloudCostModel(S=4)

    def build():
        rows = []
        for name, write_rounds, read_rounds in STACKS:
            write = model.operation(write_rounds)
            read = model.operation(read_rounds)
            rows.append({
                "stack": name,
                "write rounds": str(write_rounds),
                "read rounds": str(read_rounds),
                "read latency (ms)": f"{read.latency_ms:.0f}",
                "read cost ($/Mop)": f"{read.dollars * 1e6:.2f}",
                "write cost ($/Mop)": f"{write.dollars * 1e6:.2f}",
            })
        return rows

    rows = benchmark(build)
    table = format_table(
        "Cloud cost of robustness (S = 4 objects, $0.4/M requests, 30 ms RTT)",
        ("stack", "write rounds", "read rounds", "read latency (ms)",
         "read cost ($/Mop)", "write cost ($/Mop)"),
        rows,
    )
    emit("cost_per_operation", table)
    # The shape the paper implies: unauthenticated robustness costs exactly
    # 4/3 of the secret-token stack and 2x ABD on reads.
    read_costs = [float(row["read cost ($/Mop)"]) for row in rows]
    assert read_costs[2] / read_costs[1] == pytest.approx(4 / 3)
    assert read_costs[2] / read_costs[0] == pytest.approx(2.0)


def test_workload_cost_sweep(benchmark):
    model = CloudCostModel(S=4)

    def build():
        rows = []
        reads, writes = 950_000, 50_000  # the read-heavy KV mix of the intro
        for name, write_rounds, read_rounds in STACKS:
            total = model.workload(reads, read_rounds, writes, write_rounds)
            rows.append({
                "stack": name,
                "workload": "95% reads / 5% writes, 1M ops",
                "total cost ($)": f"{total:.2f}",
            })
        return rows

    rows = benchmark(build)
    table = format_table(
        "Monthly-style workload pricing per stack",
        ("stack", "workload", "total cost ($)"),
        rows,
    )
    emit("cost_workload", table)
    totals = [float(row["total cost ($)"]) for row in rows]
    assert totals == sorted(totals), "robustness must be monotonically pricier"
