"""E3 — Figure 2: the write-lower-bound instance k = 4, regenerated.

The paper's Figure 2 (a)–(h) illustrates Lemma 1 at ``k = 4`` (``t_4 = 10``,
``S = 31``, four readers).  This benchmark executes the construction at that
exact instance, prints the block-size table, the superblock identity checks,
and the per-run diagrams.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.core.blocks import write_bound_partition
from repro.core.diagrams import legend, render_chain
from repro.core.recurrence import t_k
from repro.core.write_bound import WriteLowerBoundConstruction
from repro.registers.strawman import ThreeRoundReadProtocol

K = 4


def _regenerate():
    construction = WriteLowerBoundConstruction(
        lambda: ThreeRoundReadProtocol(write_rounds=K), k=K
    )
    return construction.execute(keep_runs=True)


def test_figure2_block_table(benchmark):
    wbp = benchmark(write_bound_partition, K)
    rows = [
        {"block": name, "size": str(len(wbp.partition.members(name)))}
        for name in wbp.partition.names
    ]
    table = format_table(
        f"Figure 2 partition (k={K}, t_4={t_k(K)}, S={wbp.S})", ("block", "size"), rows
    )
    identities = [
        f"eq(1) |∪M_l| = t_(l+1)      : {'ok' if all(wbp.identity_malicious(l) for l in range(0, K)) else 'FAIL'}",
        f"eq(2) |∪P_l| = t_k − t_(l−2): {'ok' if all(wbp.identity_parity(l) for l in range(1, K + 2)) else 'FAIL'}",
        f"eq(3) |∪C_l| = t_k − t_(l−2): {'ok' if all(wbp.identity_correct(l) for l in range(1, K + 1)) else 'FAIL'}",
    ]
    emit("figure2_partition", table + "\n" + "\n".join(identities))
    assert wbp.verify_identities()


def test_figure2_run_diagrams(benchmark):
    outcome = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    assert outcome.certificate.valid
    caption = (
        f"Figure 2 — runs of the Lemma 1 construction at k={K} "
        f"(t={t_k(K)}, S={3 * t_k(K) + 1}, R={K})\n" + legend()
    )
    text = render_chain(outcome.kept_runs, caption)
    text += "\n\n" + outcome.certificate.render()
    emit("figure2", text)
