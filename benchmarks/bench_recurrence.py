"""E5 — the recurrence t_k, its closed form, and the log bound (Lemma 2).

Exact integer mathematics: this table must match the paper digit for digit.
``t_k = t_{k−1} + 2t_{k−2} + 1 = (2^{k+2} − (−1)^k − 3)/6`` and the headline
inversion ``k ≤ ⌊log₂(⌈(3t+1)/2⌉)⌋``.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.core.recurrence import (
    closed_form,
    largest_k_for,
    max_write_rounds,
    resilience_bound,
    t_k,
    verify_log_identity,
)


def test_recurrence_table(benchmark):
    def build():
        rows = []
        for k in range(1, 13):
            rows.append({
                "k": str(k),
                "t_k (recurrence)": str(t_k(k)),
                "t_k (closed form)": str(closed_form(k)),
                "S = 3t_k+1": str(3 * t_k(k) + 1),
                "match": "ok" if t_k(k) == closed_form(k) else "FAIL",
            })
        return rows

    rows = benchmark(build)
    table = format_table(
        "The write-bound recurrence t_k = t_(k−1) + 2t_(k−2) + 1",
        ("k", "t_k (recurrence)", "t_k (closed form)", "S = 3t_k+1", "match"),
        rows,
    )
    emit("recurrence", table)
    assert all(row["match"] == "ok" for row in rows)


def test_log_bound_table(benchmark):
    sweep = [1, 2, 3, 5, 9, 10, 50, 100, 1000, 10**6]

    def build():
        rows = []
        for t in sweep:
            rows.append({
                "t": str(t),
                "max k (log formula)": str(max_write_rounds(t)),
                "max k (recurrence)": str(largest_k_for(t)),
                "agree": "ok" if verify_log_identity(t) else "FAIL",
            })
        return rows

    rows = benchmark(build)
    table = format_table(
        "Lemma 2 — write rounds needed for 3-round reads: k ≤ ⌊log₂⌈(3t+1)/2⌉⌋",
        ("t", "max k (log formula)", "max k (recurrence)", "agree"),
        rows,
    )
    emit("log_bound", table)
    assert all(row["agree"] == "ok" for row in rows)


def test_resilience_scaling_table(benchmark):
    def build():
        rows = []
        for k in (1, 2, 3, 4):
            base = t_k(k)
            for multiple in (1, 2, 5):
                t = base * multiple
                rows.append({
                    "k": str(k),
                    "t": str(t),
                    "S bound (Prop. 2)": str(resilience_bound(t, k)),
                    "= 3t + ⌊t/t_k⌋": f"3·{t} + {t // base}",
                })
        return rows

    rows = benchmark(build)
    table = format_table(
        "Proposition 2 — resilience frontier of the write bound",
        ("k", "t", "S bound (Prop. 2)", "= 3t + ⌊t/t_k⌋"),
        rows,
    )
    emit("resilience_scaling", table)
