"""E10 — best-case vs worst-case latency (the [14]/[16] contrast).

The paper's related work distinguishes its *worst-case* results from the
*best-case* line ("Lucky read/write access…" [14], "Refined quorum
systems" [16]) where operations are fast when the run is synchronous,
fault-free and contention-free.  This benchmark measures the lucky
protocol's round ladder — 1-round ops when lucky, degrading under faults —
next to the worst-case-optimal stacks, showing both regimes coexist exactly
as Section 1.2 describes.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.faults.adversary import SilentBehavior
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.lucky import LuckyAtomicProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.spec.atomicity import check_swmr_atomicity
from repro.types import object_id


def _measure(protocol_factory, behaviors=None):
    system = RegisterSystem(protocol_factory(), t=1, n_readers=2, behaviors=behaviors)
    system.write("a", at=0)
    system.read(1, at=80)
    system.write("b", at=160)
    system.read(2, at=240)
    system.run()
    history = system.history()
    assert check_swmr_atomicity(history).ok
    return system.max_rounds("write"), system.max_rounds("read")


def test_best_case_ladder(benchmark):
    def run():
        rows = []
        lucky_clean = _measure(lambda: LuckyAtomicProtocol())
        lucky_faulty = _measure(
            lambda: LuckyAtomicProtocol(),
            behaviors={object_id(2): SilentBehavior()},
        )
        worst_optimal = _measure(
            lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)
        )
        rows.append({
            "protocol": "lucky-atomic, fault-free (best case)",
            "write rounds": str(lucky_clean[0]), "read rounds": str(lucky_clean[1]),
        })
        rows.append({
            "protocol": "lucky-atomic, one silent fault",
            "write rounds": str(lucky_faulty[0]), "read rounds": str(lucky_faulty[1]),
        })
        rows.append({
            "protocol": "transform(fast-regular) (worst-case optimal)",
            "write rounds": str(worst_optimal[0]), "read rounds": str(worst_optimal[1]),
        })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Best case vs worst case (the [14]/[16] contrast of Section 1.2)",
        ("protocol", "write rounds", "read rounds"),
        rows,
    )
    emit("best_case_ladder", table)
    assert rows[0] == {
        "protocol": "lucky-atomic, fault-free (best case)",
        "write rounds": "1", "read rounds": "1",
    }
    assert rows[1]["read rounds"] == "3"
    assert rows[2]["read rounds"] == "4"


def test_lucky_fast_path_requires_full_population(benchmark):
    """Quantify the luck: the 1-round path fires only on unanimous replies
    from all S objects — any single divergence ends it."""

    def run():
        clean = _measure(lambda: LuckyAtomicProtocol())
        degraded = _measure(
            lambda: LuckyAtomicProtocol(),
            behaviors={object_id(1): SilentBehavior()},
        )
        return clean, degraded

    (clean, degraded) = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "lucky_cliff",
        (
            "The best-case cliff: lucky rounds (write, read) go from "
            f"{clean} fault-free to {degraded} with one silent object — "
            "best-case speed is real but fragile, which is why the paper "
            "studies the worst case"
        ),
    )
    assert clean == (1, 1)
    assert degraded == (2, 3)
