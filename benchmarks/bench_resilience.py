"""E7 — the resilience frontier: where each bound applies.

Four facets, all checked mechanically:

* optimal resilience is ``3t + 1`` (footnote 1): Byzantine threshold
  arithmetic rejects ``S = 3t`` and accepts ``3t + 1``;
* every protocol in the registry lives exactly on its advertised
  resilience class: the metadata's ``min_size(t)`` is accepted and one
  object fewer is rejected, for every registered protocol;
* Proposition 1's scope is ``S ≤ 4t``: the partition builder accepts the
  whole range ``3t + 1 … 4t`` and the conviction succeeds at both ends;
* masking-quorum analysis shows why ``4t + 1`` buys single-round safe reads
  while ``3t + 1`` protocols need certification plus write-backs.
"""

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.api import get_protocol, protocol_specs
from repro.core.read_bound import ReadLowerBoundConstruction
from repro.errors import ConfigurationError
from repro.quorums.analysis import is_masking_system, threshold_family, threshold_fault_sets
from repro.quorums.threshold import ByzantineThresholds
from repro.registers.strawman import TwoRoundReadProtocol
from repro.types import object_ids


def test_optimal_resilience_frontier(benchmark):
    def probe():
        rows = []
        for t in (1, 2, 3, 4):
            at_3t = "rejected"
            try:
                ByzantineThresholds(S=3 * t, t=t)
                at_3t = "ACCEPTED (bug)"
            except ConfigurationError:
                pass
            th = ByzantineThresholds.optimally_resilient(t)
            rows.append({
                "t": str(t),
                "S = 3t": at_3t,
                "S = 3t+1": f"quorum {th.quorum}, certify {th.certify}",
                "freshness witnesses": str(th.freshness_witnesses()),
            })
        return rows

    rows = benchmark(probe)
    table = format_table(
        "Optimal resilience: 3t+1 objects, one guaranteed freshness witness",
        ("t", "S = 3t", "S = 3t+1", "freshness witnesses"),
        rows,
    )
    emit("resilience_frontier", table)
    assert all(row["S = 3t"] == "rejected" for row in rows)
    assert all(row["freshness witnesses"] == "1" for row in rows)


def test_registry_resilience_classes(benchmark):
    """Every registered protocol sits exactly on its advertised frontier."""

    def probe():
        rows = []
        for spec in protocol_specs():
            verdicts = []
            for t in (1, 2, 3):
                minimum = spec.min_size(t)
                get_protocol(spec.name).validate_configuration(minimum, t)
                below = "rejected"
                try:
                    get_protocol(spec.name).validate_configuration(minimum - 1, t)
                    below = "ACCEPTED (bug)"
                except ConfigurationError:
                    pass
                verdicts.append(below)
            rows.append({
                "protocol": spec.name,
                "resilience": spec.resilience,
                "min S (t=1,2,3)": ",".join(str(spec.min_size(t)) for t in (1, 2, 3)),
                "one below": ",".join(verdicts),
            })
        return rows

    rows = benchmark.pedantic(probe, rounds=1, iterations=1)
    table = format_table(
        "Registry resilience classes: advertised minimum accepted, one below rejected",
        ("protocol", "resilience", "min S (t=1,2,3)", "one below"),
        rows,
    )
    emit("registry_resilience", table)
    assert all(row["one below"] == "rejected,rejected,rejected" for row in rows)


@pytest.mark.parametrize("t,S", [(2, 7), (2, 8), (3, 10), (3, 12)])
def test_proposition1_applies_across_its_range(benchmark, t, S):
    """Conviction succeeds at S = 3t+1 (lower end) and S = 4t (upper end)."""

    def convict():
        construction = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=1), t=t, S=S
        )
        return construction.execute()

    outcome = benchmark.pedantic(convict, rounds=1, iterations=1)
    assert outcome.certificate.valid


def test_proposition1_rejects_s_above_4t():
    with pytest.raises(ConfigurationError):
        ReadLowerBoundConstruction(lambda: TwoRoundReadProtocol(), t=2, S=9)


def test_masking_quorum_frontier(benchmark):
    def probe():
        rows = []
        for t, S in ((1, 4), (1, 5)):
            objects = object_ids(S)
            family = threshold_family(objects, S - t)
            faults = threshold_fault_sets(objects, t)
            rows.append({
                "t": str(t),
                "S": str(S),
                "masking system": "yes" if is_masking_system(family, faults) else "no",
                "meaning": (
                    "single-round safe reads possible" if S == 4 * t + 1
                    else "needs certification + write-backs"
                ),
            })
        return rows

    rows = benchmark(probe)
    table = format_table(
        "Masking quorums: 4t+1 vs 3t+1 (why robust 3t+1 reads are hard)",
        ("t", "S", "masking system", "meaning"),
        rows,
    )
    emit("masking_frontier", table)
    assert rows[0]["masking system"] == "no"
    assert rows[1]["masking system"] == "yes"
