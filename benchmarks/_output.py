"""Benchmark output plumbing.

Every experiment prints its tables/figures *and* writes them under
``benchmarks/results/`` so the regenerated artifacts survive pytest's
output capture and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it as ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")
