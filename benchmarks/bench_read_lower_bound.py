"""E2 — Proposition 1 sweep: no 2-round reads when S ≤ 4t, R > 3.

For every ``t`` in the sweep the construction must convict the 2-round-read
strawman (violation certificate), and the matching 4-round-read
implementation must *escape* (its reads cannot terminate within the
scripted two rounds) — the executable statement of the bound plus its
tightness.
"""

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.core.read_bound import ReadLowerBoundConstruction
from repro.errors import ConstructionEscape
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.strawman import TwoRoundReadProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol

SWEEP = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 2), (1, 3)]


def _convict(t: int, k: int):
    construction = ReadLowerBoundConstruction(
        lambda: TwoRoundReadProtocol(write_rounds=k), t=t
    )
    return construction.execute()


@pytest.mark.parametrize("t,k", SWEEP)
def test_strawman_convicted_across_sweep(benchmark, t, k):
    outcome = benchmark.pedantic(_convict, args=(t, k), rounds=1, iterations=1)
    assert outcome.certificate.valid, outcome.certificate.render()


def test_sweep_table(benchmark):
    def sweep():
        rows = []
        for t, k in SWEEP:
            outcome = _convict(t, k)
            cert = outcome.certificate
            rows.append({
                "t": str(t),
                "S": str(cert.parameters["S"]),
                "k (write rounds)": str(k),
                "runs": str(outcome.runs_executed),
                "final run": cert.final_run,
                "violated": f"property {cert.verdict.violated_property}",
                "certificate": "valid" if cert.valid else "INVALID",
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        "Proposition 1 — two-round reads are impossible (S=4t, R=4)",
        ("t", "S", "k (write rounds)", "runs", "final run", "violated", "certificate"),
        rows,
    )
    emit("read_lower_bound", table)
    assert all(row["certificate"] == "valid" for row in rows)


def test_matching_implementation_escapes(benchmark):
    def attempt():
        construction = ReadLowerBoundConstruction(
            lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=4),
            t=1,
        )
        try:
            construction.execute()
            return None
        except ConstructionEscape as escape:
            return escape

    escape = benchmark.pedantic(attempt, rounds=1, iterations=1)
    assert escape is not None
    emit(
        "read_lower_bound_tightness",
        "Tightness: the 2W/4R matching implementation escapes the Prop. 1 "
        f"adversary at step {escape.step}: {escape.reason}",
    )
