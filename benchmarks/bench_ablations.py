"""E9 — ablations: remove one design ingredient, demonstrate the violation.

DESIGN.md calls out three load-bearing ingredients of the matching
implementations.  Each ablation builds the crippled variant and exhibits a
concrete legal run (≤ t faults, in-model schedule) where its consistency
level collapses — the executable "why" behind the design:

* **no pre-write phase** (1-round writes): a crashed writer leaves a value
  at ≤ t correct objects; a replaying adversary plus scheduling makes a
  read return a value newer than the last complete write's *before* it is
  readable elsewhere — and with 1-round writes at ``S ≤ 4t`` Proposition 1's
  machinery convicts the full protocol immediately.
* **no reader write-back** (transform without the R_i registers): two
  sequential reads during write propagation observe new-then-old —
  atomicity property (4), the new/old inversion.
* **max-report instead of certification** (unauthenticated mode): one
  fabricating object poisons every read.
"""

from benchmarks._output import emit
from repro.faults.byzantine import FabricatingBehavior
from repro.registers.base import ProtocolContext, RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.multiplex import multiplex
from repro.registers.strawman import TwoRoundReadProtocol
from repro.registers.timestamps import max_candidate
from repro.registers.transform_atomic import RegularToAtomicProtocol, WRITER_REGISTER
from repro.faults.schedules import WithholdFrom
from repro.sim.simulator import ProtocolGenerator
from repro.spec.atomicity import check_swmr_atomicity
from repro.types import object_id, reader_id


class NoWriteBackTransform(RegularToAtomicProtocol):
    """The transform minus its reader registers: reads never write back."""

    def read_tagged_generator(self, ctx: ProtocolContext, reader) -> ProtocolGenerator:
        substrate = self._registers[WRITER_REGISTER]

        def generator() -> ProtocolGenerator:
            observed = yield from multiplex(
                {WRITER_REGISTER: substrate.read_tagged_generator(ctx, reader)}
            )
            return max_candidate(observed.values())

        return generator()


class _InversionSchedule(WithholdFrom):
    """The classic new/old-inversion schedule.

    After tick 50 the writer's messages reach only object 1 (the second
    write stays in flight at a single object), and object 1's replies to
    reader 2 are withheld.  Reader 1 therefore observes the in-flight value
    at object 1, while reader 2 — strictly later — hears only the three
    objects still holding the old value.  Entirely in-model: every held
    message is merely in transit.
    """

    def __init__(self) -> None:
        super().__init__(objects=[object_id(1)], clients=[reader_id(2)])

    def delay(self, message, now):
        if (
            not message.is_reply
            and message.src.role_value == "writer"
            and message.dst != object_id(1)
            and now >= 50
        ):
            return None
        return super().delay(message, now)


def test_ablation_no_write_back_inverts_reads(benchmark):
    """Without write-backs, regular new/old inversion leaks into the
    "atomic" register: rd1 sees the in-flight write, rd2 (later) does not."""

    def run():
        protocol = NoWriteBackTransform(
            lambda: FastRegularProtocol("replay"), n_readers=2
        )
        system = RegisterSystem(protocol, t=1, n_readers=2, policy=_InversionSchedule())
        system.write("old", at=0)
        system.write("new", at=60)   # reaches only object 1, stays in flight
        system.read(1, at=70)        # sees object 1: returns "new"
        system.read(2, at=140)       # object 1 withheld: returns "old"
        system.run()
        history = system.history()
        return history, check_swmr_atomicity(history)

    history, verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    reads = [r.value for r in history.reads()]
    emit(
        "ablation_no_write_back",
        (
            "Ablation: transform WITHOUT reader write-back registers\n"
            f"  reads returned (in order): {reads}\n"
            f"  atomicity: {'violated — ' + verdict.explanation if not verdict.ok else 'held (schedule too kind)'}\n"
            "  conclusion: the R_i registers (and their 2 extra read rounds) are "
            "what buys read monotonicity"
        ),
    )
    assert not verdict.ok
    assert verdict.violated_property in (2, 4)


def test_contrast_full_transform_survives_inversion_schedule(benchmark):
    """The same schedule against the *real* transform: the write-back saves
    property (4) — reader 1's write-back plants "new" where reader 2 can
    see it."""

    def run():
        protocol = RegularToAtomicProtocol(
            lambda: FastRegularProtocol("replay"), n_readers=2
        )
        system = RegisterSystem(protocol, t=1, n_readers=2, policy=_InversionSchedule())
        system.write("old", at=0)
        system.write("new", at=60)
        system.read(1, at=70)
        system.read(2, at=200)
        system.run()
        history = system.history()
        return history, check_swmr_atomicity(history)

    history, verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    reads = [r.value for r in history.reads()]
    emit(
        "ablation_write_back_contrast",
        (
            "Contrast: the full transform on the inversion schedule\n"
            f"  reads returned (in order): {reads}\n"
            f"  atomicity: {'held' if verdict.ok else 'VIOLATED — ' + verdict.explanation}"
        ),
    )
    assert verdict.ok, verdict.explanation


def test_ablation_one_round_writes_convicted(benchmark):
    """A 1-round-write, 2-round-read protocol is inside Proposition 1's
    class with k = 1: the construction needs only three appended reads."""
    from repro.core.read_bound import ReadLowerBoundConstruction

    def run():
        construction = ReadLowerBoundConstruction(
            lambda: TwoRoundReadProtocol(write_rounds=1), t=1
        )
        return construction.execute()

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_one_round_writes",
        (
            "Ablation: single-round writes (no pre-write phase)\n"
            f"  certificate: {'valid' if outcome.certificate.valid else 'invalid'} "
            f"after {outcome.runs_executed} runs (k=1 chain: pr1..Δpr3)\n"
            "  conclusion: with constant 1-round writes the adversary erases the "
            "write in three reads flat"
        ),
    )
    assert outcome.certificate.valid


def test_ablation_max_report_poisoned_by_fabrication(benchmark):
    """Replay-mode selection (max report) without certification is safe
    against replay but a single fabricator owns every read."""

    def run():
        system = RegisterSystem(
            FastRegularProtocol(trust_model="replay"), t=1, n_readers=1,
            behaviors={object_id(1): FabricatingBehavior()},
        )
        system.write("genuine", at=0)
        system.read(1, at=60)
        system.run()
        return system.history().reads()[0].value

    value = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_max_report",
        (
            "Ablation: max-report selection vs a fabricating object\n"
            f"  read returned: {value!r}\n"
            "  conclusion: unauthenticated data forces t+1-certification (or "
            "secret tokens) — exactly the model split of DESIGN.md §2.2"
        ),
    )
    assert value == "<fabricated>"
