"""k-atomicity: the bounded-staleness generalization of atomic registers.

A history is **k-atomic** when there is a linear extension of precedence in
which every read returns one of the ``k`` most recent preceding write values
(the initial ⊥ counts as write 0).  ``k = 1`` is atomicity; larger ``k``
admits reads that lag behind the freshest write by up to ``k − 1`` completed
writes — the observable contract of read replicas and caches.  The
formulation follows "On the k-Atomicity-Verification Problem" (PAPERS.md):
a valid assignment gives read ``rd`` a write index ``idx(rd)`` such that
``rd`` can be *placed* in the open window between ``wr_{idx}`` and
``wr_{idx+k}``, consistently with precedence.

Two checkers share the entry point :func:`check_k_atomicity`:

* **single-writer** — a greedy pass that generalizes
  :func:`repro.spec.atomicity.check_swmr_atomicity` and is exact for every
  ``k`` (the paper's GPO greedy, specialized to the SWMR write order).  The
  one subtlety is that the k=1 checker's read-monotonicity prefix-maximum is
  *not* enough for ``k > 1``: two reads may each individually satisfy
  ``idx(rd2) ≥ idx(rd1) − (k−1)`` while no placement of both in their write
  windows respects their precedence.  The greedy therefore tracks the
  *placement segment* of each read — the write gap it sits in, at least its
  index and at least every really-preceding read's segment — and feeds the
  prefix-maximum of segments (not indices) into later floors.  At ``k = 1``
  segment and index coincide, so the pass degenerates to the atomicity
  checker exactly, including its greedy-minimal assignment and its
  diagnosis order.
* **multi-writer** — the Wing–Gong bitmask search of
  :mod:`repro.spec.linearizability` with the frontier value widened to the
  tuple of the last ``≤ k`` written values; exponential in the worst case,
  meant for the small histories tests and the MWMR transformation produce.

:func:`check_k_atomicity_reference` preserves a frozenset-frontier
brute-force search as the differential-testing oracle (the same pattern as
``is_linearizable_reference``), and :func:`atomicity_spectrum` reports the
smallest ``k`` a history satisfies.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, FrozenSet

from repro.errors import SpecificationError
from repro.spec.atomicity import AtomicityVerdict, _linear_extension_key
from repro.spec.history import History
from repro.spec.linearizability import _candidate_operations
from repro.types import BOTTOM


def check_k_atomicity(history: History, k: int) -> AtomicityVerdict:
    """Whether ``history`` is k-atomic; exact for any ``k ≥ 1``.

    Single-writer histories go through the greedy placement pass (see the
    module docstring); multi-writer histories through the k-frontier
    search.  ``check_k_atomicity(h, 1)`` agrees verdict-for-verdict with
    the atomicity checkers.
    """
    if k < 1:
        raise SpecificationError(f"k-atomicity needs k >= 1, got {k}")
    if history.single_writer():
        return _check_swmr_k_atomicity(history, k)
    ok = _k_search(history, k)
    return AtomicityVerdict(
        ok=ok,
        explanation=(
            "" if ok else f"no {k}-atomic linearization of the multi-writer history exists"
        ),
    )


def _check_swmr_k_atomicity(history: History, k: int) -> AtomicityVerdict:
    """The greedy SWMR pass: ``check_swmr_atomicity`` with k-wide windows."""
    values = history.written_values()  # values[j] == val_j, values[0] == ⊥
    writes = history.writes()
    reads = sorted(history.reads(complete_only=True), key=_linear_extension_key)

    write_invocations = [w.invocation_step for w in writes]
    write_responses = [w.response_step for w in writes if w.complete]

    # Same ==-defined candidacy with a hash prefilter as the k=1 checker.
    try:
        by_value: dict[Any, list[int]] | None = {}
        for j, val in enumerate(values):
            by_value.setdefault(val, []).append(j)
    except TypeError:
        by_value = None

    assigned: dict[Any, int] = {}
    # Prefix-maximum of placement *segments* over the processed reads, in
    # response-step order (a linear extension): ``seg(rd)`` is the write gap
    # the greedy placed ``rd`` in — ``seg ∈ [idx, idx + k − 1]``, minimal.
    done_responses: list[int] = []
    done_prefix_max: list[int] = []

    for read in reads:
        prefiltered: Any = None
        if by_value is not None:
            try:
                prefiltered = by_value.get(read.value, [])
            except TypeError:
                prefiltered = None  # unhashable read value: scan everything
        if prefiltered is None:
            prefiltered = range(len(values))
        candidates = [j for j in prefiltered if values[j] == read.value]
        if not candidates:
            return AtomicityVerdict(
                ok=False,
                violated_property=1,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r}, which no write ever wrote "
                    f"(written values: {values[1:]!r}, initial ⊥)"
                ),
            )

        # Unchanged from k=1: writes that really precede the read (a prefix
        # of the complete writes) and writes invoked before it responded.
        write_floor = bisect_left(write_responses, read.invocation_step)
        ceiling = bisect_right(write_invocations, read.response_step)

        # Really-preceding reads force this read's segment at or above their
        # own — the k>1 generalization of read monotonicity.
        prefix_seg = 0
        position = bisect_left(done_responses, read.invocation_step)
        if position:
            prefix_seg = done_prefix_max[position - 1]

        # The read's segment must be ≥ base (preceding writes and reads) and
        # ≤ idx + k − 1 (at most k − 1 writes ahead of the value returned),
        # so feasibility needs idx ≥ base − (k − 1).
        base = write_floor if write_floor >= prefix_seg else prefix_seg
        floor = base - (k - 1)
        if floor < 0:
            floor = 0
        at = bisect_left(candidates, floor)
        if at < len(candidates) and candidates[at] <= ceiling:
            choice = candidates[at]  # smallest feasible index (greedy-minimal)
            assigned[read.op_id] = choice
            seg = choice if choice >= base else base
            done_responses.append(read.response_step)
            done_prefix_max.append(
                seg if not done_prefix_max or seg > done_prefix_max[-1]
                else done_prefix_max[-1]
            )
            continue

        # Diagnose which clause failed, most specific first — the same
        # order (1 → 3 → 2 → 4) and phrasing family as the k=1 checker.
        below_ceiling = [j for j in candidates if j <= ceiling]
        if not below_ceiling:
            return AtomicityVerdict(
                ok=False,
                violated_property=3,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r}, but every write of that value "
                    f"was invoked only after the read responded (read from the future)"
                ),
            )
        write_limit = write_floor - (k - 1)
        if write_limit < 0:
            write_limit = 0
        if all(j < write_limit for j in below_ceiling):
            return AtomicityVerdict(
                ok=False,
                violated_property=2,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r} (indices {below_ceiling}) although "
                    f"it succeeds wr_{write_floor}: stale read beyond the k={k} bound"
                ),
            )
        return AtomicityVerdict(
            ok=False,
            violated_property=4,
            culprit=read,
            explanation=(
                f"{read.op_id} returned {read.value!r} (indices {below_ceiling}) although a "
                f"preceding read was already placed in segment {prefix_seg}: "
                f"new/old inversion beyond the k={k} bound"
            ),
        )

    return AtomicityVerdict(ok=True, assignment=assigned)


def _k_search(history: History, k: int) -> bool:
    """Bitmask k-frontier search: linearizability with a k-deep value window."""
    operations = _candidate_operations(history)
    total = len(operations)
    full = (1 << total) - 1

    pred_masks = [0] * total
    for j, b in enumerate(operations):
        mask = 0
        for i, a in enumerate(operations):
            if i != j and a.precedes(b):
                mask |= 1 << i
        pred_masks[j] = mask

    items = [
        (1 << i, pred_masks[i], record.kind == "write", record.value)
        for i, record in enumerate(operations)
    ]
    optional = [entry for entry, record in zip(items, operations) if not record.complete]
    seen: set[tuple[int, Any]] = set()

    def explore(done: int, recent: tuple[Any, ...]) -> bool:
        if done == full:
            return True
        key = (done, recent)
        if key in seen:
            return False
        seen.add(key)
        not_done = ~done
        for bit, preds, is_write, value in items:
            if done & bit or preds & not_done:
                continue
            if is_write:
                # The value window keeps the last ≤ k written values; a read
                # may return any of them (⊥ scrolls out like any value).
                window = (recent + (value,))[-k:] if k > 1 else (value,)
                if explore(done | bit, window):
                    return True
            elif any(value == held for held in recent):
                if explore(done | bit, recent):
                    return True
        # An incomplete write may also be dropped ("never took effect").
        for bit, preds, _is_write, _value in optional:
            if done & bit or preds & not_done:
                continue
            if explore(done | bit, recent):
                return True
        return False

    return explore(0, (BOTTOM,))


def check_k_atomicity_reference(history: History, k: int) -> bool:
    """Brute-force k-atomicity oracle on frozenset frontiers.

    Mirrors :func:`repro.spec.linearizability.is_linearizable_reference`
    with the k-deep value window; exact for any writer population, kept for
    differential testing of both fast paths.
    """
    if k < 1:
        raise SpecificationError(f"k-atomicity needs k >= 1, got {k}")
    operations = _candidate_operations(history)
    total = len(operations)

    precedes: list[set[int]] = [set() for _ in operations]
    for i, a in enumerate(operations):
        for j, b in enumerate(operations):
            if i != j and a.precedes(b):
                precedes[j].add(i)

    optional = {i for i, r in enumerate(operations) if not r.complete}
    seen: set[tuple[FrozenSet[int], Any]] = set()

    def explore(done: frozenset[int], recent: tuple[Any, ...]) -> bool:
        if len(done) == total:
            return True
        key = (done, recent)
        if key in seen:
            return False
        seen.add(key)
        for i, record in enumerate(operations):
            if i in done or not precedes[i] <= done:
                continue
            if record.kind == "write":
                window = (recent + (record.value,))[-k:]
                if explore(done | {i}, window):
                    return True
            elif any(record.value == held for held in recent):
                if explore(done | {i}, recent):
                    return True
        for i in optional:
            if i in done or not precedes[i] <= done:
                continue
            if explore(done | {i}, recent):
                return True
        return False

    return explore(frozenset(), (BOTTOM,))


def atomicity_spectrum(history: History, max_k: int | None = None) -> int | None:
    """The smallest ``k`` for which ``history`` is k-atomic, or ``None``.

    ``k = 1`` means the history is atomic.  Any history whose reads all
    return *some* written (or initial) value without reading from the
    future satisfies ``k = len(writes) + 1``, so the scan is bounded; a
    ``None`` result means validity itself (or a future read) is broken and
    no ``k`` helps.  ``max_k`` caps the scan for callers that only care
    about a prefix of the spectrum.
    """
    limit = max_k if max_k is not None else len(history.writes()) + 1
    for k in range(1, limit + 1):
        if check_k_atomicity(history, k).ok:
            return k
    return None
