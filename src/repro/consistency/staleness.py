"""Measured staleness: how many newer completed writes each read skipped.

Where :mod:`repro.consistency.kat` asks whether a bound *could* explain a
history, this module measures what the run actually served: for each
complete read, the number of writes that had already completed when the
read was invoked minus the index of the write whose value it returned
(clamped at 0 — a read returning a concurrent, fresher write is not stale).
A fault-free atomic run measures all zeros; the ``k-atomic`` backend's
bounded-lag view measures at most ``bound − 1`` on every read.

:func:`staleness_distribution` aggregates the samples into the plain-data
shape trial results and benchmarks carry: read count, max, mean and p99,
with a ``per_key`` breakdown when a sharded run supplies several
histories.  Reads whose value matches no write (an inconsistent history)
are counted ``unassigned`` and excluded from the statistics rather than
guessed at.
"""

from __future__ import annotations

import statistics
from bisect import bisect_left
from typing import Any, Mapping

from repro.spec.atomicity import _linear_extension_key
from repro.spec.history import History


def read_staleness(history: History) -> list[int | None]:
    """Per-read staleness samples, in linear-extension (response) order.

    ``None`` marks a read whose value matches no write — unattributable,
    excluded from distributions.
    """
    values = history.written_values()
    writes = history.writes()
    write_responses = [w.response_step for w in writes if w.complete]

    try:
        index_of: dict[Any, int] | None = {}
        for j, value in enumerate(values):
            index_of.setdefault(value, j)
    except TypeError:
        index_of = None

    samples: list[int | None] = []
    for read in sorted(history.reads(complete_only=True), key=_linear_extension_key):
        j: int | None = None
        if index_of is not None:
            try:
                j = index_of.get(read.value)
            except TypeError:
                j = None
        if j is None:
            # Prefilter miss: candidacy is defined by ``==``, like the checkers.
            for candidate, value in enumerate(values):
                if value == read.value:
                    j = candidate
                    break
        if j is None:
            samples.append(None)
            continue
        completed = bisect_left(write_responses, read.invocation_step)
        lag = completed - j
        samples.append(lag if lag > 0 else 0)
    return samples


def _stats(samples: list[int | None]) -> dict[str, Any]:
    known = sorted(s for s in samples if s is not None)
    payload: dict[str, Any] = {
        "reads": len(samples),
        "max": known[-1] if known else 0,
        "mean": round(statistics.fmean(known), 4) if known else 0.0,
        # Same nearest-rank p99 convention as the benchmark latency stats.
        "p99": known[max(0, -(-99 * len(known) // 100) - 1)] if known else 0,
    }
    unassigned = len(samples) - len(known)
    if unassigned:
        payload["unassigned"] = unassigned
    return payload


def staleness_distribution(histories: Mapping[str, History] | History) -> dict[str, Any]:
    """Aggregate staleness statistics over one history or a keyed family.

    Returns ``{"reads", "max", "mean", "p99"}`` (plus ``"unassigned"`` when
    any read's value was unattributable), and adds a ``"per_key"`` map of
    the same shape when more than one keyed history is supplied — plain
    data, byte-stable under ``json.dumps(sort_keys=True)``.
    """
    if isinstance(histories, History):
        histories = {"default": histories}
    per_key = {key: read_staleness(histories[key]) for key in sorted(histories)}
    combined: list[int | None] = [s for key in sorted(per_key) for s in per_key[key]]
    payload = _stats(combined)
    if len(per_key) > 1:
        payload["per_key"] = {key: _stats(samples) for key, samples in per_key.items()}
    return payload
