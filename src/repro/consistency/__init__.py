"""``repro.consistency`` — the k-atomicity spectrum.

Three layers over one vocabulary of consistency-model strings:

* **verification** (:mod:`~repro.consistency.kat`) —
  :func:`check_k_atomicity` (exact SWMR greedy + MWMR k-frontier search),
  the brute-force :func:`check_k_atomicity_reference` oracle, and
  :func:`atomicity_spectrum`;
* **measurement** (:mod:`~repro.consistency.staleness`) — per-read
  staleness samples and their distribution;
* **dispatch** (:mod:`~repro.consistency.models`) — the checker registry
  behind :meth:`Cluster.check` and the explorer, :class:`CheckVerdict`,
  and the ``"atomic"``/``"k-atomic(N)"`` model-string parser the
  ``k-atomic`` backend (:mod:`~repro.consistency.bounded`) is selected by.
"""

from repro.consistency.bounded import bounded_stale_view
from repro.consistency.kat import (
    atomicity_spectrum,
    check_k_atomicity,
    check_k_atomicity_reference,
)
from repro.consistency.models import (
    CHECKS,
    DEFAULT_K,
    CheckerSpec,
    CheckVerdict,
    available_checks,
    canonical_check_name,
    checker_specs,
    consistency_bound,
    parse_consistency,
    resolve_check,
    run_check,
)
from repro.consistency.staleness import read_staleness, staleness_distribution

__all__ = [
    "CHECKS",
    "DEFAULT_K",
    "CheckVerdict",
    "CheckerSpec",
    "atomicity_spectrum",
    "available_checks",
    "bounded_stale_view",
    "canonical_check_name",
    "check_k_atomicity",
    "check_k_atomicity_reference",
    "checker_specs",
    "consistency_bound",
    "parse_consistency",
    "read_staleness",
    "resolve_check",
    "run_check",
    "staleness_distribution",
]
