"""Consistency models: the checker registry and per-trial verdicts.

This is the registry half of :mod:`repro.consistency`: every consistency
check the facade can run on a trial's histories — atomicity, regularity,
safety, linearizability, and the parametric ``k-atomic(N)`` family — lives
behind one name-resolution surface, so the trial engine, the schedule
explorer and the CLI all dispatch checks as plain strings (picklable, JSON
round-trippable).

:class:`CheckVerdict` moved here from :mod:`repro.api.cluster` (which
re-exports it) and grew a ``model`` field naming the consistency model a
verdict was judged against.  The field is emitted only when set — the
non-parametric checks leave it unset, so every previously stored JSON
payload stays byte-identical.

Consistency *model strings* (``"atomic"``, ``"k-atomic(N)"``) are the same
vocabulary threaded through ``Cluster(consistency=)``/``BackendRequest`` to
select the bounded-stale backend; :func:`parse_consistency` and
:func:`consistency_bound` are their one parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.consistency.kat import check_k_atomicity
from repro.errors import ConfigurationError
from repro.spec.atomicity import check_atomicity
from repro.spec.history import History
from repro.spec.linearizability import is_linearizable
from repro.spec.regularity import check_swmr_regularity
from repro.spec.safety import check_swmr_safety

#: The bound a bare ``k-atomic`` request resolves to (one write of lag).
DEFAULT_K = 2

_K_PATTERN = re.compile(r"^k-atomic(?:\((\d+)\))?$")

#: Model-name shorthands accepted anywhere a check name is (CLI
#: ``--check-model``, ``Cluster.check``); same vocabulary as the protocol
#: registry's semantics → check mapping.
_CHECK_ALIASES = {
    "atomic": "atomicity",
    "regular": "regularity",
    "safe": "safety",
    "linearizable": "linearizability",
    "bounded-stale": "k-atomic",
}


@dataclass(frozen=True, slots=True)
class CheckVerdict:
    """Outcome of one consistency check on one trial's histories.

    Single-register backends check one history and leave ``per_key`` unset.
    Multi-key backends run the check on every key's history; ``per_key``
    records each key's outcome, ``ok`` is their conjunction, and the
    explanation names the failing keys.  ``model`` names the consistency
    model the verdict was judged against when it is not plain atomic
    vocabulary (the ``k-atomic(N)`` family); absent means the pre-spectrum
    checks, so stored payloads stay byte-comparable.
    """

    check: str
    ok: bool
    explanation: str = ""
    per_key: Mapping[str, bool] | None = None
    model: str | None = None

    def to_dict(self) -> dict[str, Any]:
        payload = {"check": self.check, "ok": self.ok, "explanation": self.explanation}
        if self.per_key is not None:
            payload["per_key"] = dict(self.per_key)
        if self.model is not None:
            payload["model"] = self.model
        return payload


def _verdict_check(name: str, checker: Callable[[History], Any]) -> Callable[[History], CheckVerdict]:
    def run(history: History) -> CheckVerdict:
        verdict = checker(history)
        return CheckVerdict(check=name, ok=verdict.ok, explanation=verdict.explanation or "")

    return run


def _linearizability_check(history: History) -> CheckVerdict:
    ok = is_linearizable(history)
    return CheckVerdict(
        check="linearizability",
        ok=ok,
        explanation="" if ok else "no linearization of the recorded history exists",
    )


def _k_atomic_check(k: int) -> Callable[[History], CheckVerdict]:
    name = f"k-atomic({k})"

    def run(history: History) -> CheckVerdict:
        verdict = check_k_atomicity(history, k)
        return CheckVerdict(
            check=name, ok=verdict.ok, explanation=verdict.explanation or "", model=name
        )

    return run


CHECKS: dict[str, Callable[[History], CheckVerdict]] = {
    # check_atomicity dispatches on the writer population, so the same
    # check name covers SWMR registers, MWMR systems, and sharded shards.
    "atomicity": _verdict_check("atomicity", check_atomicity),
    "regularity": _verdict_check("regularity", check_swmr_regularity),
    "safety": _verdict_check("safety", check_swmr_safety),
    "linearizability": _linearizability_check,
}


@dataclass(frozen=True, slots=True)
class CheckerSpec:
    """Registry metadata for one checker (the ``list-checkers`` table row)."""

    name: str
    description: str
    parametric: bool = False
    aliases: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "parametric": self.parametric,
            "aliases": list(self.aliases),
        }


_CHECKER_SPECS: tuple[CheckerSpec, ...] = (
    CheckerSpec(
        name="atomicity",
        description="the paper's four-property SWMR definition; linearizability for MWMR",
        aliases=("atomic",),
    ),
    CheckerSpec(
        name="k-atomic",
        description="reads lag at most k-1 completed writes; k-atomic(1) is atomicity",
        parametric=True,
        aliases=("bounded-stale",),
    ),
    CheckerSpec(
        name="linearizability",
        description="Wing-Gong search on the recorded history (any writer population)",
        aliases=("linearizable",),
    ),
    CheckerSpec(
        name="regularity",
        description="reads return the last complete or a concurrent write (SWMR)",
        aliases=("regular",),
    ),
    CheckerSpec(
        name="safety",
        description="only reads concurrent with no write are constrained (SWMR)",
        aliases=("safe",),
    ),
)


def checker_specs() -> tuple[CheckerSpec, ...]:
    """All checker registry entries, sorted by name."""
    return _CHECKER_SPECS


def available_checks() -> tuple[str, ...]:
    """All consistency checks addressable from :meth:`Cluster.check`."""
    return tuple(sorted((*CHECKS, "k-atomic")))


def canonical_check_name(name: str, k: int | None = None) -> str:
    """Resolve ``name`` (and an optional ``k``) to its canonical check string.

    Model shorthands map to their checker (``atomic`` → ``atomicity``);
    bare ``k-atomic`` takes the bound from ``k`` (default ``DEFAULT_K``);
    ``k-atomic(N)`` is validated and kept.  Unknown names raise with the
    available vocabulary.
    """
    base = _CHECK_ALIASES.get(name, name)
    match = _K_PATTERN.match(base)
    if match is None:
        if base not in CHECKS:
            raise ConfigurationError(
                f"unknown check {name!r}; available: {', '.join(available_checks())}"
            )
        return base
    inline = match.group(1)
    if inline is not None and k is not None and int(inline) != k:
        raise ConfigurationError(
            f"check {name!r} already carries a bound; conflicting k={k}"
        )
    bound = int(inline) if inline is not None else (k if k is not None else DEFAULT_K)
    if bound < 1:
        raise ConfigurationError(f"k-atomicity needs k >= 1, got {bound}")
    return f"k-atomic({bound})"


def resolve_check(name: str) -> Callable[[History], CheckVerdict]:
    """The runner for check ``name`` (canonical, alias, or ``k-atomic(N)``)."""
    canonical = canonical_check_name(name)
    match = _K_PATTERN.match(canonical)
    if match is not None:
        return _k_atomic_check(int(match.group(1)))
    return CHECKS[canonical]


def run_check(name: str, histories: Mapping[str, History]) -> CheckVerdict:
    """Run check ``name`` on every key's history and aggregate the verdicts.

    Single-key backends get the plain verdict; multi-key backends get the
    conjunction with per-key outcomes recorded in
    :attr:`CheckVerdict.per_key` and failing keys named in the explanation.
    """
    checker = resolve_check(name)
    if len(histories) == 1:
        (history,) = histories.values()
        return checker(history)
    per_key: dict[str, bool] = {}
    failures: list[str] = []
    model: str | None = None
    for key in sorted(histories):
        verdict = checker(histories[key])
        per_key[key] = verdict.ok
        model = verdict.model
        if not verdict.ok:
            failures.append(f"[{key}] {verdict.explanation or 'check failed'}")
    return CheckVerdict(
        check=name,
        ok=not failures,
        explanation="; ".join(failures),
        per_key=per_key,
        model=model,
    )


# ------------------------------------------------------------------ #
# Consistency model strings (the backend-selection vocabulary)
# ------------------------------------------------------------------ #


def parse_consistency(consistency: str) -> str:
    """Canonicalize a consistency model string: ``atomic`` or ``k-atomic(N)``.

    ``"k-atomic"`` without a bound resolves to ``DEFAULT_K``;
    ``"k-atomic(1)"`` is exactly atomic semantics but keeps its spelling so
    a deliberately-configured bound of 1 stays visible in results.
    """
    if consistency == "atomic":
        return "atomic"
    match = _K_PATTERN.match(_CHECK_ALIASES.get(consistency, consistency))
    if match is None:
        raise ConfigurationError(
            f"unknown consistency model {consistency!r}; "
            "expected 'atomic' or 'k-atomic(N)'"
        )
    bound = int(match.group(1)) if match.group(1) is not None else DEFAULT_K
    if bound < 1:
        raise ConfigurationError(f"k-atomicity needs k >= 1, got {bound}")
    return f"k-atomic({bound})"


def consistency_bound(consistency: str) -> int:
    """The staleness bound a model string implies (``atomic`` → 1)."""
    if consistency == "atomic":
        return 1
    match = _K_PATTERN.match(consistency)
    if match is None or match.group(1) is None:
        raise ConfigurationError(
            f"unknown consistency model {consistency!r}; "
            "expected 'atomic' or 'k-atomic(N)'"
        )
    return int(match.group(1))
