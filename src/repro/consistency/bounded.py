"""The bounded-lag read view: an atomic history served through a k-window.

:func:`bounded_stale_view` is the semantic core of the ``k-atomic`` backend
(:mod:`repro.api.backends`): it takes the history an atomic inner system
recorded and rewrites every complete read to the value ``bound − 1`` writes
older than the one it returned — the observable behaviour of a replica that
lags the primary by a fixed window.  Reads early in the run clamp to the
initial ⊥ (write index 0), so the staleness each read serves never exceeds
``bound − 1`` completed writes and the transformed history is
``bound``-atomic by construction whenever the inner history was atomic.

The transformation is a pure function of the input history — no clocks, no
randomness — so a backend built on it is byte-identical across simulation
engines and serial/parallel execution for free.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SpecificationError
from repro.spec.history import History, OperationRecord


def _write_index_map(values: list[Any]) -> dict[Any, int] | None:
    """value → its first write index (``BOTTOM`` → 0), or None if unhashable."""
    try:
        index_of: dict[Any, int] = {}
        for j, value in enumerate(values):
            index_of.setdefault(value, j)
        return index_of
    except TypeError:
        return None


def _index_of(value: Any, values: list[Any], index_of: dict[Any, int] | None) -> int | None:
    # The dict is only a prefilter; membership itself is defined by ``==``
    # (the convention of every spec checker), so a miss falls back to a scan.
    if index_of is not None:
        try:
            found = index_of.get(value)
        except TypeError:
            found = None
        if found is not None:
            return found
    for j, candidate in enumerate(values):
        if candidate == value:
            return j
    return None


def bounded_stale_view(history: History, bound: int) -> History:
    """``history`` as served by a replica lagging ``bound − 1`` writes behind.

    Each complete read whose value matches write index ``j`` is rewritten
    to ``values[max(0, j − (bound − 1))]``.  Reads whose value matches no
    write (an already-inconsistent inner history) and incomplete reads pass
    through unchanged, as do all writes.  ``bound = 1`` is the identity —
    an atomic replica lags by nothing.
    """
    if bound < 1:
        raise SpecificationError(f"staleness bound must be >= 1, got {bound}")
    if bound == 1:
        return history
    values = history.written_values()
    index_of = _write_index_map(values)
    records: list[OperationRecord] = []
    for record in history.records:
        if record.kind != "read" or not record.complete:
            records.append(record)
            continue
        j = _index_of(record.value, values, index_of)
        if j is None:
            records.append(record)
            continue
        lagged = j - (bound - 1)
        if lagged < 0:
            lagged = 0
        records.append(
            OperationRecord(
                op_id=record.op_id,
                kind=record.kind,
                client=record.client,
                invoked_at=record.invoked_at,
                invocation_step=record.invocation_step,
                value=values[lagged],  # values[0] is the initial ⊥
                responded_at=record.responded_at,
                response_step=record.response_step,
            )
        )
    return History(records)
