"""The write-bound recurrence and its consequences (Lemmas 1–2, Prop. 2).

The heart of the write lower bound is the Fibonacci-like sequence

.. math::

    t_{-1} = t_0 = 0, \\qquad t_k = t_{k-1} + 2\\,t_{k-2} + 1,

whose closed form is ``t_k = (2^{k+2} − (−1)^k − 3) / 6`` (paper, proof of
Lemma 2).  ``t_k`` is the number of faults for which the proof defeats any
implementation with ``k``-round writes and 3-round reads at optimal
resilience; inverting gives the headline ``k ≤ ⌊log₂(⌈(3t+1)/2⌉)⌋`` bound,
i.e. ``Ω(log t)`` write rounds.  Proposition 2 then scales every block by
``c = ⌊t/t_k⌋`` to cover resilience up to ``S ≤ 3t + ⌊t/t_k⌋``.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ConfigurationError


@lru_cache(maxsize=None)
def t_k(k: int) -> int:
    """The ``k``-th element of the recurrence (``t_{-1} = t_0 = 0``)."""
    if k < -1:
        raise ConfigurationError(f"k must be at least -1, got {k}")
    if k <= 0:
        return 0
    return t_k(k - 1) + 2 * t_k(k - 2) + 1


def recurrence_sequence(up_to: int) -> list[int]:
    """``[t_1, t_2, …, t_up_to]``."""
    if up_to < 1:
        raise ConfigurationError("up_to must be at least 1")
    return [t_k(k) for k in range(1, up_to + 1)]


def closed_form(k: int) -> int:
    """``(2^{k+2} − (−1)^k − 3) / 6`` — must equal :func:`t_k` exactly."""
    if k < 0:
        raise ConfigurationError(f"closed form defined for k >= 0, got {k}")
    numerator = 2 ** (k + 2) - (-1) ** k - 3
    if numerator % 6:
        raise ArithmeticError(f"closed form not integral at k={k}")  # pragma: no cover
    return numerator // 6


def max_write_rounds(t: int, R: int | None = None) -> int:
    """Lemma 2's bound: writes need more than this many rounds.

    Returns ``min(R, ⌊log₂(⌈(3t+1)/2⌉)⌋)`` — for any ``k`` up to this value,
    no optimally-resilient implementation combines ``k``-round writes with
    3-round reads (given at least ``k`` readers).  ``R=None`` means
    unboundedly many readers.
    """
    if t < 1:
        raise ConfigurationError("the bound is stated for t >= 1")
    bound = math.floor(math.log2(math.ceil((3 * t + 1) / 2)))
    if R is None:
        return bound
    return min(R, bound)


def largest_k_for(t: int) -> int:
    """Largest ``k`` with ``t_k <= t`` (the instance the proof can afford)."""
    if t < 0:
        raise ConfigurationError("t must be non-negative")
    k = 0
    while t_k(k + 1) <= t:
        k += 1
    return k


def resilience_bound(t: int, k: int) -> int:
    """Proposition 2's resilience frontier: ``S ≤ 3t + ⌊t/t_k⌋``.

    The write lower bound holds for every implementation using at most this
    many objects (``t ≥ t_k`` required: the scaling factor ``c = t/t_k``
    must be at least one).
    """
    tk = t_k(k)
    if tk == 0:
        raise ConfigurationError("resilience scaling needs k >= 1")
    if t < tk:
        raise ConfigurationError(f"scaling needs t >= t_k = {tk}, got t={t}")
    return 3 * t + t // tk


def verify_log_identity(t: int) -> bool:
    """Check Lemma 2's inversion: ``t ≥ t_k ⟺ k ≤ ⌊log₂(⌈(3t+1)/2⌉)⌋``.

    Used by property tests: for every ``t``, the largest affordable ``k``
    from the recurrence equals the closed-form log bound.
    """
    return largest_k_for(t) == max_write_rounds(t)
