"""Violation certificates: the structured output of an executed lower bound.

A successful construction ends with a partial run whose visible history
breaks the atomicity definition — typically property (1): some read returns
a value that was never written.  The certificate bundles everything needed
to audit that claim: the parameters, the per-step indistinguishability
evidence, the final run's history, and the checker's verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.spec.atomicity import AtomicityVerdict


@dataclass(slots=True)
class EvidenceLine:
    """One audited step of a construction."""

    run: str
    claim: str
    verified: bool

    def __str__(self) -> str:
        status = "ok" if self.verified else "FAILED"
        return f"[{status}] {self.run}: {self.claim}"


@dataclass(slots=True)
class ViolationCertificate:
    """Evidence that a protocol class admits no implementation.

    Attributes:
        construction: which bound produced it (``read-lower-bound`` /
            ``write-lower-bound``).
        protocol: name of the concrete victim protocol.
        parameters: the instance parameters (t, S, k, R, …).
        final_run: name of the run exhibiting the violation.
        verdict: the atomicity checker's verdict on the final history —
            ``verdict.ok`` must be False for a valid certificate.
        history_description: rendered final history.
        evidence: the audited chain of per-run claims.
    """

    construction: str
    protocol: str
    parameters: dict[str, Any]
    final_run: str
    verdict: AtomicityVerdict
    history_description: str
    evidence: list[EvidenceLine] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True when every evidence line holds and atomicity was violated."""
        return (not self.verdict.ok) and all(line.verified for line in self.evidence)

    def add(self, run: str, claim: str, verified: bool = True) -> None:
        """Append one audited claim."""
        self.evidence.append(EvidenceLine(run=run, claim=claim, verified=verified))

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"=== {self.construction} violation certificate ===",
            f"victim protocol : {self.protocol}",
            f"parameters      : {self.parameters}",
            f"final run       : {self.final_run}",
            f"violated clause : atomicity property {self.verdict.violated_property}",
            f"checker says    : {self.verdict.explanation}",
            "final history:",
            self.history_description,
            f"evidence chain ({len(self.evidence)} audited claims):",
        ]
        lines.extend(f"  {line}" for line in self.evidence)
        lines.append(f"certificate valid: {self.valid}")
        return "\n".join(lines)
