"""The paper's primary contribution, executable.

* :mod:`repro.core.recurrence` — the write-bound recurrence
  ``t_k = t_{k-1} + 2 t_{k-2} + 1``, its closed form, and the
  ``k ≤ ⌊log(⌈(3t+1)/2⌉)⌋`` bound (Lemma 2) with the resilience scaling of
  Proposition 2.
* :mod:`repro.core.blocks` — the block partitions and superblocks of both
  proofs, with the cardinality identities (1)–(3).
* :mod:`repro.core.runs` — scripted partial runs: exact per-round delivery
  control, state capture, forging by state restoration, reply transcripts.
* :mod:`repro.core.read_bound` — Proposition 1 as an executable adversary.
* :mod:`repro.core.write_bound` — Lemma 1 / Proposition 2 as an executable
  adversary.
* :mod:`repro.core.diagrams` — ASCII renderings in the style of the paper's
  Figures 1 and 2.
* :mod:`repro.core.certificates` — structured violation evidence.
"""

from repro.core.recurrence import (
    closed_form,
    max_write_rounds,
    recurrence_sequence,
    resilience_bound,
    t_k,
)
from repro.core.blocks import BlockPartition, read_bound_partition, write_bound_partition
from repro.core.runs import RunResult, ScriptedRun, Script
from repro.core.certificates import ViolationCertificate
from repro.core.read_bound import ReadLowerBoundConstruction
from repro.core.write_bound import WriteLowerBoundConstruction

__all__ = [
    "t_k",
    "recurrence_sequence",
    "closed_form",
    "max_write_rounds",
    "resilience_bound",
    "BlockPartition",
    "read_bound_partition",
    "write_bound_partition",
    "Script",
    "ScriptedRun",
    "RunResult",
    "ViolationCertificate",
    "ReadLowerBoundConstruction",
    "WriteLowerBoundConstruction",
]
