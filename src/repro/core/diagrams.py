"""ASCII block diagrams in the style of the paper's Figures 1 and 2.

The paper illustrates every partial run as a grid: one row per block, one
column per round of each operation; a rectangle means "this block received
this round's messages and replied", ``@`` marks malicious blocks.  This
module renders :class:`~repro.core.runs.RunResult` objects the same way, so
the benchmark harness can regenerate Figure 1 (a)–(n) and Figure 2 (a)–(h)
directly from the executed constructions — the diagrams are *output of the
proof*, not hand-drawn pictures.

Legend of a rendered cell:

* ``[##]`` — the block received this round and the round terminated;
* ``[~~]`` — the block received this round but the round never terminated
  (replies in transit / operation incomplete);
* blank — the round skipped this block;
* a ``@`` alongside the block name — the block took a malicious step
  (a state forgery) somewhere in the run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runs import Deliver, Restore, RunResult, StartRead, StartWrite, TerminateRound


@dataclass(frozen=True, slots=True)
class _Column:
    op: str
    round_no: int
    blocks: frozenset[str]
    terminated: bool


def _columns_of(result: RunResult) -> list[_Column]:
    order: list[tuple[str, int]] = []
    delivered: dict[tuple[str, int], set[str]] = {}
    terminated: set[tuple[str, int]] = set()
    for step in result.script:
        if isinstance(step, Deliver):
            key = (step.op, step.round_no)
            if key not in delivered:
                delivered[key] = set()
                order.append(key)
            delivered[key].update(step.blocks)
        elif isinstance(step, TerminateRound):
            terminated.add((step.op, step.round_no))
    return [
        _Column(op=op, round_no=rnd, blocks=frozenset(delivered[(op, rnd)]),
                terminated=(op, rnd) in terminated)
        for op, rnd in order
    ]


def render_run(result: RunResult, title: str | None = None) -> str:
    """One Figure-1-style grid for a single partial run."""
    columns = _columns_of(result)
    blocks = list(result.partition.names)
    name_width = max((len(b) for b in blocks), default=2) + 2

    headers = [f"{c.op}.{c.round_no}" for c in columns]
    width = max([len(h) for h in headers] + [4]) + 1

    lines: list[str] = []
    if title:
        lines.append(title)
    completed = {
        name: result.ops[name].result
        for name in result.op_order
        if result.ops[name].complete and result.ops[name].kind == "read"
    }
    header_row = " " * name_width + "".join(h.ljust(width) for h in headers)
    lines.append(header_row)
    for block in blocks:
        marker = "@" if block in result.malicious_blocks else " "
        row = [f"{marker}{block}".ljust(name_width)]
        for column in columns:
            if block in column.blocks:
                cell = "[##]" if column.terminated else "[~~]"
            else:
                cell = ""
            row.append(cell.ljust(width))
        lines.append("".join(row).rstrip())
    forged = [step for step in result.script if isinstance(step, Restore)]
    if forged:
        lines.append("forgeries:")
        for step in forged:
            lines.append(f"  @{step.block}: restore to state before {step.point[0]}.{step.point[1]}")
    if completed:
        returns = ", ".join(f"{op} -> {value!r}" for op, value in completed.items())
        lines.append(f"returns: {returns}")
    return "\n".join(lines)


def render_chain(runs: list[RunResult], caption: str) -> str:
    """Render several runs as lettered sub-figures, like the paper."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    parts = [caption]
    for index, run in enumerate(runs):
        letter = letters[index % len(letters)]
        parts.append("")
        parts.append(render_run(run, title=f"({letter}) {run.name}"))
    return "\n".join(parts)


def legend() -> str:
    """The cell legend, printed once per figure."""
    return (
        "legend: [##] round received & terminated   [~~] received, replies in "
        "transit   (blank) skipped   @B block acted maliciously"
    )
