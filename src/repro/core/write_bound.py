"""Lemma 1 / Proposition 2, executable: 3-round reads force Ω(log t) writes.

The proof of Section 4, mechanized over the partition of
:func:`repro.core.blocks.write_bound_partition` (blocks ``B0 … B{k+1}``,
``C1 … Ck``; fault budget ``t_k``; ``S = 3·t_k + 1``; ``k`` readers).

Chain of runs, per appended read ``rd_l``:

* ``pr_l`` — extends the previous deletion run ``Δpr_{l−1}`` by the missing
  steps of a complete ``rd_l`` (rounds one/two skip ``M_{l−2} ∪ P_{l+1}``,
  round three skips ``M_{l−2} ∪ 𝒞_{l+1}``; ``rd_k`` skips
  ``M_{k−2} ∪ P_{k+1}`` throughout).  ``rd_l`` hears only from correct
  blocks.
* ``prC_l`` — the mimicry run (the paper's ``@pr_{l−1}`` extended by a fresh
  complete ``rd_l``): the previous reference run *without* ``rd_l``'s
  initial round-one steps, in which superblock ``P_l`` (plus ``M_{l−3}``)
  is malicious and forges ``σ^l_0`` / ``σ^*_{k−l}`` — discovered here
  adaptively by :func:`repro.core.runs.repair_against` — so that ``rd_l``
  cannot distinguish ``prC_l`` from ``pr_l``.  In ``prC_l`` the read
  *succeeds* a complete operation that established value 1, so atomicity
  forces it to return 1; indistinguishability transfers that to ``pr_l``.
* ``Δpr_l`` — the deletion run: one more write round gone
  (``wr^{k−l−1}``), older reads trimmed to type *inc2* (round one
  terminated, round two delivered only to ``𝒞_j``), ``rd_l`` to *inc3*
  (round three delivered but unterminated), with superblock ``M_{l−1}``
  allowed to forge (``B_0 → σ_k`` to ``rd_1``, ``{B_j, C_j} → σ^r_j`` to
  ``rd_{j+1}`` — again discovered adaptively).

``Δpr_k`` contains **no write step at all** yet its complete ``rd_k``
returns 1 — atomicity property (1) violated; the certificate carries the
audited chain, including the per-run Byzantine budgets (exactly ``t_k``
objects, via the superblock cardinality identities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.blocks import WriteBoundPartition, write_bound_partition
from repro.core.certificates import ViolationCertificate
from repro.core.runs import (
    Deliver,
    RunResult,
    Script,
    ScriptedRun,
    StartRead,
    StartWrite,
    TerminateRound,
    repair_against,
)
from repro.errors import ConstructionError, ConstructionEscape
from repro.registers.base import RegisterProtocol
from repro.spec.atomicity import check_swmr_atomicity

#: The value written by the single write operation of the proof.
WRITTEN_VALUE = 1


@dataclass(slots=True)
class WriteBoundOutcome:
    """Certificate plus raw final run of one executed instance."""

    certificate: ViolationCertificate
    final_run: RunResult
    runs_executed: int
    kept_runs: "list[RunResult] | None" = None


class WriteLowerBoundConstruction:
    """Drives the Lemma 1 adversary against a concrete protocol.

    Args:
        protocol_factory: produces victims whose writes take exactly ``k``
            rounds and whose reads complete in three rounds.
        k: the write-round parameter; the instance uses ``t = t_k`` faults
            and ``S = 3·t_k + 1`` objects (× ``scale`` for Proposition 2's
            resilience generalization).
        scale: Proposition 2's block multiplier ``c ≥ 1``.
    """

    def __init__(
        self,
        protocol_factory: Callable[[], RegisterProtocol],
        k: int,
        scale: int = 1,
    ) -> None:
        if k < 1:
            raise ConstructionError("the write bound needs k >= 1")
        self.k = k
        self.wbp: WriteBoundPartition = write_bound_partition(k, scale=scale)
        if not self.wbp.verify_identities():
            raise ConstructionError("superblock cardinality identities failed")
        self.partition = self.wbp.partition
        self.t = self.wbp.t
        self.runner = ScriptedRun(protocol_factory, self.partition, t=self.t, n_readers=k)
        if self.runner.probe.write_rounds != k:
            raise ConstructionError(
                f"victim writes take {self.runner.probe.write_rounds} rounds, expected k={k}"
            )

    # ------------------------------------------------------------------ #
    # Skip patterns and script builders
    # ------------------------------------------------------------------ #

    def _b_blocks(self) -> tuple[str, ...]:
        return tuple(f"B{j}" for j in range(0, self.k + 2))

    def _skip_early(self, l: int) -> tuple[str, ...]:
        """Skips of rounds one and two of ``rd_l``: ``M_{l−2} ∪ P_{l+1}``."""
        return self.wbp.malicious_superblock(l - 2) + self.wbp.parity_superblock(l + 1)

    def _skip_third(self, l: int) -> tuple[str, ...]:
        """Skips of round three: ``M_{l−2} ∪ 𝒞_{l+1}`` (``rd_k``: as early)."""
        if l == self.k:
            return self._skip_early(l)
        return self.wbp.malicious_superblock(l - 2) + self.wbp.correct_superblock(l + 1)

    def _prinit_steps(self, exclude: int | None = None) -> Script:
        """Start every read and deliver its round one to ``P_l`` only."""
        steps: Script = []
        for l in range(1, self.k + 1):
            if l == exclude:
                continue
            op = f"rd{l}"
            steps.append(StartRead(op, reader=l))
            parity = self.wbp.parity_superblock(l)
            if parity:
                steps.append(Deliver(op, 1, parity))
        return steps

    def _write_steps(self, i: int) -> Script:
        """``wr^{k−i}``: rounds ``1..k−i`` terminated, round ``k−i+1`` partial."""
        steps: Script = [StartWrite("write", WRITTEN_VALUE)]
        for round_no in range(1, self.k - i + 1):
            steps.append(Deliver("write", round_no, self._b_blocks()))
            steps.append(TerminateRound("write", round_no))
        parity = 2 - (i % 2)
        skipped = set(self.wbp.parity_superblock(parity))
        partial = tuple(name for name in self._b_blocks() if name not in skipped)
        if partial:
            steps.append(Deliver("write", self.k - i + 1, partial))
        return steps

    def _write_full_steps(self) -> Script:
        """``wr^k``: the complete ``k``-round write, skipping every ``C``."""
        steps: Script = [StartWrite("write", WRITTEN_VALUE)]
        for round_no in range(1, self.k + 1):
            steps.append(Deliver("write", round_no, self._b_blocks()))
            steps.append(TerminateRound("write", round_no))
        return steps

    def _completion_steps(self, l: int) -> Script:
        """Missing steps of a complete ``rd_l`` (round one started at prinit)."""
        op = f"rd{l}"
        early = self.partition.complement(self._skip_early(l))
        parity = set(self.wbp.parity_superblock(l))
        round_one_missing = tuple(name for name in early if name not in parity)
        steps: Script = []
        if round_one_missing:
            steps.append(Deliver(op, 1, round_one_missing))
        steps.append(TerminateRound(op, 1))
        steps.append(Deliver(op, 2, early))
        steps.append(TerminateRound(op, 2))
        third = self.partition.complement(self._skip_third(l))
        steps.append(Deliver(op, 3, third))
        steps.append(TerminateRound(op, 3))
        return steps

    def _fresh_complete_read_steps(self, l: int) -> Script:
        """A from-scratch complete ``rd_l`` (for ``prC_l``: no prinit start)."""
        op = f"rd{l}"
        early = self.partition.complement(self._skip_early(l))
        third = self.partition.complement(self._skip_third(l))
        return [
            StartRead(op, reader=l),
            Deliver(op, 1, early),
            TerminateRound(op, 1),
            Deliver(op, 2, early),
            TerminateRound(op, 2),
            Deliver(op, 3, third),
            TerminateRound(op, 3),
        ]

    def _inc2_steps(self, j: int) -> Script:
        """Type *inc2* ``rd_j``: round one terminated, round two only to ``𝒞_j``."""
        op = f"rd{j}"
        early = self.partition.complement(self._skip_early(j))
        parity = set(self.wbp.parity_superblock(j))
        round_one_missing = tuple(name for name in early if name not in parity)
        steps: Script = []
        if round_one_missing:
            steps.append(Deliver(op, 1, round_one_missing))
        steps.append(TerminateRound(op, 1))
        correct = self.wbp.correct_superblock(j)
        if correct:
            steps.append(Deliver(op, 2, correct))  # never terminated
        return steps

    def _inc3_steps(self, l: int) -> Script:
        """Type *inc3* ``rd_l``: rounds one/two terminated, round three pending."""
        op = f"rd{l}"
        early = self.partition.complement(self._skip_early(l))
        parity = set(self.wbp.parity_superblock(l))
        round_one_missing = tuple(name for name in early if name not in parity)
        steps: Script = []
        if round_one_missing:
            steps.append(Deliver(op, 1, round_one_missing))
        steps.append(TerminateRound(op, 1))
        steps.append(Deliver(op, 2, early))
        steps.append(TerminateRound(op, 2))
        third_skips = set(
            self.wbp.malicious_superblock(l - 2)
            + self.wbp.correct_superblock(l + 1)
            + self.wbp.parity_superblock(l + 1)
        )
        third = tuple(name for name in self.partition.names if name not in third_skips)
        if third:
            steps.append(Deliver(op, 3, third))  # never terminated
        return steps

    def _delta_script(self, l: int) -> Script:
        """Structural part of ``Δpr_l`` (forgeries added by the repair pass)."""
        steps: Script = self._prinit_steps()
        if l < self.k:
            steps.extend(self._write_steps(l + 1))  # wr^{k−l−1}
        # l == k: no write is invoked at all.
        for j in range(1, l):
            steps.extend(self._inc2_steps(j))
        if l < self.k:
            steps.extend(self._inc3_steps(l))
        else:
            steps.extend(self._completion_steps(self.k))
        return steps

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, keep_runs: bool = False) -> WriteBoundOutcome:
        """Run the chain ``pr_1, prC_1, Δpr_1, …, Δpr_k``; emit the certificate.

        With ``keep_runs`` the outcome carries every executed run for
        diagram rendering (Figure 2).
        """
        kept: list[RunResult] | None = [] if keep_runs else None
        certificate = ViolationCertificate(
            construction="write-lower-bound (Lemma 1 / Proposition 2)",
            protocol=self.runner.probe.name,
            parameters={
                "k": self.k,
                "t": self.t,
                "S": self.partition.S,
                "R": self.k,
                "scale": self.wbp.scale,
            },
            final_run="",
            verdict=check_swmr_atomicity(self.runner.execute("empty", []).history()),
            history_description="",
        )
        certificate.add(
            "partition",
            (
                f"block partition over S={self.partition.S} with superblock identities "
                f"(1)-(3) verified; every read skips exactly t={self.t} objects per round"
            ),
            verified=self.wbp.verify_identities(),
        )

        runs_executed = 0
        previous_script: Script | None = None
        previous_pr: RunResult | None = None
        delta_run: RunResult | None = None

        for l in range(1, self.k + 1):
            op = f"rd{l}"

            if l == 1:
                pr_script = self._prinit_steps() + self._write_steps(1) + self._completion_steps(1)
            else:
                assert delta_run is not None
                pr_script = list(delta_run.script) + self._completion_steps(l)
            pr_run = self.runner.execute(f"pr{l}", pr_script)
            runs_executed += 1
            if kept is not None:
                kept.append(pr_run)
            if not pr_run.is_complete(op):
                raise ConstructionEscape(
                    f"pr{l}:{op}",
                    "read did not complete within three scripted rounds "
                    "(the protocol is outside Lemma 1's class)",
                )
            returned = pr_run.returned(op)

            # Mimicry run prC_l: establishes "by atomicity, rd_l returns 1".
            if l == 1:
                mimic_base = self._prinit_steps(exclude=1) + self._write_full_steps()
                allowed = self.wbp.parity_superblock(1)
            else:
                assert previous_script is not None
                mimic_base = [
                    step
                    for step in previous_script
                    if getattr(step, "op", None) != op
                ]
                allowed = self.wbp.parity_superblock(l) + self.wbp.malicious_superblock(l - 3)
            mimic_base = list(mimic_base) + self._fresh_complete_read_steps(l)
            mimic_run = repair_against(
                self.runner,
                f"prC{l}",
                mimic_base,
                reference=pr_run,
                allowed_blocks=allowed,
                compare_ops=[op],
            )
            runs_executed += 1
            if kept is not None:
                kept.append(mimic_run)
            mimic_returned = mimic_run.returned(op)
            mimic_faults = mimic_run.malicious_object_count()
            certificate.add(
                f"prC{l}",
                (
                    f"{op} cannot distinguish prC{l} (malicious ⊆ P_{l} ∪ M_{l-3}, "
                    f"{mimic_faults} ≤ t={self.t} objects) from pr{l}; both return "
                    f"{mimic_returned!r}"
                ),
                verified=(mimic_returned == returned and mimic_faults <= self.t),
            )
            if returned != WRITTEN_VALUE:
                # prC_l is then itself the violating legal run: rd_l succeeds
                # an operation that established value 1 yet returned otherwise.
                history = mimic_run.history()
                verdict = check_swmr_atomicity(history)
                certificate.final_run = f"prC{l}"
                certificate.verdict = verdict
                certificate.history_description = history.describe()
                certificate.add(
                    f"prC{l}",
                    (
                        f"{op} returned {returned!r} instead of {WRITTEN_VALUE!r}: atomicity "
                        f"property {verdict.violated_property} violated in prC{l} itself"
                    ),
                    verified=not verdict.ok,
                )
                return WriteBoundOutcome(
                    certificate=certificate,
                    final_run=mimic_run,
                    runs_executed=runs_executed,
                    kept_runs=kept,
                )
            certificate.add(f"pr{l}", f"{op} (reader r{l}) returns {returned!r}")

            # Deletion run Δpr_l.
            delta_base = self._delta_script(l)
            malicious_budget = self.wbp.malicious_superblock(l - 1)
            compare = [f"rd{j}" for j in range(1, l + 1)]
            delta_run = repair_against(
                self.runner,
                f"dpr{l}",
                delta_base,
                reference=pr_run,
                allowed_blocks=malicious_budget,
                compare_ops=compare,
            )
            runs_executed += 1
            if kept is not None:
                kept.append(delta_run)
            delta_faults = delta_run.malicious_object_count()
            budget_size = self.partition.size(malicious_budget)
            certificate.add(
                f"Δpr{l}",
                (
                    f"one more write round deleted; forgeries confined to M_{l-1} "
                    f"({delta_faults} ≤ |∪M_{l-1}| = {budget_size} ≤ t={self.t} objects)"
                ),
                verified=delta_faults <= budget_size <= self.t,
            )

            previous_script = pr_script
            previous_pr = pr_run

        assert delta_run is not None
        final_history = delta_run.history()
        verdict = check_swmr_atomicity(final_history)
        certificate.final_run = f"Δpr{self.k}"
        certificate.verdict = verdict
        certificate.history_description = final_history.describe()
        final_return = delta_run.returned(f"rd{self.k}")
        certificate.add(
            f"Δpr{self.k}",
            "no write step survives (no object ever hears from the writer)",
            verified="write" not in delta_run.ops,
        )
        certificate.add(
            f"Δpr{self.k}",
            (
                f"rd{self.k} returns {final_return!r}; atomicity property "
                f"{verdict.violated_property} violated: {verdict.explanation}"
            ),
            verified=(final_return == WRITTEN_VALUE and not verdict.ok),
        )
        return WriteBoundOutcome(
            certificate=certificate,
            final_run=delta_run,
            runs_executed=runs_executed,
            kept_runs=kept,
        )
