"""Scripted partial runs: exact adversarial control over protocol executions.

The lower-bound proofs manipulate runs at a granularity the event-loop
simulator is deliberately too honest for: *"round one of ``rd_1`` skips
block ``B_2``"*, *"objects in ``B_1`` forge their state to ``σ_{k−1}``
before replying"*, *"round ``i`` is not terminated; its replies are in
transit"*.  This module provides that control:

* a :class:`Script` is a list of steps — start an operation, deliver one of
  its rounds to chosen blocks, terminate a round, or *restore* a block's
  objects to states captured in another run (the proofs' forgery, performed
  literally: malicious objects present genuine states from a counterfactual
  run);
* :class:`ScriptedRun` executes a script against fresh objects, recording
  **per-delivery state captures** (the σ's of the proofs), **reply
  transcripts** per terminated round (what the invoking client actually
  sees — the currency of every indistinguishability argument), and the
  operation history for the atomicity checker;
* :func:`repair_against` is the adaptive adversary: given a structurally
  trimmed script (a ``Δ`` run), a reference run and a budget of blocks that
  may act maliciously, it inserts exactly the state restorations needed to
  make every terminated-round transcript match the reference — or raises
  :class:`~repro.errors.ConstructionError` if that would take more Byzantine
  power than the proof allows.  The restorations it discovers are precisely
  the forgeries written down in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.blocks import BlockPartition
from repro.errors import ConstructionError, ConstructionEscape
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.sim.network import Message
from repro.sim.process import ObjectServer, copy_state
from repro.sim.rounds import RoundOutcome, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.sim.tracing import _freeze
from repro.spec.history import History, OperationRecord
from repro.types import ProcessId, fresh_operation_id

#: Capture key for the pristine initial state of every object.
INITIAL = ("__init__", 0)
#: Capture key for the state at the very end of a run.
END = ("__end__", 0)

CaptureKey = tuple[str, int]
Captures = dict[tuple[str, int, ProcessId], dict[str, Any]]


# --------------------------------------------------------------------- #
# Script steps
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class StartWrite:
    """Invoke ``write(value)`` named ``op`` at the (single) writer."""

    op: str
    value: Any


@dataclass(frozen=True, slots=True)
class StartRead:
    """Invoke a read named ``op`` at reader index ``reader`` (1-based)."""

    op: str
    reader: int


@dataclass(frozen=True, slots=True)
class Deliver:
    """Deliver round ``round_no`` of ``op`` to every object in ``blocks``.

    Objects process the invocation and produce replies; the replies are
    buffered (in transit) until :class:`TerminateRound` hands them to the
    client.  Delivering the same round to an object twice is an error.
    """

    op: str
    round_no: int
    blocks: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class TerminateRound:
    """End round ``round_no`` of ``op``: the client consumes buffered replies.

    The protocol's own round rule must accept the offered reply set (eagerly
    or at quiescence); otherwise the construction has failed to trap this
    protocol and :class:`~repro.errors.ConstructionEscape` is raised.
    """

    op: str
    round_no: int


@dataclass(frozen=True, slots=True)
class Restore:
    """Malicious step: overwrite ``block``'s object states from captures.

    ``source`` holds another run's captures; each object is restored to the
    state it had in that run just before delivery ``point = (op, round)``
    (or at ``INITIAL``/``END``).  This is the proofs' "forge state to σ".
    """

    block: str
    source: Captures
    point: CaptureKey
    note: str = ""

    def __repr__(self) -> str:  # source is bulky; keep reprs readable
        return f"Restore({self.block}, point={self.point}, note={self.note!r})"


Step = StartWrite | StartRead | Deliver | TerminateRound | Restore
Script = list[Step]


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class _OpState:
    name: str
    kind: str
    client: ProcessId
    generator: ProtocolGenerator
    specs: list[RoundSpec] = field(default_factory=list)
    replies: list[dict[ProcessId, Mapping[str, Any]]] = field(default_factory=list)
    terminated: list[bool] = field(default_factory=list)
    delivered: list[set[ProcessId]] = field(default_factory=list)
    complete: bool = False
    result: Any = None
    invocation_step: int = 0
    response_step: int | None = None
    declared_value: Any = None


@dataclass
class RunResult:
    """Everything a finished scripted run exposes to the constructions."""

    name: str
    partition: BlockPartition
    captures: Captures
    ops: dict[str, "_OpState"]
    op_order: list[str]
    malicious_blocks: set[str]
    script: Script

    def transcript(self, op: str, round_no: int) -> tuple[tuple[ProcessId, Any], ...] | None:
        """Frozen reply set of a terminated round; None if not terminated."""
        state = self.ops[op]
        index = round_no - 1
        if index >= len(state.terminated) or not state.terminated[index]:
            return None
        return tuple(
            sorted((pid, _freeze(payload)) for pid, payload in state.replies[index].items())
        )

    def returned(self, op: str) -> Any:
        """Result of a completed operation (None when incomplete)."""
        return self.ops[op].result if self.ops[op].complete else None

    def is_complete(self, op: str) -> bool:
        return self.ops[op].complete

    def malicious_object_count(self) -> int:
        """Objects belonging to blocks that took a malicious step."""
        return self.partition.size(self.malicious_blocks)

    def history(self) -> History:
        """The run's operation history (for the atomicity checker)."""
        records = []
        for name in self.op_order:
            op = self.ops[name]
            records.append(
                OperationRecord(
                    op_id=fresh_operation_id(op.client, op.kind),
                    kind=op.kind,
                    client=op.client,
                    invoked_at=op.invocation_step,
                    invocation_step=op.invocation_step,
                    value=op.result if (op.kind == "read" and op.complete) else op.declared_value,
                    responded_at=op.response_step,
                    response_step=op.response_step,
                )
            )
        return History(records)

    def end_state(self, pid: ProcessId) -> dict[str, Any]:
        """Final state of one object."""
        return copy_state(self.captures[(*END, pid)])


class ScriptedRun:
    """Executes :class:`Script` objects against fresh storage objects.

    Takes a protocol *factory* rather than an instance: every execution gets
    a fresh protocol (and fresh objects), so re-running the same script is
    bit-for-bit reproducible and states captured in one run can be compared
    with, or transplanted into, another — the mechanism behind every
    "forge state to σ" step.
    """

    def __init__(
        self,
        protocol_factory: "Any",
        partition: BlockPartition,
        t: int,
        n_readers: int,
    ) -> None:
        probe: RegisterProtocol = protocol_factory()
        probe.validate_configuration(partition.S, t)
        self.protocol_factory = protocol_factory
        self.probe = probe
        self.partition = partition
        self.ctx = ProtocolContext(
            S=partition.S, t=t, objects=partition.union(partition.names)
        )
        self.n_readers = n_readers

    def execute(self, name: str, script: Script) -> RunResult:
        """Run ``script`` from scratch and return the evidence bundle."""
        from repro.types import reader_id, writer_id

        protocol: RegisterProtocol = self.protocol_factory()
        servers = {
            pid: ObjectServer(pid=pid, handler=protocol.object_handler())
            for pid in self.ctx.objects
        }
        captures: Captures = {}
        for pid, server in servers.items():
            captures[(*INITIAL, pid)] = server.snapshot()

        ops: dict[str, _OpState] = {}
        op_order: list[str] = []
        malicious: set[str] = set()
        steps = itertools.count(1)

        def advance(op: _OpState, outcome: RoundOutcome | None, first: bool = False) -> None:
            try:
                spec = next(op.generator) if first else op.generator.send(outcome)
            except StopIteration as stop:
                op.complete = True
                op.result = stop.value
                op.response_step = next(steps)
                return
            op.specs.append(spec)
            op.replies.append({})
            op.terminated.append(False)
            op.delivered.append(set())

        for step in script:
            if isinstance(step, StartWrite):
                if step.op in ops:
                    raise ConstructionError(f"duplicate operation name {step.op!r}")
                generator = protocol.write_generator(self.ctx, step.value)
                op = _OpState(
                    name=step.op,
                    kind="write",
                    client=writer_id(),
                    generator=generator,
                    declared_value=step.value,
                )
                op.invocation_step = next(steps)
                ops[step.op] = op
                op_order.append(step.op)
                advance(op, None, first=True)
            elif isinstance(step, StartRead):
                if step.op in ops:
                    raise ConstructionError(f"duplicate operation name {step.op!r}")
                if not 1 <= step.reader <= self.n_readers:
                    raise ConstructionError(f"reader index {step.reader} out of range")
                generator = protocol.read_generator(self.ctx, reader_id(step.reader))
                op = _OpState(
                    name=step.op,
                    kind="read",
                    client=reader_id(step.reader),
                    generator=generator,
                )
                op.invocation_step = next(steps)
                ops[step.op] = op
                op_order.append(step.op)
                advance(op, None, first=True)
            elif isinstance(step, Deliver):
                op = ops.get(step.op)
                if op is None:
                    raise ConstructionError(f"deliver to unknown operation {step.op!r}")
                if op.complete:
                    raise ConstructionError(f"{step.op} already complete")
                index = step.round_no - 1
                if index != len(op.specs) - 1 or op.terminated[index]:
                    raise ConstructionError(
                        f"{step.op} round {step.round_no} is not the pending round"
                    )
                spec = op.specs[index]
                for pid in self.partition.union(step.blocks):
                    if pid in op.delivered[index]:
                        raise ConstructionError(
                            f"{step.op} round {step.round_no} delivered twice to {pid}"
                        )
                    op.delivered[index].add(pid)
                    server = servers[pid]
                    captures[(step.op, step.round_no, pid)] = server.snapshot()
                    message = Message(
                        src=op.client,
                        dst=pid,
                        op=fresh_operation_id(op.client, op.kind),
                        round_no=step.round_no,
                        tag=spec.tag,
                        payload=spec.payload_for(pid),
                    )
                    reply = server.handler.handle(server.state, message)
                    op.replies[index][pid] = reply
            elif isinstance(step, TerminateRound):
                op = ops.get(step.op)
                if op is None:
                    raise ConstructionError(f"terminate for unknown operation {step.op!r}")
                index = step.round_no - 1
                if index != len(op.specs) - 1 or op.terminated[index]:
                    raise ConstructionError(
                        f"{step.op} round {step.round_no} is not pending termination"
                    )
                spec = op.specs[index]
                replies = op.replies[index]
                if not (
                    spec.rule.satisfied(replies) or spec.rule.acceptable_at_quiescence(replies)
                ):
                    raise ConstructionEscape(
                        step=f"{name}:{step.op}:round{step.round_no}",
                        reason=(
                            f"round rule rejects the offered {len(replies)} replies "
                            f"(min_count={spec.rule.min_count})"
                        ),
                    )
                op.terminated[index] = True
                outcome = RoundOutcome(
                    round_no=step.round_no, replies=dict(replies), terminated_at=0
                )
                advance(op, outcome)
            elif isinstance(step, Restore):
                for pid in self.partition.members(step.block):
                    key = (*step.point, pid)
                    if key not in step.source:
                        raise ConstructionError(
                            f"no capture {step.point} for {pid} in restore source"
                        )
                    servers[pid].restore(step.source[key])
                malicious.add(step.block)
            else:  # pragma: no cover - exhaustive match
                raise ConstructionError(f"unknown step {step!r}")

        for pid, server in servers.items():
            captures[(*END, pid)] = server.snapshot()

        return RunResult(
            name=name,
            partition=self.partition,
            captures=captures,
            ops=ops,
            op_order=op_order,
            malicious_blocks=malicious,
            script=list(script),
        )


# --------------------------------------------------------------------- #
# The adaptive adversary
# --------------------------------------------------------------------- #


def find_first_mismatch(
    derived: RunResult,
    reference: RunResult,
    ops: Iterable[str],
) -> tuple[str, int, ProcessId] | None:
    """First ``(op, round, object)`` whose terminated-round reply differs.

    Rounds are compared only where terminated in the *derived* run and only
    on objects delivered in both runs; everything else is invisible to the
    respective client and unconstrained by indistinguishability.
    """
    for op_name in ops:
        if op_name not in derived.ops or op_name not in reference.ops:
            continue
        derived_op = derived.ops[op_name]
        for index, terminated in enumerate(derived_op.terminated):
            if not terminated:
                continue
            round_no = index + 1
            ref_op = reference.ops[op_name]
            if index >= len(ref_op.replies):
                continue
            derived_replies = derived_op.replies[index]
            reference_replies = ref_op.replies[index]
            for pid in sorted(derived_replies):
                if pid not in reference_replies:
                    continue
                if _freeze(derived_replies[pid]) != _freeze(reference_replies[pid]):
                    return (op_name, round_no, pid)
    return None


def repair_against(
    runner: ScriptedRun,
    name: str,
    base_script: Script,
    reference: RunResult,
    allowed_blocks: Iterable[str],
    compare_ops: Iterable[str],
    max_iterations: int = 400,
) -> RunResult:
    """Insert forgeries until the derived run is indistinguishable.

    Re-executes ``base_script``, locating the first terminated-round reply
    that differs from ``reference`` and prepending a :class:`Restore` (from
    the reference's captures) to the delivery that produced it.  Blocks
    outside ``allowed_blocks`` may never be touched — exceeding the proof's
    Byzantine budget raises :class:`~repro.errors.ConstructionError`.
    """
    allowed = set(allowed_blocks)
    compare = list(compare_ops)
    script = list(base_script)
    repaired: set[tuple[str, int, str]] = set()

    for _ in range(max_iterations):
        result = runner.execute(name, script)
        mismatch = find_first_mismatch(result, reference, compare)
        if mismatch is None:
            return result
        op_name, round_no, pid = mismatch
        block = runner.partition.block_of(pid)
        if block not in allowed:
            raise ConstructionError(
                f"{name}: transcript repair for {op_name} round {round_no} needs "
                f"block {block}, outside the Byzantine budget {sorted(allowed)}"
            )
        key = (op_name, round_no, block)
        if key in repaired:
            raise ConstructionError(
                f"{name}: repeated repair at {key}; construction diverges"
            )
        repaired.add(key)
        insert_at = _delivery_step_index(script, op_name, round_no, block)
        script.insert(
            insert_at,
            Restore(
                block=block,
                source=reference.captures,
                point=(op_name, round_no),
                note=f"forge before {op_name} round {round_no} (mimic {reference.name})",
            ),
        )
    raise ConstructionError(f"{name}: repair did not converge in {max_iterations} passes")


def _delivery_step_index(script: Script, op: str, round_no: int, block: str) -> int:
    """Index of the Deliver step carrying (op, round) to ``block``."""
    for i, step in enumerate(script):
        if (
            isinstance(step, Deliver)
            and step.op == op
            and step.round_no == round_no
            and block in step.blocks
        ):
            return i
    raise ConstructionError(
        f"no delivery of {op} round {round_no} to block {block} found in script"
    )
