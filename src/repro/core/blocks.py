"""Block partitions and superblocks used by the lower-bound proofs.

Both proofs partition the object set into named *blocks* and schedule
deliveries per block ("round two of ``rd_1`` skips ``B_1``").  The write
bound additionally groups blocks into three *superblock* families — the
malicious ``M_l``, the parity ``P_l`` and the correct ``C_l`` — whose
cardinalities obey the identities (1)–(3) of the paper:

.. math::

    |\\cup M_l| = t_{l+1}, \\quad
    |\\cup P_l| = t_k - t_{l-2}, \\quad
    |\\cup \\mathcal{C}_l| = t_k - t_{l-2}.

These identities are what make every read skip exactly ``t_k`` objects per
round and every mimicry run use exactly ``t_k`` malicious objects; the
property-test suite checks them for every ``k`` up to 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.recurrence import t_k
from repro.errors import ConfigurationError
from repro.types import ProcessId, object_ids


@dataclass(frozen=True)
class BlockPartition:
    """A named partition of the object set.

    ``blocks`` maps block names (e.g. ``"B1"``, ``"C3"``) to disjoint,
    collectively exhaustive tuples of object ids.
    """

    S: int
    blocks: Mapping[str, tuple[ProcessId, ...]]

    def __post_init__(self) -> None:
        seen: set[ProcessId] = set()
        for name, members in self.blocks.items():
            overlap = seen & set(members)
            if overlap:
                raise ConfigurationError(f"block {name} overlaps others: {sorted(overlap)}")
            seen.update(members)
        if len(seen) != self.S:
            raise ConfigurationError(
                f"partition covers {len(seen)} objects, expected S={self.S}"
            )

    @property
    def names(self) -> tuple[str, ...]:
        """Block names in declaration order."""
        return tuple(self.blocks)

    def members(self, name: str) -> tuple[ProcessId, ...]:
        """Objects of one block."""
        try:
            return self.blocks[name]
        except KeyError:
            raise ConfigurationError(f"unknown block {name!r}") from None

    def union(self, names: Iterable[str]) -> tuple[ProcessId, ...]:
        """Objects of several blocks, deterministic order."""
        collected: list[ProcessId] = []
        for name in names:
            collected.extend(self.members(name))
        return tuple(sorted(collected))

    def size(self, names: Iterable[str]) -> int:
        """Total object count of several blocks."""
        return sum(len(self.members(name)) for name in names)

    def block_of(self, pid: ProcessId) -> str:
        """Name of the block containing ``pid``."""
        for name, members in self.blocks.items():
            if pid in members:
                return name
        raise ConfigurationError(f"{pid} is in no block")

    def complement(self, names: Iterable[str]) -> tuple[str, ...]:
        """Block names not in ``names`` (the delivery set of a skip)."""
        excluded = set(names)
        return tuple(name for name in self.blocks if name not in excluded)


# --------------------------------------------------------------------- #
# Proposition 1 (read bound): four blocks over S ≤ 4t objects
# --------------------------------------------------------------------- #


def read_bound_partition(t: int, S: int | None = None) -> BlockPartition:
    """The partition of Section 3: ``|B1|=|B2|=|B3|=t``, ``1 ≤ |B4| ≤ t``."""
    if t < 1:
        raise ConfigurationError("the read bound needs t >= 1")
    if S is None:
        S = 4 * t
    if not 3 * t + 1 <= S <= 4 * t:
        raise ConfigurationError(
            f"Proposition 1 applies for 3t+1 <= S <= 4t (got S={S}, t={t})"
        )
    ids = object_ids(S)
    blocks = {
        "B1": ids[0:t],
        "B2": ids[t : 2 * t],
        "B3": ids[2 * t : 3 * t],
        "B4": ids[3 * t :],
    }
    return BlockPartition(S=S, blocks=blocks)


# --------------------------------------------------------------------- #
# Lemma 1 (write bound): 2k + 2 blocks over 3·t_k + 1 objects
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class WriteBoundPartition:
    """The Lemma 1 partition plus its superblock families.

    Attributes:
        k: write-round parameter (``k ≥ 1``); the fault budget is ``t_k``.
        scale: Proposition 2's multiplier ``c`` (every block size × c).
        partition: the underlying named partition with blocks
            ``B0 … B{k+1}`` and ``C1 … C{k}`` (``C1`` is always empty).
    """

    k: int
    scale: int
    partition: BlockPartition

    @property
    def t(self) -> int:
        """The fault budget: ``c · t_k``."""
        return self.scale * t_k(self.k)

    @property
    def S(self) -> int:
        return self.partition.S

    # -- superblock families ------------------------------------------- #

    def malicious_superblock(self, l: int) -> tuple[str, ...]:
        """``M_l = {B_j : 0 ≤ j ≤ l} ∪ {C_j : 1 ≤ j ≤ l}`` for ``l ≥ -1``."""
        if not -1 <= l <= self.k - 1:
            raise ConfigurationError(f"M_l defined for -1 <= l <= k-1, got l={l}")
        names = [f"B{j}" for j in range(0, l + 1)]
        names += [f"C{j}" for j in range(1, l + 1)]
        return tuple(names)

    def parity_superblock(self, l: int) -> tuple[str, ...]:
        """``P_l = {B_j : l ≤ j ≤ k+1, j ≡ l (mod 2)}`` for ``1 ≤ l ≤ k+1``."""
        if not 1 <= l <= self.k + 1:
            raise ConfigurationError(f"P_l defined for 1 <= l <= k+1, got l={l}")
        return tuple(
            f"B{j}" for j in range(l, self.k + 2) if (j - l) % 2 == 0
        )

    def correct_superblock(self, l: int) -> tuple[str, ...]:
        """``𝒞_l = {C_j : l ≤ j ≤ k}`` for ``1 ≤ l ≤ k + 1`` (empty at k+1)."""
        if not 1 <= l <= self.k + 1:
            raise ConfigurationError(f"C_l defined for 1 <= l <= k+1, got l={l}")
        return tuple(f"C{j}" for j in range(l, self.k + 1))

    # -- identity checks (equations (1)–(3)) ---------------------------- #

    def identity_malicious(self, l: int) -> bool:
        """Equation (1): ``|∪M_l| = c · t_{l+1}`` for ``0 ≤ l ≤ k−1``."""
        return self.partition.size(self.malicious_superblock(l)) == self.scale * t_k(l + 1)

    def identity_parity(self, l: int) -> bool:
        """Equation (2): ``|∪P_l| = c · (t_k − t_{l−2})`` for ``1 ≤ l ≤ k+1``."""
        expected = self.scale * (t_k(self.k) - t_k(l - 2))
        return self.partition.size(self.parity_superblock(l)) == expected

    def identity_correct(self, l: int) -> bool:
        """Equation (3): ``|∪𝒞_l| = c · (t_k − t_{l−2})`` for ``1 ≤ l ≤ k``."""
        expected = self.scale * (t_k(self.k) - t_k(l - 2))
        return self.partition.size(self.correct_superblock(l)) == expected

    def verify_identities(self) -> bool:
        """All three identity families over their full index ranges."""
        malicious = all(self.identity_malicious(l) for l in range(0, self.k))
        parity = all(self.identity_parity(l) for l in range(1, self.k + 2))
        correct = all(self.identity_correct(l) for l in range(1, self.k + 1))
        return malicious and parity and correct


def write_bound_partition(k: int, scale: int = 1) -> WriteBoundPartition:
    """Build the Lemma 1 partition for parameter ``k`` (Proposition 2: × scale).

    Sizes (paper, "Preliminaries" of Section 4), each multiplied by
    ``scale``: ``|B0| = 1``; ``|B_l| = t_l − t_{l−2}`` for ``1 ≤ l ≤ k``;
    ``|B_{k+1}| = t_k − t_{k−1}``; ``|C_l| = t_{l−1} − t_{l−2}`` for
    ``1 ≤ l ≤ k−1``; ``|C_k| = t_k − t_{k−2}``.  Totals: the ``B`` blocks
    hold ``2·t_k + 1`` objects, the ``C`` blocks ``t_k``, so
    ``S = 3·t_k·scale + scale``.
    """
    if k < 1:
        raise ConfigurationError("the write bound needs k >= 1")
    if scale < 1:
        raise ConfigurationError("scale must be at least 1")

    sizes: dict[str, int] = {"B0": 1 * scale}
    for l in range(1, k + 1):
        sizes[f"B{l}"] = (t_k(l) - t_k(l - 2)) * scale
    sizes[f"B{k + 1}"] = (t_k(k) - t_k(k - 1)) * scale
    for l in range(1, k):
        sizes[f"C{l}"] = (t_k(l - 1) - t_k(l - 2)) * scale
    sizes[f"C{k}"] = (t_k(k) - t_k(k - 2)) * scale

    S = sum(sizes.values())
    expected_S = (3 * t_k(k) + 1) * scale
    if S != expected_S:
        raise ConfigurationError(
            f"partition sizes sum to {S}, expected {expected_S}"
        )  # pragma: no cover - internal consistency

    ids = object_ids(S)
    blocks: dict[str, tuple[ProcessId, ...]] = {}
    cursor = 0
    order = [f"B{j}" for j in range(0, k + 2)] + [f"C{j}" for j in range(1, k + 1)]
    for name in order:
        size = sizes[name]
        blocks[name] = ids[cursor : cursor + size]
        cursor += size
    return WriteBoundPartition(k=k, scale=scale, partition=BlockPartition(S=S, blocks=blocks))
