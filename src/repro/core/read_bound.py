"""Proposition 1, executable: no 2-round reads when ``S ≤ 4t`` and ``R > 3``.

The proof of Section 3, mechanized.  Starting from a complete ``write(1)``
that skips block ``B4``, reads by four recycled readers are appended one
after another (``rd_j`` skips ``B_{next(j)}`` in round one and ``B_j`` in
round two) while the adversary progressively deletes write rounds and the
steps of older reads.  For every appended read two runs are produced:

* ``pr_n`` — extends the previous deletion run; block ``B_{m(n)}`` is
  malicious and *forges its state to* ``σ_{k−i−1}`` (``σ_0`` for ``B4``)
  before replying, exactly as in the paper;
* ``Δpr_n`` — the deletion run: the write loses a round (``wr^{a}_{b}``
  with ``a = k − ⌊n/4⌋``, ``b = (n mod 4) + 1``), the read two steps back
  keeps only its first round, the previous read keeps its write-back away
  from ``B_{m(n)}`` — and the *adaptive adversary* of
  :func:`repro.core.runs.repair_against` inserts the ``σ^r`` forgeries on
  ``B_{next(n)}`` needed to keep every terminated-round transcript equal to
  ``pr_n``'s.  The blocks it is allowed to touch are exactly the paper's
  malicious blocks; needing any other block fails the construction.

Indistinguishability then forces ``rd_{m(n)}`` to return 1 in ``Δpr_n``;
after ``4k − 1`` reads all write steps are gone (``wr^1_4`` differs from a
write-free run only at the writer) and the final read returns 1 in a run
with no write — violating atomicity property (1).  The certificate carries
the audited chain.

Applied to a protocol whose reads genuinely need more than two rounds (the
4-round transform), the very first scripted read cannot complete —
:class:`~repro.errors.ConstructionEscape` reports where, which is the
executable face of the bound's tightness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.blocks import BlockPartition, read_bound_partition
from repro.core.certificates import ViolationCertificate
from repro.core.runs import (
    INITIAL,
    CaptureKey,
    Deliver,
    Restore,
    RunResult,
    Script,
    ScriptedRun,
    StartRead,
    StartWrite,
    TerminateRound,
    repair_against,
)
from repro.errors import ConstructionError, ConstructionEscape
from repro.registers.base import RegisterProtocol
from repro.spec.atomicity import check_swmr_atomicity

#: The value written by the single write operation of the proof.
WRITTEN_VALUE = 1

_ALL_BLOCKS = ("B1", "B2", "B3", "B4")


def _reader_of(n: int) -> int:
    """``m(n)``: which of the four recycled readers performs ``rd_n``."""
    return ((n - 1) % 4) + 1


def _skipped_first(n: int) -> int:
    """Block index skipped by ``rd_n`` in round one: ``next(m) = (m mod 4)+1``."""
    m = _reader_of(n)
    return (m % 4) + 1


@dataclass(slots=True)
class ReadBoundOutcome:
    """Everything the construction produced (certificate + raw runs)."""

    certificate: ViolationCertificate
    final_run: RunResult
    runs_executed: int
    kept_runs: "list[RunResult] | None" = None


class ReadLowerBoundConstruction:
    """Drives the Proposition 1 adversary against a concrete protocol.

    Args:
        protocol_factory: produces fresh victim instances; the victim's
            ``write_rounds`` attribute is the ``k`` of the proof and its
            reads must complete in two rounds for the trap to close.
        t: Byzantine threshold (``t ≥ 1``).
        S: object count, ``3t + 1 ≤ S ≤ 4t`` (default ``4t``).
    """

    def __init__(
        self,
        protocol_factory: Callable[[], RegisterProtocol],
        t: int,
        S: int | None = None,
    ) -> None:
        self.partition: BlockPartition = read_bound_partition(t, S)
        self.t = t
        self.runner = ScriptedRun(
            protocol_factory, self.partition, t=t, n_readers=4
        )
        self.k = self.runner.probe.write_rounds
        if self.k < 1:
            raise ConstructionError("victim protocol must take at least one write round")

    # ------------------------------------------------------------------ #
    # Script builders
    # ------------------------------------------------------------------ #

    def _write_script(self) -> Script:
        """The complete write run ``wr``: ``k`` rounds, each skipping B4."""
        steps: Script = [StartWrite("write", WRITTEN_VALUE)]
        for round_no in range(1, self.k + 1):
            steps.append(Deliver("write", round_no, ("B1", "B2", "B3")))
            steps.append(TerminateRound("write", round_no))
        return steps

    def _sigma_point(self, n: int) -> CaptureKey:
        """Capture key of the state ``B_{m(n)}`` forges in ``pr_n``.

        ``σ_x`` with ``x = k − 1 − ⌊(n−1)/4⌋`` for ``m(n) ∈ {1,2,3}`` and
        ``σ_0`` for ``m(n) = 4``; ``σ_x`` is the state just before the
        write's round ``x + 1`` in the reference run ``wr``.
        """
        m = _reader_of(n)
        if m == 4:
            return INITIAL
        x = self.k - 1 - (n - 1) // 4
        if x <= 0:
            return INITIAL
        return ("write", x + 1)

    def _read_steps(self, n: int) -> Script:
        """The two terminated rounds of a complete ``rd_n``."""
        op = f"rd{n}"
        m = _reader_of(n)
        skip1 = f"B{_skipped_first(n)}"
        skip2 = f"B{m}"
        return [
            StartRead(op, reader=m),
            Deliver(op, 1, self.partition.complement([skip1])),
            TerminateRound(op, 1),
            Deliver(op, 2, self.partition.complement([skip2])),
            TerminateRound(op, 2),
        ]

    def _delta_write_part(self, n: int) -> Script:
        """``wr^{a}_{b}``: rounds ``1..a−1`` complete; round ``a`` partial."""
        a = self.k - n // 4
        b = (n % 4) + 1
        partial = tuple(f"B{l}" for l in range(b, 4))
        if a - 1 == 0 and not partial:
            return []  # wr^1_4: no object hears from the writer at all
        steps: Script = [StartWrite("write", WRITTEN_VALUE)]
        for round_no in range(1, a):
            steps.append(Deliver("write", round_no, ("B1", "B2", "B3")))
            steps.append(TerminateRound("write", round_no))
        if partial:
            steps.append(Deliver("write", a, partial))  # never terminated
        return steps

    def _delta_reads_part(self, n: int) -> Script:
        """Trimmed older reads plus the complete ``rd_n`` of ``Δpr_n``."""
        steps: Script = []
        m_n = _reader_of(n)
        if n >= 3:
            p = n - 2
            op = f"rd{p}"
            steps.append(StartRead(op, reader=_reader_of(p)))
            steps.append(
                Deliver(op, 1, self.partition.complement([f"B{_skipped_first(p)}"]))
            )  # round one only, never terminated
        if n >= 2:
            p = n - 1
            op = f"rd{p}"
            skip1 = f"B{_skipped_first(p)}"
            steps.append(StartRead(op, reader=_reader_of(p)))
            steps.append(Deliver(op, 1, self.partition.complement([skip1])))
            steps.append(TerminateRound(op, 1))
            round2 = self.partition.complement([f"B{_reader_of(p)}", f"B{m_n}"])
            steps.append(Deliver(op, 2, round2))  # write-back, never terminated
        steps.extend(self._read_steps(n))
        return steps

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, keep_runs: bool = False) -> ReadBoundOutcome:
        """Run the full chain ``pr_1 … Δpr_{4k−1}``; return the certificate.

        With ``keep_runs`` the outcome also carries every executed run, in
        order, for diagram rendering (Figure 1).
        """
        kept: list[RunResult] | None = [] if keep_runs else None
        certificate = ViolationCertificate(
            construction="read-lower-bound (Proposition 1)",
            protocol=self.runner.probe.name,
            parameters={"t": self.t, "S": self.partition.S, "k": self.k, "R": 4},
            final_run="",
            verdict=check_swmr_atomicity(self.runner.execute("empty", []).history()),
            history_description="",
        )

        write_run = self.runner.execute("wr", self._write_script())
        if not write_run.is_complete("write"):
            raise ConstructionEscape("wr:write", "the write did not complete in k rounds")
        certificate.add("wr", f"write(1) completes in k={self.k} rounds, skipping B4")

        delta_script: Script = list(write_run.script)
        delta_result: RunResult = write_run
        runs_executed = 1
        total = 4 * self.k - 1

        for n in range(1, total + 1):
            m = _reader_of(n)
            nxt = _skipped_first(n)
            op = f"rd{n}"

            pr_script: Script = list(delta_script)
            pr_script.append(
                Restore(
                    block=f"B{m}",
                    source=write_run.captures,
                    point=self._sigma_point(n),
                    note=f"B{m} forges σ before replying to {op} (pr{n})",
                )
            )
            pr_script.extend(self._read_steps(n))
            pr_run = self.runner.execute(f"pr{n}", pr_script)
            runs_executed += 1
            if kept is not None:
                kept.append(pr_run)

            if not pr_run.is_complete(op):
                raise ConstructionEscape(
                    f"pr{n}:{op}",
                    "read did not complete within two scripted rounds "
                    "(the protocol is outside Proposition 1's class)",
                )
            returned = pr_run.returned(op)
            if not pr_run.malicious_blocks <= {f"B{m}"}:
                raise ConstructionError(
                    f"pr{n} used malicious blocks {pr_run.malicious_blocks}, expected ⊆ {{B{m}}}"
                )
            if returned != WRITTEN_VALUE:
                # Early violation: atomicity already forces 1 here (pr_n is
                # a legal run with ≤ t Byzantine objects in which the read
                # succeeds operations that established value 1), so a
                # different return convicts the protocol immediately.
                history = pr_run.history()
                verdict = check_swmr_atomicity(history)
                certificate.final_run = f"pr{n}"
                certificate.verdict = verdict
                certificate.history_description = history.describe()
                certificate.add(
                    f"pr{n}",
                    (
                        f"{op} returned {returned!r} instead of {WRITTEN_VALUE!r}: "
                        f"atomicity property {verdict.violated_property} violated in pr{n} itself"
                    ),
                    verified=not verdict.ok,
                )
                return ReadBoundOutcome(
                    certificate=certificate,
                    final_run=pr_run,
                    runs_executed=runs_executed,
                    kept_runs=kept,
                )
            certificate.add(
                f"pr{n}",
                f"{op} (reader r{m}, B{m} malicious) returns {returned!r}",
                verified=True,
            )

            delta_base = self._delta_write_part(n) + self._delta_reads_part(n)
            compare = [f"rd{p}" for p in (n - 2, n - 1, n) if p >= 1]
            delta_run = repair_against(
                self.runner,
                f"dpr{n}",
                delta_base,
                reference=pr_run,
                allowed_blocks=[f"B{nxt}"],
                compare_ops=compare,
            )
            runs_executed += 1
            if kept is not None:
                kept.append(delta_run)

            delta_returned = delta_run.returned(op)
            certificate.add(
                f"Δpr{n}",
                (
                    f"indistinguishable to r{m} with malicious ⊆ {{B{nxt}}} "
                    f"({delta_run.malicious_object_count()} ≤ t={self.t} objects); "
                    f"{op} returns {delta_returned!r}"
                ),
                verified=(
                    delta_returned == returned
                    and delta_run.malicious_object_count() <= self.t
                ),
            )

            delta_script = list(delta_run.script)
            delta_result = delta_run

        final_history = delta_result.history()
        verdict = check_swmr_atomicity(final_history)
        certificate.final_run = f"Δpr{total}"
        certificate.verdict = verdict
        certificate.history_description = final_history.describe()
        write_invoked = "write" in delta_result.ops
        certificate.add(
            f"Δpr{total}",
            "no write step survives (indistinguishable from a write-free run)",
            verified=not write_invoked,
        )
        certificate.add(
            f"Δpr{total}",
            f"atomicity property {verdict.violated_property} violated: {verdict.explanation}",
            verified=not verdict.ok,
        )
        return ReadBoundOutcome(
            certificate=certificate,
            final_run=delta_result,
            runs_executed=runs_executed,
            kept_runs=kept,
        )
