"""Client-side communication rounds (Definition 1 of the paper).

A *round* is: the client sends a message to all objects; objects reply
immediately; the round terminates once the client has received a
"sufficient number" of replies.  What counts as sufficient is the protocol's
business — the :class:`ReplyRule` captures it as a minimum count plus an
optional predicate over the received reply set.

Because up to ``t`` objects may be faulty and stay silent, a rule whose
``min_count`` exceeds ``S - t`` can only be justified while the missing
objects are *possibly faulty*; the engine models the paper's allowance to
wait longer by resuming a round at network quiescence when
``accept_on_quiescence`` is set (all plausibly-correct replies have arrived).

Protocols are written as Python generators that yield :class:`RoundSpec`
objects and receive :class:`RoundOutcome` objects back::

    def read_protocol(ctx):
        outcome = yield RoundSpec(tag="QUERY", payload={}, rule=ReplyRule(min_count=2 * t + 1))
        chosen = select(outcome.replies)
        yield RoundSpec(tag="WRITE_BACK", payload={"val": chosen}, rule=ReplyRule(min_count=2 * t + 1))
        return chosen.value
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.types import ProcessId

#: Type of a reply set: replies keyed by the responding object.
ReplySet = dict[ProcessId, Mapping[str, Any]]


@dataclass(slots=True)
class ReplyRule:
    """Termination predicate of one round.

    Attributes:
        min_count: the round may never terminate with fewer replies.
        predicate: optional extra condition on the reply set (e.g. "a
            certified candidate exists").  The round terminates eagerly as
            soon as ``min_count`` is met and the predicate holds.
        accept_on_quiescence: when the network quiesces (no deliverable
            messages remain) with ``min_count`` met but the predicate still
            false, resume the round anyway with ``quiesced=True`` so the
            protocol can apply its fallback selection.  When False, the
            operation stays pending — the partial-run outcome the
            lower-bound proofs exploit.
    """

    min_count: int
    predicate: Callable[[ReplySet], bool] | None = None
    accept_on_quiescence: bool = True

    def satisfied(self, replies: ReplySet) -> bool:
        """Eager termination check."""
        if len(replies) < self.min_count:
            return False
        if self.predicate is None:
            return True
        return self.predicate(replies)

    def acceptable_at_quiescence(self, replies: ReplySet) -> bool:
        """Whether a quiesced network lets the round terminate."""
        return self.accept_on_quiescence and len(replies) >= self.min_count


@dataclass(slots=True)
class RoundSpec:
    """One round the protocol asks the engine to perform.

    ``payload`` is sent to every destination (default: all objects).  Use
    ``per_object_payload`` for rounds that send different content to
    different objects (the MWMR transform multiplexes registers this way).
    """

    tag: str
    payload: Mapping[str, Any]
    rule: ReplyRule
    destinations: Sequence[ProcessId] | None = None
    per_object_payload: Mapping[ProcessId, Mapping[str, Any]] | None = None

    def payload_for(self, dst: ProcessId) -> Mapping[str, Any]:
        """The payload to send to ``dst``."""
        if self.per_object_payload is not None and dst in self.per_object_payload:
            merged = dict(self.payload)
            merged.update(self.per_object_payload[dst])
            return merged
        return self.payload


@dataclass(slots=True)
class RoundOutcome:
    """What the engine hands back when a round terminates."""

    round_no: int
    replies: ReplySet
    quiesced: bool = False
    terminated_at: int = 0

    def payloads(self) -> list[Mapping[str, Any]]:
        """Reply payloads in deterministic (object id) order."""
        return [self.replies[pid] for pid in sorted(self.replies)]

    def from_objects(self) -> tuple[ProcessId, ...]:
        """The objects that replied, in deterministic order."""
        return tuple(sorted(self.replies))


@dataclass(slots=True)
class RoundRecord:
    """Bookkeeping the engine keeps per started round."""

    spec: RoundSpec
    round_no: int
    started_at: int
    replies: ReplySet = field(default_factory=dict)
    terminated: bool = False
