"""Deterministic discrete-event simulation of the paper's system model.

The model (Section 2 of the paper): an asynchronous message-passing system
with reliable point-to-point channels between *clients* (one writer, ``R``
readers) and ``S`` *storage objects*.  Objects are passive — they never send
messages except in reply to a client message — and up to ``t`` of them may be
malicious.  Clients may crash.

Two execution styles are provided on top of the same process abstractions:

* :class:`~repro.sim.simulator.Simulator` — an event-loop with virtual time
  and pluggable delivery policies, used for end-to-end protocol runs,
  randomized testing, and latency benchmarks.
* the scripted partial-run driver in :mod:`repro.core.runs` — used by the
  lower-bound constructions, which need exact per-round, per-block control.
"""

from repro.sim.batched import ENGINES, BatchedSimulator, WaveQueue, resolve_engine
from repro.sim.events import Event, EventQueue
from repro.sim.network import DeliveryPolicy, FifoDelivery, HeldMessage, Message, Network, RandomDelivery
from repro.sim.process import FaultBehavior, ObjectHandler, ObjectServer
from repro.sim.rounds import ReplyRule, RoundOutcome, RoundSpec
from repro.sim.simulator import ClientOperation, Simulator
from repro.sim.tracing import MessageTrace, TraceEvent

__all__ = [
    "ENGINES",
    "BatchedSimulator",
    "WaveQueue",
    "resolve_engine",
    "Event",
    "EventQueue",
    "Message",
    "HeldMessage",
    "Network",
    "DeliveryPolicy",
    "FifoDelivery",
    "RandomDelivery",
    "ObjectHandler",
    "ObjectServer",
    "FaultBehavior",
    "RoundSpec",
    "RoundOutcome",
    "ReplyRule",
    "Simulator",
    "ClientOperation",
    "MessageTrace",
    "TraceEvent",
]
