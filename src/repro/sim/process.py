"""Process automata: storage objects and their fault behaviours.

A storage object is passive: on receiving a client message it updates its
local state and replies immediately, exactly as Definition 1 of the paper
requires ("objects, on receiving such a message, reply to the client before
receiving any other messages").  The protocol-specific part lives in an
:class:`ObjectHandler`; the :class:`ObjectServer` wraps it with the fault
behaviour (if any), state snapshotting, and network plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.sim.network import Message, Network
from repro.types import ProcessId


def copy_state(value: Any) -> Any:
    """Structural copy of a protocol state.

    Protocol states are nests of dict/list/set containers whose leaves are
    immutable (ints, strings, :class:`~repro.types.TaggedValue`,
    :class:`~repro.types.Timestamp`, tuples thereof).  Copying only the
    containers gives deep-copy semantics at a fraction of the cost — the
    lower-bound constructions snapshot object state before *every* delivery,
    so this is the hottest function in the proof engine.
    """
    if isinstance(value, dict):
        return {key: copy_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [copy_state(item) for item in value]
    if isinstance(value, set):
        return set(value)
    return value


class ObjectHandler:
    """Protocol-specific logic of one storage object.

    Implementations are pure with respect to the harness: they see a mutable
    ``state`` dict and the invocation message, mutate the state, and return
    the reply payload.  One handler class per protocol.
    """

    def initial_state(self) -> dict[str, Any]:
        """Fresh per-object state."""
        raise NotImplementedError

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        """Apply ``message`` to ``state`` and return the reply payload."""
        raise NotImplementedError

    def handle_batch(
        self, state: dict[str, Any], messages: Sequence[Message]
    ) -> list[Mapping[str, Any]]:
        """Apply a same-tick delivery wave; one reply payload per message.

        The default applies :meth:`handle` sequentially, which is exactly
        what the event engine does one dispatch at a time — handlers with
        wave-amortizable work (shared lookups, batched state updates) may
        override, as long as the sequential state evolution is preserved.
        """
        handle = self.handle
        return [handle(state, message) for message in messages]


class FaultBehavior:
    """How a faulty object deviates from its handler.

    The behaviour sees the honest reply the handler *would* have produced and
    may replace it (lie), or suppress it (return ``None`` — silence).  The
    honest state update has already happened when :meth:`reply` runs; a
    behaviour that wants to present forged state must build its own payload.

    Observability hooks: when a run is observed, the backend arms ``clock``
    (a zero-argument virtual-time reader) and ``phase_log`` on every
    behaviour; crash/recover behaviours then record ``(time, "down")`` /
    ``(time, "recovered")`` transitions via :meth:`log_phase`, from which
    :func:`repro.obs.spans.derive_spans` reconstructs outage windows.
    Both stay ``None`` in unobserved runs, making the hook a no-op.
    """

    #: Armed by the backend when observing; ``None`` costs one attribute
    #: read per transition in unobserved runs.
    clock = None
    phase_log: list[tuple[int, str]] | None = None

    def log_phase(self, phase: str) -> None:
        """Record a ``down``/``recovered`` transition when observed."""
        if self.clock is not None:
            self.phase_log.append((self.clock(), phase))

    def on_armed(self, server: "ObjectServer") -> None:
        """The behaviour is installed but dormant (timed-fault wrapping).

        :class:`~repro.faults.timing.TimedFault` calls this on the first
        delivery *before* the trigger fires, so behaviours whose damage
        depends on pre-fire configuration (a durable store's sync lag, a
        staggered phase machine) can arm it from the start.  The default
        does nothing — most behaviours need no setup until they fire.
        """

    def on_activate(self, server: "ObjectServer") -> None:
        """The behaviour's trigger point has been reached.

        Called by :class:`~repro.faults.timing.TimedFault` exactly once, on
        the delivery that fires the fault, *before* that delivery's state
        transition — so a behaviour that captures "the genuine state at
        firing time" (stale-echo's freeze) snapshots the state after
        exactly ``at`` handled messages.  The default does nothing.
        """

    def before_handle(self, server: "ObjectServer", message: Message) -> bool:
        """Gate the honest state transition for this delivery.

        Called after ``messages_seen`` is incremented but *before* the
        handler runs.  Returning ``False`` swallows the message entirely:
        no state transition, no persistence, no reply — the behaviour of a
        machine that is down.  The default (``True``) preserves the
        classic contract where the honest update always happens first and
        :meth:`reply` merely decides what to present.  Crash-recover
        behaviours override this to go dark and to rejoin from durable
        state before the triggering message is processed.
        """
        return True

    def reply(
        self,
        server: "ObjectServer",
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        raise NotImplementedError

    def reply_batch(
        self, server: "ObjectServer", messages: Sequence[Message]
    ) -> list[Mapping[str, Any] | None]:
        """Process a same-tick wave addressed to a faulty object.

        The default funnels every message through the ordinary
        :meth:`ObjectServer.receive` path, so stateful behaviours observe
        the identical per-message interleaving of counter increments, state
        transitions and reply decisions they would see under the event
        engine — batching must never change what a fault does.
        """
        receive = server.receive
        return [receive(message) for message in messages]

    def describe(self) -> str:
        """Human-readable label used by traces and diagrams."""
        return type(self).__name__


@dataclass(slots=True)
class ObjectServer:
    """One storage object bound to the network.

    Attributes:
        pid: the object's process identifier (``s_i``).
        handler: protocol logic producing honest replies.
        behavior: fault behaviour, or ``None`` for a correct object.
        state: the protocol state dict (owned by the handler).
    """

    pid: ProcessId
    handler: ObjectHandler
    behavior: FaultBehavior | None = None
    state: dict[str, Any] = field(default_factory=dict)
    messages_seen: int = 0

    def __post_init__(self) -> None:
        if not self.state:
            self.state = self.handler.initial_state()

    @property
    def is_faulty(self) -> bool:
        """True when a fault behaviour is installed."""
        return self.behavior is not None

    def snapshot(self) -> dict[str, Any]:
        """Copy of the current protocol state (σ in the proofs)."""
        return copy_state(self.state)

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Overwrite the protocol state with a copy of ``snapshot``."""
        self.state = copy_state(dict(snapshot))

    def receive(self, message: Message) -> Mapping[str, Any] | None:
        """Process one invocation; return the reply payload or None (silent).

        Correct objects always reply.  Faulty objects consult their
        behaviour twice: :meth:`FaultBehavior.before_handle` may swallow
        the delivery outright (a machine that is down performs no state
        transition at all), and otherwise the *honest* state transition is
        applied first and :meth:`FaultBehavior.reply` may forge or
        suppress what is presented.  The update-first order matches the
        proofs, where malicious objects hold genuine states and merely
        *present* old ones.

        The batched engine inlines this dispatch in
        ``BatchedSimulator._drain`` — keep the two in lockstep.
        """
        self.messages_seen += 1
        behavior = self.behavior
        if behavior is None:
            return self.handler.handle(self.state, message)
        if not behavior.before_handle(self, message):
            return None
        honest = self.handler.handle(self.state, message)
        return behavior.reply(self, message, honest)

    def receive_batch(
        self, messages: Sequence[Message]
    ) -> list[Mapping[str, Any] | None]:
        """Process a whole same-tick delivery wave; one payload per message.

        Correct objects take the batch through a single
        :meth:`ObjectHandler.handle_batch` call (the batched engine's
        amortized hot path).  Faulty objects delegate to
        :meth:`FaultBehavior.reply_batch`, whose default preserves the exact
        per-message semantics of :meth:`receive` for arbitrary behaviours.
        """
        if self.behavior is None:
            self.messages_seen += len(messages)
            return self.handler.handle_batch(self.state, messages)
        return self.behavior.reply_batch(self, messages)

    def attach(self, network: Network) -> None:
        """Wire this object into ``network``: reply to every delivery."""

        def on_message(message: Message, _network: Network = network) -> None:
            payload = self.receive(message)
            if payload is None:
                return
            _network.send(
                Message(
                    src=self.pid,
                    dst=message.src,
                    op=message.op,
                    round_no=message.round_no,
                    tag=message.tag,
                    payload=payload,
                    is_reply=True,
                )
            )

        network.attach(self.pid, on_message)
