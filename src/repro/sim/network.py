"""Reliable point-to-point channels with adversary-controlled timing.

Channels are reliable (no loss, no duplication, no corruption of messages in
transit — Byzantine *objects* lie at the endpoint, not the wire) and FIFO per
ordered pair of processes.  The *delivery policy* decides how long each
message spends in transit; it may also *hold* a message indefinitely, which
models the unbounded asynchrony the lower-bound proofs exploit (a held
message is "in transit" at the end of a partial run).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ChannelError
from repro.sim.events import EventQueue
from repro.types import OperationId, ProcessId


@dataclass(slots=True)
class Message:
    """One message between a client and an object.

    ``op``/``round_no``/``tag`` identify the protocol round the message
    belongs to; ``payload`` is the protocol-specific content.  ``is_reply``
    distinguishes an object's response from a client's invocation.

    Treated as immutable by convention but deliberately not ``frozen``:
    one instance is allocated per message on the wire, and the frozen
    ``object.__setattr__`` construction path costs measurably more on the
    simulator's hottest allocation site.  Messages are never hashed.
    """

    src: ProcessId
    dst: ProcessId
    op: OperationId
    round_no: int
    tag: str
    payload: Mapping[str, Any]
    is_reply: bool = False

    def __str__(self) -> str:
        arrow = "<-" if self.is_reply else "->"
        return f"{self.src}{arrow}{self.dst} {self.op} rnd{self.round_no} {self.tag}"


@dataclass(slots=True)
class HeldMessage:
    """A message the delivery policy left in transit indefinitely."""

    message: Message
    sent_at: int
    released: bool = False


class DeliveryPolicy:
    """Strategy deciding the in-transit delay of every message.

    Return an integer delay to schedule delivery, or ``None`` to hold the
    message indefinitely (it can be released later through
    :meth:`Network.release_held`).
    """

    def delay(self, message: Message, now: int) -> int | None:
        raise NotImplementedError


class FifoDelivery(DeliveryPolicy):
    """Deliver every message after a fixed delay (default: one tick)."""

    def __init__(self, latency: int = 1) -> None:
        if latency < 1:
            raise ChannelError("latency must be at least one tick")
        self.latency = latency

    def delay(self, message: Message, now: int) -> int | None:
        return self.latency


class RandomDelivery(DeliveryPolicy):
    """Deliver after a seeded-random delay in ``[min_latency, max_latency]``.

    Useful for shaking out order dependence in protocols; determinism is
    preserved because the RNG is owned and seeded by the policy.
    """

    def __init__(self, seed: int = 0, min_latency: int = 1, max_latency: int = 10) -> None:
        if not 1 <= min_latency <= max_latency:
            raise ChannelError("need 1 <= min_latency <= max_latency")
        self._rng = random.Random(seed)
        self.min_latency = min_latency
        self.max_latency = max_latency

    def delay(self, message: Message, now: int) -> int | None:
        return self._rng.randint(self.min_latency, self.max_latency)


class SelectiveHold(DeliveryPolicy):
    """Hold messages matching a predicate; delegate the rest.

    The lower-bound adversary uses this to keep chosen replies "in transit".
    """

    def __init__(self, hold_if: Callable[[Message], bool], base: DeliveryPolicy | None = None) -> None:
        self.hold_if = hold_if
        self.base = base or FifoDelivery()

    def delay(self, message: Message, now: int) -> int | None:
        if self.hold_if(message):
            return None
        return self.base.delay(message, now)


class Network:
    """The message fabric binding processes to the event queue.

    Responsibilities: route messages, enforce per-channel FIFO order, apply
    the delivery policy, park held messages, and notify an optional trace.
    """

    def __init__(
        self,
        queue: EventQueue,
        policy: DeliveryPolicy | None = None,
        trace: "Any | None" = None,
    ) -> None:
        self._queue = queue
        self.policy = policy or FifoDelivery()
        self.trace = trace
        self._handlers: dict[ProcessId, Callable[[Message], None]] = {}
        self._held: list[HeldMessage] = []
        # Per-channel watermark of the latest scheduled delivery time,
        # used to keep channels FIFO under variable delays.
        self._fifo_watermark: dict[tuple[ProcessId, ProcessId], int] = {}
        # Scheduled (not held) deliveries per operation round: when the
        # count drops to zero the round has no message left in flight and
        # the quiescence listener (the simulator) is told — this is what
        # lets "wait for all plausibly-correct replies" resolve mid-run.
        self._inflight: dict[tuple[Any, int], int] = {}
        self.quiescence_listener: Callable[[Any, int], None] | None = None
        # Batch hooks: when set, scheduled deliveries are handed to the sink
        # as ``(deliver_at, message)`` — and whole broadcasts as
        # ``(deliver_at, messages)`` — instead of becoming per-message queue
        # events.  The batched engine points these at its wave buckets; the
        # event engine leaves them None and keeps the heap path.
        self.delivery_sink: Callable[[int, Message], None] | None = None
        self.delivery_batch_sink: Callable[[int, Sequence[Message]], None] | None = None

    def attach(self, pid: ProcessId, handler: Callable[[Message], None]) -> None:
        """Register the message handler of process ``pid``."""
        self._handlers[pid] = handler

    def detach(self, pid: ProcessId) -> None:
        """Remove a process (it stops receiving; models a crashed client)."""
        self._handlers.pop(pid, None)

    @property
    def held_messages(self) -> tuple[HeldMessage, ...]:
        """Messages currently parked in transit."""
        return tuple(h for h in self._held if not h.released)

    def send(self, message: Message) -> None:
        """Hand ``message`` to the fabric.

        The destination must be attached now or by delivery time; sending to
        a never-attached process raises :class:`~repro.errors.ChannelError`
        at delivery.
        """
        if self.trace is not None:
            self.trace.record_send(self._queue.now, message)
        delay = self.policy.delay(message, self._queue.now)
        if delay is None:
            self._held.append(HeldMessage(message=message, sent_at=self._queue.now))
            if self.trace is not None:
                self.trace.record_hold(self._queue.now, message)
            return
        self._schedule_delivery(message, delay)

    def release_held(self, match: Callable[[Message], bool] | None = None, delay: int = 1) -> int:
        """Release held messages (all, or those matching ``match``).

        Returns the number of messages released.  Released messages are
        delivered in their original send order, preserving channel FIFO.
        """
        released = 0
        for held in self._held:
            if held.released:
                continue
            if match is not None and not match(held.message):
                continue
            held.released = True
            self._schedule_delivery(held.message, delay)
            released += 1
        return released

    def _schedule_delivery(self, message: Message, delay: int) -> None:
        # Hot path: one call per message on the wire.  Locals, a single
        # ``now`` read, and ``partial`` instead of a lambda keep the
        # per-message overhead minimal (labels were dropped entirely —
        # rendering one cost more than scheduling the delivery).
        now = self._queue.now
        channel = (message.src, message.dst)
        deliver_at = now + delay if delay > 1 else now + 1
        watermark = self._fifo_watermark.get(channel, 0)
        if deliver_at < watermark:  # never overtake an earlier message
            deliver_at = watermark
        self._fifo_watermark[channel] = deliver_at
        round_key = (message.op, message.round_no)
        self._inflight[round_key] = self._inflight.get(round_key, 0) + 1
        if self.delivery_sink is not None:
            self.delivery_sink(deliver_at, message)
            return
        self._queue.schedule(deliver_at - now, partial(self._deliver, message))

    def send_round(self, messages: Sequence[Message]) -> None:
        """Send one round's whole broadcast in a single call.

        The batched engine's send hook: every message must belong to the
        same ``(op, round)`` — exactly what a round start produces.
        Semantically identical to calling :meth:`send` once per message in
        order.  Under the plain FIFO policy the per-message policy dispatch
        and watermark bookkeeping are provably inert (every delay is the
        same constant, so channel FIFO holds by monotonicity of virtual
        time and nothing is ever held), and the shared round key means the
        whole broadcast is one trace extend, one in-flight bump and one
        bucket extend; any other policy flows through the full :meth:`send`
        semantics message by message.
        """
        policy = self.policy
        if type(policy) is not FifoDelivery:
            for message in messages:
                self.send(message)
            return
        if not messages:
            return
        now = self._queue.now
        if self.trace is not None:
            self.trace.record_send_batch(now, messages)
        first = messages[0]
        round_key = (first.op, first.round_no)
        inflight = self._inflight
        inflight[round_key] = inflight.get(round_key, 0) + len(messages)
        deliver_at = now + policy.latency
        batch_sink = self.delivery_batch_sink
        if batch_sink is not None:
            batch_sink(deliver_at, messages)
            return
        schedule = self._queue.schedule
        latency = policy.latency
        for message in messages:
            schedule(latency, partial(self._deliver, message))

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is not None:
            if self.trace is not None:
                self.trace.record_delivery(self._queue.now, message)
            handler(message)  # may schedule more messages for this round
        elif self.trace is not None:
            # A crashed/detached client: the message is dropped on the floor,
            # which is indistinguishable from the client never reading it.
            self.trace.record_drop(self._queue.now, message)
        self.finish_delivery(message)

    def finish_delivery(self, message: Message) -> None:
        """Post-delivery bookkeeping: in-flight counts and round quiescence.

        Factored out of :meth:`_deliver` so the batched engine (which
        dispatches deliveries itself, wave by wave) shares the exact
        quiescence-notification semantics of the event path.
        """
        round_key = (message.op, message.round_no)
        remaining = self._inflight.get(round_key, 1) - 1
        if remaining > 0:
            self._inflight[round_key] = remaining
            return
        self._inflight.pop(round_key, None)
        if self.quiescence_listener is not None:
            self.quiescence_listener(message.op, message.round_no)


def broadcast(
    network: Network,
    src: ProcessId,
    destinations: Iterable[ProcessId],
    op: OperationId,
    round_no: int,
    tag: str,
    payload: Mapping[str, Any],
) -> int:
    """Send one invocation message to every destination; returns the count."""
    count = 0
    for dst in destinations:
        network.send(
            Message(src=src, dst=dst, op=op, round_no=round_no, tag=tag, payload=payload)
        )
        count += 1
    return count
