"""The event-loop simulator driving clients against storage objects.

The :class:`Simulator` owns the event queue, the network, the object
servers, and the set of in-flight client operations.  Client protocols are
generators over :class:`~repro.sim.rounds.RoundSpec` (see
:mod:`repro.sim.rounds`); the simulator advances them as replies arrive.

Quiescence semantics: :meth:`Simulator.run` drains the event queue, then
repeatedly offers every still-pending round the chance to terminate under its
``accept_on_quiescence`` rule; accepting may send new messages (a new round),
so the drain/offer cycle repeats until a fixed point.  Operations still
pending at the fixed point are *incomplete* — the run is a partial run in the
paper's sense, with held messages in transit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Mapping, Sequence

from repro.errors import ProtocolError, SimulationError
from repro.sim.events import EventQueue
from repro.sim.network import DeliveryPolicy, Message, Network, broadcast
from repro.sim.process import ObjectServer
from repro.sim.rounds import ReplySet, RoundOutcome, RoundRecord, RoundSpec
from repro.types import OperationId, ProcessId, fresh_operation_id

#: A client protocol: a generator yielding RoundSpec and returning the
#: operation's result via ``return``.
ProtocolGenerator = Generator[RoundSpec, RoundOutcome, Any]


class OperationStatus(enum.Enum):
    """Lifecycle of a client operation."""

    PENDING = "pending"
    COMPLETE = "complete"
    ABORTED = "aborted"


@dataclass(slots=True)
class ClientOperation:
    """One in-flight or finished read/write operation."""

    op_id: OperationId
    client: ProcessId
    generator: ProtocolGenerator
    invoked_at: int
    status: OperationStatus = OperationStatus.PENDING
    result: Any = None
    completed_at: int | None = None
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def rounds_used(self) -> int:
        """Number of rounds the operation has started."""
        return len(self.rounds)

    @property
    def current_round(self) -> RoundRecord | None:
        """The round currently collecting replies, if any."""
        if self.rounds and not self.rounds[-1].terminated:
            return self.rounds[-1]
        return None


class Simulator:
    """Deterministic simulation of clients operating on storage objects.

    Args:
        objects: the ``S`` storage object servers (correct and faulty).
        policy: delivery policy; defaults to FIFO unit latency.
        history: optional history recorder with ``record_invocation`` /
            ``record_response`` methods (see :mod:`repro.spec.history`).
        trace: optional message trace (see :mod:`repro.sim.tracing`).
    """

    def __init__(
        self,
        objects: Sequence[ObjectServer],
        policy: DeliveryPolicy | None = None,
        history: Any | None = None,
        trace: Any | None = None,
    ) -> None:
        if not objects:
            raise SimulationError("a storage system needs at least one object")
        self.queue = self._new_queue()
        self.trace = trace
        self.network = Network(self.queue, policy=policy, trace=trace)
        self.network.quiescence_listener = self._on_round_quiescent
        self.objects: dict[ProcessId, ObjectServer] = {}
        for server in objects:
            if server.pid in self.objects:
                raise SimulationError(f"duplicate object id {server.pid}")
            self.objects[server.pid] = server
            server.attach(self.network)
        self.history = history
        self.operations: list[ClientOperation] = []
        self._by_op: dict[OperationId, ClientOperation] = {}
        # Live index of still-pending operations (insertion-ordered, so it
        # iterates exactly like filtering ``self.operations`` by status).
        # Long sharded/explore runs resolve quiescence many times; scanning
        # every operation ever invoked on each fixed point is O(total ops)
        # per drain cycle, while this map shrinks as operations finish.
        self._pending: dict[OperationId, ClientOperation] = {}
        self._attached_clients: set[ProcessId] = set()
        self._busy_clients: set[ProcessId] = set()
        # Clients are sequential: invoking while an operation is outstanding
        # raises ProtocolError.  The schedule explorer flips this flag: when
        # an adversarial schedule blocks an operation forever, the client's
        # *later planned* invocations simply never happen (they are dropped
        # as ABORTED without a history record) — the legal partial-run
        # outcome, not a model violation.
        self.skip_busy_invocations = False
        # The object population is fixed at construction; cache the sorted
        # view once instead of re-sorting on every broadcast.
        self._object_ids: tuple[ProcessId, ...] = tuple(sorted(self.objects))

    def _new_queue(self) -> EventQueue:
        """The scheduling structure this engine runs on (overridable)."""
        return EventQueue()

    # ------------------------------------------------------------------ #
    # Invocation and progress
    # ------------------------------------------------------------------ #

    @property
    def object_ids(self) -> tuple[ProcessId, ...]:
        """All object identifiers in deterministic order."""
        return self._object_ids

    @property
    def now(self) -> int:
        """Current virtual time."""
        return self.queue.now

    def faulty_objects(self) -> tuple[ProcessId, ...]:
        """Identifiers of objects with an installed fault behaviour."""
        return tuple(pid for pid in self.object_ids if self.objects[pid].is_faulty)

    def invoke(
        self,
        client: ProcessId,
        kind: str,
        generator: ProtocolGenerator,
        at: int = 0,
        declared_value: Any = None,
    ) -> ClientOperation:
        """Schedule an operation invocation at virtual time ``now + at``.

        ``declared_value`` is what gets recorded in the history for a write
        invocation (reads record their result at response time).  The model
        allows at most one outstanding operation per client; violations raise
        :class:`~repro.errors.ProtocolError` at start time.
        """
        op_id = fresh_operation_id(client, kind)
        operation = ClientOperation(
            op_id=op_id,
            client=client,
            generator=generator,
            invoked_at=self.queue.now + at,
        )
        self.operations.append(operation)
        self._by_op[op_id] = operation
        self._pending[op_id] = operation
        self._ensure_client_attached(client)

        def start() -> None:
            if operation.client in self._busy_clients:
                if self.skip_busy_invocations:
                    operation.status = OperationStatus.ABORTED
                    self._pending.pop(operation.op_id, None)
                    return
                raise ProtocolError(
                    f"{operation.client} invoked {op_id} while another operation is outstanding"
                )
            self._busy_clients.add(operation.client)
            operation.invoked_at = self.queue.now
            if self.history is not None:
                self.history.record_invocation(
                    op_id, kind=kind, value=declared_value, time=self.queue.now
                )
            self._advance(operation, first=True)

        self.queue.schedule(at, start)
        return operation

    def abort(self, operation: ClientOperation) -> None:
        """Crash the client of ``operation``: it stops taking steps."""
        if operation.status is OperationStatus.PENDING:
            operation.status = OperationStatus.ABORTED
            self._pending.pop(operation.op_id, None)
            self._busy_clients.discard(operation.client)
            self.network.detach(operation.client)
            self._attached_clients.discard(operation.client)

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Drain events, resolving quiescence, until a global fixed point.

        Returns the total number of events executed (the throughput metric
        the performance benchmark tracks as events/sec).  ``max_events``
        bounds the *whole* run: the budget is shared across quiescence
        segments, not re-armed per drain.
        """
        executed = 0
        while True:
            remaining = None if max_events is None else max_events - executed
            executed += self._drain(remaining)
            if not self._resolve_quiescence():
                return executed

    def _drain(self, max_events: int | None) -> int:
        """Execute scheduled work until none is left; returns the count."""
        return self.queue.run_all(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _ensure_client_attached(self, client: ProcessId) -> None:
        if client in self._attached_clients:
            return
        self._attached_clients.add(client)
        self.network.attach(client, self._on_client_message)

    def _on_client_message(self, message: Message) -> None:
        if not message.is_reply:
            raise ProtocolError(f"client received a non-reply message: {message}")
        operation = self._by_op.get(message.op)
        if operation is None or operation.status is not OperationStatus.PENDING:
            return  # stale reply to a finished/aborted operation
        record = self._round_record(operation, message.round_no)
        if record is None or record.terminated:
            return  # late reply to an already-terminated round; keep for audit
        if message.src in record.replies:
            return  # duplicate (cannot happen over reliable FIFO, but be safe)
        record.replies[message.src] = message.payload
        current = operation.current_round
        if current is record and record.spec.rule.satisfied(record.replies):
            self._finish_round(operation, record, quiesced=False)

    def _round_record(self, operation: ClientOperation, round_no: int) -> RoundRecord | None:
        index = round_no - 1
        if 0 <= index < len(operation.rounds):
            return operation.rounds[index]
        return None

    def _finish_round(self, operation: ClientOperation, record: RoundRecord, quiesced: bool) -> None:
        # The outcome takes ownership of ``record.replies`` instead of
        # copying it: a round is terminated exactly once, and late replies
        # are filtered out before the dict is touched (_on_client_message
        # returns early on ``record.terminated``), so the reply set can
        # never change after this point.
        record.terminated = True
        outcome = RoundOutcome(
            round_no=record.round_no,
            replies=record.replies,
            quiesced=quiesced,
            terminated_at=self.queue.now,
        )
        self._advance(operation, outcome=outcome)

    def _advance(
        self,
        operation: ClientOperation,
        outcome: RoundOutcome | None = None,
        first: bool = False,
    ) -> None:
        try:
            if first:
                spec = next(operation.generator)
            else:
                spec = operation.generator.send(outcome)
        except StopIteration as stop:
            self._complete(operation, stop.value)
            return
        self._start_round(operation, spec)

    def _start_round(self, operation: ClientOperation, spec: RoundSpec) -> None:
        round_no = len(operation.rounds) + 1
        record = RoundRecord(spec=spec, round_no=round_no, started_at=self.queue.now)
        operation.rounds.append(record)
        destinations: Iterable[ProcessId] = spec.destinations or self.object_ids
        for dst in destinations:
            self.network.send(
                Message(
                    src=operation.client,
                    dst=dst,
                    op=operation.op_id,
                    round_no=round_no,
                    tag=spec.tag,
                    payload=spec.payload_for(dst),
                )
            )

    def _complete(self, operation: ClientOperation, result: Any) -> None:
        operation.status = OperationStatus.COMPLETE
        operation.result = result
        operation.completed_at = self.queue.now
        self._pending.pop(operation.op_id, None)
        self._busy_clients.discard(operation.client)
        if self.history is not None:
            self.history.record_response(operation.op_id, value=result, time=self.queue.now)

    def _on_round_quiescent(self, op_id: OperationId, round_no: int) -> None:
        """Called by the network when a round has no message left in flight.

        This resolves ``accept_on_quiescence`` rules *mid-run*: a round that
        will never hear another reply (everything undelivered is held, i.e.
        indefinitely in transit) may terminate immediately instead of
        waiting for the whole simulation to drain.
        """
        operation = self._by_op.get(op_id)
        if operation is None or operation.status is not OperationStatus.PENDING:
            return
        record = operation.current_round
        if record is None or record.round_no != round_no:
            return
        rule = record.spec.rule
        if rule.satisfied(record.replies):
            self._finish_round(operation, record, quiesced=False)
        elif rule.acceptable_at_quiescence(record.replies):
            self._finish_round(operation, record, quiesced=True)

    def _resolve_quiescence(self) -> bool:
        """Offer quiesced termination to pending rounds; True if any advanced."""
        progressed = False
        # Snapshot: finishing a round may complete the operation (mutating
        # the pending map); the status re-check below keeps the semantics of
        # the old full-list scan, which also saw statuses change mid-loop.
        for operation in list(self._pending.values()):
            if operation.status is not OperationStatus.PENDING:
                continue
            record = operation.current_round
            if record is None:
                continue
            rule = record.spec.rule
            if rule.satisfied(record.replies):
                self._finish_round(operation, record, quiesced=False)
                progressed = True
            elif rule.acceptable_at_quiescence(record.replies):
                self._finish_round(operation, record, quiesced=True)
                progressed = True
        return progressed

    # ------------------------------------------------------------------ #
    # Inspection helpers
    # ------------------------------------------------------------------ #

    def pending_operations(self) -> list[ClientOperation]:
        """Operations that have neither completed nor aborted."""
        return list(self._pending.values())

    def completed_operations(self) -> list[ClientOperation]:
        """Operations that returned a result."""
        return [op for op in self.operations if op.status is OperationStatus.COMPLETE]

    def max_rounds_used(self, kind: str | None = None) -> int:
        """Worst-case rounds over completed operations (optionally by kind)."""
        rounds = [
            op.rounds_used
            for op in self.completed_operations()
            if kind is None or op.op_id.kind == kind
        ]
        return max(rounds, default=0)
