"""Round-stepped batched simulation engine.

The protocols of the paper are round-structured: a client broadcasts to all
``S`` objects, objects reply immediately, and the client advances once a
quorum rule is met.  The event engine (:class:`~repro.sim.simulator.Simulator`
on an :class:`~repro.sim.events.EventQueue`) pays one heap push, one heap
pop and one callback per message for that traffic.  The
:class:`BatchedSimulator` executes the *same* runs in **delivery waves**
instead: all messages due at one virtual tick form a wave, the wave is
walked one maximal same-round *run* at a time, invocations of multi-round
waves are grouped by destination object and fed to each object as one
:meth:`~repro.sim.process.ObjectServer.receive_batch` call (a single
handler/fault-behaviour dispatch per object per tick), round broadcasts go
out through one :meth:`~repro.sim.network.Network.send_round` call, and
reply runs resolve their round rule against the whole same-tick reply set
instead of re-testing the rule once per message.  In-flight accounting and
quiescence resolution collapse to one bookkeeping step per run, folded
into the wave loop.

Equivalence contract
--------------------

The batched engine is *observably identical* to the event engine — not
merely equivalent in outcomes, but byte-identical in every artifact the
harness exposes: recorded histories (including global step numbers), wire
traces (event for event, in order), executed event counts, and budget
truncation points.  Three facts make this possible:

* **Within one tick nothing is causally connected.**  Every message sent at
  tick ``T`` is delivered at ``T+1`` or later (delays are at least one),
  so the effects of one wave entry can never be observed by another entry
  of the same wave.  Hoisting the object-side handler work into grouped
  batches is therefore invisible — object state is touched only by that
  object's own (order-preserved) messages.
* **Everything order-sensitive stays in entry order.**  The wave is walked
  in exactly the event queue's ``(time, seq)`` order: trace events, reply
  sends, delivery-policy consultations, history steps and round
  terminations all happen at the same position in the run as they would
  one heap pop at a time.  In particular a round that overshoots its
  quorum within one tick terminates with exactly the same reply *prefix*
  either way.
* **A run's in-flight count can only reach zero on its last entry** (the
  rest of the run is itself still in flight before that), so one combined
  in-flight update per run fires the quiescence listener at exactly the
  event path's position.

The one semantic caveat is documented on the hooks themselves: custom
:class:`~repro.sim.process.FaultBehavior`/handler overrides must stay
object-local (they all are), since cross-object state peeking would
observe the grouped processing order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.network import FifoDelivery, Message
from repro.sim.rounds import RoundRecord, RoundSpec
from repro.sim.simulator import ClientOperation, OperationStatus, Simulator
from repro.sim.tracing import TraceKind

#: The registered simulation engines, in preference order.
ENGINES = ("event", "batched")


def available_engines() -> tuple[str, ...]:
    """The simulation engines addressable from ``Cluster(engine=...)``."""
    return ENGINES


def resolve_engine(name: str) -> type[Simulator]:
    """The simulator class registered under engine ``name``."""
    if name == "event":
        return Simulator
    if name == "batched":
        return BatchedSimulator
    raise ConfigurationError(
        f"unknown engine {name!r}; available: {', '.join(ENGINES)}"
    )


class WaveQueue:
    """Virtual-time buckets of scheduled work, popped one wave at a time.

    Drop-in for the scheduling surface the simulator and network use
    (``now``, ``schedule``, emptiness), but instead of a heap it keeps one
    FIFO list per virtual tick.  Entries are either zero-argument callables
    (operation starts) or in-transit :class:`~repro.sim.network.Message`
    deliveries pushed through the network's delivery sinks.  Appends
    preserve global scheduling order within each bucket — exactly the
    ``(time, seq)`` order the event heap would pop — so a popped wave *is*
    the event queue's per-tick segment.
    """

    __slots__ = ("_buckets", "_times", "_now")

    def __init__(self) -> None:
        self._buckets: dict[int, list[Any]] = {}
        # Min-heap of bucket times: one push per bucket *creation*, one pop
        # per wave — scanning the bucket dict for its minimum key on every
        # wave would cost O(pending ticks) per pop and degrade linearly on
        # long schedules.  Times are unique while their bucket exists, so
        # no lazy-deletion bookkeeping is needed.
        self._times: list[int] = []
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time (time of the last popped wave)."""
        return self._now

    def __len__(self) -> int:
        return sum(
            sum(len(entry) if entry.__class__ is list else 1 for entry in bucket)
            for bucket in self._buckets.values()
        )

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def schedule(self, delay: int, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [action]
            heapq.heappush(self._times, time)
        else:
            bucket.append(action)

    def push_message(self, deliver_at: int, message: Message) -> None:
        """Park ``message`` for delivery in the wave at ``deliver_at``."""
        bucket = self._buckets.get(deliver_at)
        if bucket is None:
            self._buckets[deliver_at] = [message]
            heapq.heappush(self._times, deliver_at)
        else:
            bucket.append(message)

    def push_run(self, deliver_at: int, messages: list[Message]) -> None:
        """Park a whole same-round message run as *one* wave entry.

        The run stays a single list entry inside the bucket — the walk
        expands it in place, in order — so a broadcast costs one append at
        send time and zero run-boundary scanning at delivery time.
        """
        bucket = self._buckets.get(deliver_at)
        if bucket is None:
            self._buckets[deliver_at] = [messages]
            heapq.heappush(self._times, deliver_at)
        else:
            bucket.append(messages)

    def peek_time(self) -> int | None:
        """Virtual time of the next wave, or None when nothing is scheduled."""
        if not self._times:
            return None
        return self._times[0]

    def pop_wave(self) -> list[Any]:
        """Remove and return the earliest wave, advancing time to it."""
        if not self._times:
            raise SimulationError("pop from an empty wave queue")
        time = heapq.heappop(self._times)
        self._now = time
        return self._buckets.pop(time)


class BatchedSimulator(Simulator):
    """Drop-in :class:`Simulator` executing in per-tick delivery waves.

    Same construction signature, same ``invoke``/``run``/``operations``/
    history/trace surface, byte-identical observable behaviour (see the
    module docstring for why).  The differences are purely mechanical: the
    heap becomes a :class:`WaveQueue`, the network's scheduled deliveries
    flow into the wave buckets through its delivery sinks, and :meth:`run`
    drains whole waves instead of popping events one at a time.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.network.delivery_sink = self.queue.push_message
        self.network.delivery_batch_sink = self.queue.push_run
        # Under the plain constant-latency FIFO policy, per-message policy
        # dispatch, watermark bookkeeping and hold checks are provably
        # inert, so reply sends take an inlined fast path in the walk.
        self._fast_fifo = type(self.network.policy) is FifoDelivery

    def _new_queue(self) -> WaveQueue:  # type: ignore[override]
        return WaveQueue()

    # ------------------------------------------------------------------ #
    # Wave execution
    # ------------------------------------------------------------------ #

    def _drain(self, max_events: int | None) -> int:
        """Run wave after wave until no work is scheduled; returns the count.

        Budget semantics mirror :meth:`EventQueue.run_all` exactly: the run
        raises once ``max_events`` entries executed with work still pending,
        having executed precisely the same prefix of the schedule.

        This is the engine's whole hot loop, fused into one frame: waves
        average only a few entries, so per-wave function calls and attribute
        reloads would rival the per-entry work itself.  The wave is walked
        in event order; broadcast runs arrive as single list entries (see
        :meth:`WaveQueue.push_run`), so a run's reply-rule resolution and
        in-flight accounting collapse to one bookkeeping step, while
        everything order-sensitive (trace events, reply sends, round
        terminations) happens at its exact event-path position.
        """
        queue = self.queue
        buckets = queue._buckets
        times = queue._times
        heappop = heapq.heappop
        objects = self.objects
        network = self.network
        handlers = network._handlers
        inflight = network._inflight
        listener = network.quiescence_listener
        trace = self.trace
        trace_entries = trace.entries if trace is not None else None
        deliver_kind = TraceKind.DELIVER
        send_kind = TraceKind.SEND
        drop_kind = TraceKind.DROP
        fast_fifo = self._fast_fifo
        latency = network.policy.latency if fast_fifo else 1
        by_op = self._by_op
        pending_status = OperationStatus.PENDING
        object_batches = self._object_batches
        budgeted = max_events is not None
        executed = 0

        while times:
            if budgeted and executed >= max_events:
                raise SimulationError(f"event budget of {max_events} exhausted")
            now = heappop(times)
            queue._now = now
            wave = buckets.pop(now)
            if budgeted:
                size = 0
                for entry in wave:
                    size += len(entry) if entry.__class__ is list else 1
                if executed + size > max_events:
                    self._run_truncated(wave, max_events - executed)
                    raise SimulationError(f"event budget of {max_events} exhausted")
            out_bucket: list[Any] | None = None  # lazily bound next-tick bucket
            # A single-entry wave cannot hold two invocation runs, so the
            # grouping pre-scan is skipped outright for the common case.
            payloads = object_batches(wave) if len(wave) > 1 else None

            for entry in wave:
                cls = entry.__class__
                if cls is not list:
                    if cls is not Message:
                        entry()  # an operation-start action
                        executed += 1
                        continue
                    run: Sequence[Message] = (entry,)  # slow-path single delivery
                else:
                    run = entry
                executed += len(run)
                first = run[0]
                op_id = first.op
                round_no = first.round_no
                # In-flight delta of the run: −1 per finished delivery, +1
                # per fast-path reply send (slow-path sends bump the count
                # inside Network.send themselves).
                delta = 0

                if not first.is_reply:
                    # Invocation run: one message per destination object.
                    out_run: list[Message] | None = [] if fast_fifo else None
                    for message in run:
                        dst = message.dst
                        if payloads is None:
                            server = objects.get(dst)
                            if server is None:
                                network._deliver(message)
                                continue
                            # Inlined ObjectServer.receive for the hot
                            # correct path; faulty objects keep the full
                            # dispatch.
                            server.messages_seen += 1
                            behavior = server.behavior
                            if behavior is None:
                                payload = server.handler.handle(server.state, message)
                            elif not behavior.before_handle(server, message):
                                payload = None
                            else:
                                payload = behavior.reply(
                                    server, message,
                                    server.handler.handle(server.state, message),
                                )
                        else:
                            source = payloads.get(dst)
                            if source is None:
                                # Mis-addressed protocol message: take the
                                # full event path (its own bookkeeping).
                                network._deliver(message)
                                continue
                            payload = next(source)
                        delta -= 1
                        if trace_entries is not None:
                            trace_entries.append((now, deliver_kind, message))
                        if payload is None:
                            continue
                        reply = Message(
                            src=dst,
                            dst=message.src,
                            op=op_id,
                            round_no=round_no,
                            tag=message.tag,
                            payload=payload,
                            is_reply=True,
                        )
                        if out_run is not None:
                            delta += 1
                            if trace_entries is not None:
                                trace_entries.append((now, send_kind, reply))
                            out_run.append(reply)
                        else:
                            network.send(reply)
                    if out_run:
                        # The run's replies form one contiguous same-round
                        # run in the next wave — park them as one entry.
                        if out_bucket is None:
                            out_time = now + latency
                            out_bucket = buckets.get(out_time)
                            if out_bucket is None:
                                out_bucket = buckets[out_time] = []
                                heapq.heappush(times, out_time)
                        out_bucket.append(out_run)
                else:
                    delta = -len(run)
                    client = first.dst
                    if client not in handlers:
                        # Crashed/aborted client: replies dropped on the floor.
                        if trace_entries is not None:
                            trace_entries.extend([(now, drop_kind, m) for m in run])
                    else:
                        operation = by_op.get(op_id)
                        record = None
                        if operation is not None and operation.status is pending_status:
                            record = self._round_record(operation, round_no)
                        if record is None or record.terminated:
                            # Stale replies to a finished operation or
                            # round: observed on the wire, ignored.
                            if trace_entries is not None:
                                trace_entries.extend(
                                    [(now, deliver_kind, m) for m in run]
                                )
                        else:
                            rule = record.spec.rule
                            predicate = rule.predicate
                            min_count = rule.min_count
                            replies = record.replies
                            for message in run:
                                if trace_entries is not None:
                                    trace_entries.append((now, deliver_kind, message))
                                # A terminated record cannot be the current
                                # round (rounds only start after the
                                # previous one terminates), so this one
                                # check replaces the event path's status +
                                # currency checks.
                                if record.terminated:
                                    continue
                                src = message.src
                                if src in replies:
                                    continue
                                replies[src] = message.payload
                                if len(replies) >= min_count and (
                                    predicate is None or predicate(replies)
                                ):
                                    self._finish_round(operation, record, quiesced=False)

                if delta:
                    # Batched in-flight accounting for the run.  The count
                    # can only reach zero on the run's last entry (earlier
                    # entries leave the rest of the run itself in flight),
                    # so one update at the end fires quiescence at exactly
                    # the event path's position.
                    key = (op_id, round_no)
                    remaining = inflight.get(key, -delta) + delta
                    if remaining > 0:
                        inflight[key] = remaining
                    else:
                        inflight.pop(key, None)
                        if listener is not None:
                            listener(op_id, round_no)
        return executed

    def _run_truncated(self, wave: list[Any], budget: int) -> None:
        """Execute exactly ``budget`` entries of ``wave`` the event way.

        The budget ends inside this wave, so the admissible prefix replays
        through the per-entry event path — no batching, since entries past
        the cut must not have run their handlers.
        """
        deliver = self.network._deliver
        done = 0
        for entry in wave:
            for item in entry if entry.__class__ is list else (entry,):
                if done >= budget:
                    return
                if item.__class__ is Message:
                    deliver(item)
                else:
                    item()
                done += 1

    def _object_batches(self, wave: list[Any]) -> dict[Any, Any] | None:
        """Per-object reply iterators when grouping pays off, else None.

        Grouping invocations by destination (one ``receive_batch`` — one
        handler and one fault-behaviour dispatch — per object per tick)
        only amortizes anything when an object receives more than one
        message in the wave, i.e. when invocation runs of more than one
        round land together (concurrent clients, sharded multiplexing).  A
        wave carrying a single round's broadcast addresses each object
        once, so it skips the grouping machinery entirely.
        """
        objects = self.objects
        runs = 0
        for entry in wave:
            if entry.__class__ is list and not entry[0].is_reply:
                runs += 1
                if runs > 1:
                    break
        else:
            return None
        groups: dict[Any, list[Message]] = {}
        for entry in wave:
            if entry.__class__ is list and not entry[0].is_reply:
                for message in entry:
                    dst = message.dst
                    if dst in objects:
                        group = groups.get(dst)
                        if group is None:
                            groups[dst] = [message]
                        else:
                            group.append(message)
        # Hoisting the handler work ahead of the walk is safe: object state
        # is invisible to every other entry of the same wave (nothing sent
        # at tick T is seen before T+1).
        return {
            pid: iter(objects[pid].receive_batch(batch))
            for pid, batch in groups.items()
        }

    # ------------------------------------------------------------------ #
    # Round starts: one batched send per broadcast
    # ------------------------------------------------------------------ #

    def _start_round(self, operation: ClientOperation, spec: RoundSpec) -> None:
        round_no = len(operation.rounds) + 1
        record = RoundRecord(spec=spec, round_no=round_no, started_at=self.queue.now)
        operation.rounds.append(record)
        destinations: Iterable[Any] = spec.destinations or self.object_ids
        client = operation.client
        op_id = operation.op_id
        tag = spec.tag
        payload = spec.payload
        if spec.per_object_payload is None:
            messages = [
                Message(src=client, dst=dst, op=op_id, round_no=round_no,
                        tag=tag, payload=payload)
                for dst in destinations
            ]
        else:
            messages = [
                Message(src=client, dst=dst, op=op_id, round_no=round_no,
                        tag=tag, payload=spec.payload_for(dst))
                for dst in destinations
            ]
        self.network.send_round(messages)
