"""Message traces: the observable record of a simulation run.

A :class:`MessageTrace` collects every send/hold/delivery with its virtual
time.  Traces serve three purposes: debugging, latency accounting (rounds are
recounted from the wire, cross-checking the engine's own bookkeeping), and
extracting per-client *reply transcripts* — the basis of the
indistinguishability arguments in the lower-bound constructions (a reader
cannot distinguish two runs in which it receives identical reply sequences).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.sim.network import Message
from repro.types import OperationId, ProcessId


class TraceKind(enum.Enum):
    """What happened to a message at a trace point."""

    SEND = "send"
    HOLD = "hold"
    DELIVER = "deliver"
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observation: ``message`` underwent ``kind`` at ``time``."""

    time: int
    kind: TraceKind
    message: Message

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (one ``--trace`` JSONL line).

        Payload values that are not JSON primitives (tagged values,
        timestamps, nested protocol state) are rendered through the
        type-tagged storage codec (:func:`repro.storage.codec.pack_value`),
        so dumps round-trip deterministically via
        :func:`~repro.storage.codec.unpack_value`.  Primitives pass through
        unchanged — dumps of primitive-only payloads are byte-identical to
        the older ``str()`` rendering, and old dumps remain readable (the
        tagged objects simply replace the lossy strings).  Values outside
        the codec's vocabulary still fall back to ``str``.
        """
        from repro.storage.codec import pack_value

        message = self.message
        payload = {}
        for key, value in sorted(message.payload.items()):
            try:
                payload[key] = pack_value(value)
            except TypeError:
                payload[key] = str(value)
        return {
            "time": self.time,
            "kind": self.kind.value,
            "src": str(message.src),
            "dst": str(message.dst),
            "op": str(message.op),
            "op_serial": message.op.serial,
            "op_kind": message.op.kind,
            "round": message.round_no,
            "tag": message.tag,
            "reply": message.is_reply,
            "payload": payload,
        }


@dataclass(frozen=True, slots=True)
class TranscriptEntry:
    """One reply as the client observed it (payload made hashable)."""

    round_no: int
    source: ProcessId
    tag: str
    payload_items: tuple[tuple[str, Any], ...]

    @classmethod
    def from_message(cls, message: Message) -> "TranscriptEntry":
        return cls(
            round_no=message.round_no,
            source=message.src,
            tag=message.tag,
            payload_items=_freeze(message.payload),
        )


def _freeze(payload: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical hashable form of a reply payload (sorted key/value pairs)."""
    items = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, Mapping):
            value = _freeze(value)
        elif isinstance(value, (list, set)):
            value = tuple(sorted(map(repr, value)))
        items.append((key, value))
    return tuple(items)


class MessageTrace:
    """Trace sink handed to :class:`~repro.sim.network.Network`.

    Recording sits on the simulator's per-message hot path, so observations
    are kept as plain ``(time, kind, message)`` tuples in :attr:`entries`;
    the :class:`TraceEvent` view the public API exposes is materialized
    lazily (and cached) by :attr:`events`.  Both views present the same
    record in the same order.
    """

    __slots__ = ("entries", "_materialized")

    def __init__(self) -> None:
        #: The raw log: ``(time, TraceKind, Message)`` tuples in record order.
        self.entries: list[tuple[int, TraceKind, Message]] = []
        self._materialized: list[TraceEvent] | None = None

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded observations as :class:`TraceEvent` objects."""
        cached = self._materialized
        if cached is None or len(cached) != len(self.entries):
            cached = [TraceEvent(*entry) for entry in self.entries]
            self._materialized = cached
        return cached

    def record_send(self, time: int, message: Message) -> None:
        self.entries.append((time, TraceKind.SEND, message))

    def record_send_batch(self, time: int, messages: Iterable[Message]) -> None:
        """Record one same-tick broadcast in a single list extend."""
        kind = TraceKind.SEND
        self.entries.extend([(time, kind, m) for m in messages])

    def record_hold(self, time: int, message: Message) -> None:
        self.entries.append((time, TraceKind.HOLD, message))

    def record_delivery(self, time: int, message: Message) -> None:
        self.entries.append((time, TraceKind.DELIVER, message))

    def record_drop(self, time: int, message: Message) -> None:
        self.entries.append((time, TraceKind.DROP, message))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def delivered_to(self, pid: ProcessId) -> list[Message]:
        """Messages actually delivered to ``pid``, in delivery order."""
        return [
            message
            for _, kind, message in self.entries
            if kind is TraceKind.DELIVER and message.dst == pid
        ]

    def replies_for_operation(self, op_id: OperationId) -> list[Message]:
        """Replies delivered to the invoking client of ``op_id``."""
        return [
            message
            for _, kind, message in self.entries
            if kind is TraceKind.DELIVER
            and message.is_reply
            and message.op == op_id
        ]

    def client_transcript(self, op_id: OperationId) -> tuple[TranscriptEntry, ...]:
        """The reply transcript of one operation (order-insensitive form).

        Two partial runs are indistinguishable to a reader exactly when the
        transcripts of its operations are equal as multisets per round; the
        tuple returned here is sorted to make that comparison a plain ``==``.
        """
        entries = [TranscriptEntry.from_message(m) for m in self.replies_for_operation(op_id)]
        return tuple(sorted(entries, key=lambda e: (e.round_no, e.source, e.payload_items)))

    def messages_between(self, src: ProcessId, dst: ProcessId) -> list[Message]:
        """All sends from ``src`` to ``dst`` in send order."""
        return [
            message
            for _, kind, message in self.entries
            if kind is TraceKind.SEND
            and message.src == src
            and message.dst == dst
        ]

    def round_trip_count(self, op_id: OperationId) -> int:
        """Rounds observed on the wire for ``op_id`` (max round number sent)."""
        rounds = {
            message.round_no
            for _, kind, message in self.entries
            if kind is TraceKind.SEND
            and not message.is_reply
            and message.op == op_id
        }
        return max(rounds, default=0)


def merge_transcripts(traces: Iterable[MessageTrace], op_id: OperationId) -> tuple[TranscriptEntry, ...]:
    """Union of transcripts for ``op_id`` across several traces, sorted."""
    entries: list[TranscriptEntry] = []
    for trace in traces:
        entries.extend(trace.client_transcript(op_id))
    return tuple(sorted(entries, key=lambda e: (e.round_no, e.source, e.payload_items)))


def trace_fingerprint(trace: MessageTrace) -> str:
    """Canonical digest of a full wire trace.

    The load-bearing equality oracle of the harness: the schedule explorer
    uses it as its partial-order-reduction key and witness replay check,
    and the engine-equivalence suite and benchmarks assert event-vs-batched
    byte-identity through it.  Two traces fingerprint equal exactly when
    they recorded the same observations in the same order.
    """
    import hashlib

    digest = hashlib.sha256()
    for time, kind, message in trace.entries:
        digest.update(repr((
            time,
            kind.value,
            str(message.src),
            str(message.dst),
            message.op.serial,
            message.op.kind,
            str(message.op.client),
            message.round_no,
            message.tag,
            message.is_reply,
            _freeze(message.payload),
        )).encode("utf-8", "backslashreplace"))
    return digest.hexdigest()[:24]


def dump_trace_jsonl(trace: MessageTrace, sink, extra: Mapping[str, Any] | None = None) -> int:
    """Write ``trace`` to the file object ``sink`` as one JSON line per event.

    ``extra`` fields (e.g. the trial index) are merged into every line.
    Returns the number of events written.
    """
    import json

    merged = dict(extra or {})
    for event in trace.events:
        record = event.to_dict()
        record.update(merged)
        sink.write(json.dumps(record, sort_keys=True, ensure_ascii=False) + "\n")
    return len(trace.events)
