"""Message traces: the observable record of a simulation run.

A :class:`MessageTrace` collects every send/hold/delivery with its virtual
time.  Traces serve three purposes: debugging, latency accounting (rounds are
recounted from the wire, cross-checking the engine's own bookkeeping), and
extracting per-client *reply transcripts* — the basis of the
indistinguishability arguments in the lower-bound constructions (a reader
cannot distinguish two runs in which it receives identical reply sequences).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.sim.network import Message
from repro.types import OperationId, ProcessId


class TraceKind(enum.Enum):
    """What happened to a message at a trace point."""

    SEND = "send"
    HOLD = "hold"
    DELIVER = "deliver"
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observation: ``message`` underwent ``kind`` at ``time``."""

    time: int
    kind: TraceKind
    message: Message

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (one ``--trace`` JSONL line).

        Payload values that are not JSON primitives (tagged values,
        timestamps, nested protocol state) are rendered with ``str`` — the
        dump is for offline inspection, not for re-execution (replayable
        artifacts are :class:`~repro.explore.witness.ScheduleWitness`).
        """
        message = self.message
        return {
            "time": self.time,
            "kind": self.kind.value,
            "src": str(message.src),
            "dst": str(message.dst),
            "op": str(message.op),
            "op_serial": message.op.serial,
            "op_kind": message.op.kind,
            "round": message.round_no,
            "tag": message.tag,
            "reply": message.is_reply,
            "payload": {
                key: value if isinstance(value, (str, int, float, bool, type(None)))
                else str(value)
                for key, value in sorted(message.payload.items())
            },
        }


@dataclass(frozen=True, slots=True)
class TranscriptEntry:
    """One reply as the client observed it (payload made hashable)."""

    round_no: int
    source: ProcessId
    tag: str
    payload_items: tuple[tuple[str, Any], ...]

    @classmethod
    def from_message(cls, message: Message) -> "TranscriptEntry":
        return cls(
            round_no=message.round_no,
            source=message.src,
            tag=message.tag,
            payload_items=_freeze(message.payload),
        )


def _freeze(payload: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical hashable form of a reply payload (sorted key/value pairs)."""
    items = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, Mapping):
            value = _freeze(value)
        elif isinstance(value, (list, set)):
            value = tuple(sorted(map(repr, value)))
        items.append((key, value))
    return tuple(items)


class MessageTrace:
    """Trace sink handed to :class:`~repro.sim.network.Network`."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record_send(self, time: int, message: Message) -> None:
        self.events.append(TraceEvent(time, TraceKind.SEND, message))

    def record_hold(self, time: int, message: Message) -> None:
        self.events.append(TraceEvent(time, TraceKind.HOLD, message))

    def record_delivery(self, time: int, message: Message) -> None:
        self.events.append(TraceEvent(time, TraceKind.DELIVER, message))

    def record_drop(self, time: int, message: Message) -> None:
        self.events.append(TraceEvent(time, TraceKind.DROP, message))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def delivered_to(self, pid: ProcessId) -> list[Message]:
        """Messages actually delivered to ``pid``, in delivery order."""
        return [
            event.message
            for event in self.events
            if event.kind is TraceKind.DELIVER and event.message.dst == pid
        ]

    def replies_for_operation(self, op_id: OperationId) -> list[Message]:
        """Replies delivered to the invoking client of ``op_id``."""
        return [
            event.message
            for event in self.events
            if event.kind is TraceKind.DELIVER
            and event.message.is_reply
            and event.message.op == op_id
        ]

    def client_transcript(self, op_id: OperationId) -> tuple[TranscriptEntry, ...]:
        """The reply transcript of one operation (order-insensitive form).

        Two partial runs are indistinguishable to a reader exactly when the
        transcripts of its operations are equal as multisets per round; the
        tuple returned here is sorted to make that comparison a plain ``==``.
        """
        entries = [TranscriptEntry.from_message(m) for m in self.replies_for_operation(op_id)]
        return tuple(sorted(entries, key=lambda e: (e.round_no, e.source, e.payload_items)))

    def messages_between(self, src: ProcessId, dst: ProcessId) -> list[Message]:
        """All sends from ``src`` to ``dst`` in send order."""
        return [
            event.message
            for event in self.events
            if event.kind is TraceKind.SEND
            and event.message.src == src
            and event.message.dst == dst
        ]

    def round_trip_count(self, op_id: OperationId) -> int:
        """Rounds observed on the wire for ``op_id`` (max round number sent)."""
        rounds = {
            event.message.round_no
            for event in self.events
            if event.kind is TraceKind.SEND
            and not event.message.is_reply
            and event.message.op == op_id
        }
        return max(rounds, default=0)


def merge_transcripts(traces: Iterable[MessageTrace], op_id: OperationId) -> tuple[TranscriptEntry, ...]:
    """Union of transcripts for ``op_id`` across several traces, sorted."""
    entries: list[TranscriptEntry] = []
    for trace in traces:
        entries.extend(trace.client_transcript(op_id))
    return tuple(sorted(entries, key=lambda e: (e.round_no, e.source, e.payload_items)))


def dump_trace_jsonl(trace: MessageTrace, sink, extra: Mapping[str, Any] | None = None) -> int:
    """Write ``trace`` to the file object ``sink`` as one JSON line per event.

    ``extra`` fields (e.g. the trial index) are merged into every line.
    Returns the number of events written.
    """
    import json

    merged = dict(extra or {})
    for event in trace.events:
        record = event.to_dict()
        record.update(merged)
        sink.write(json.dumps(record, sort_keys=True, ensure_ascii=False) + "\n")
    return len(trace.events)
