"""Virtual-time event queue.

Events carry an integral virtual time and a monotonically increasing sequence
number, so two events scheduled for the same instant pop in scheduling order.
This makes every simulation fully deterministic for a fixed seed.

The heap holds plain ``(time, seq, action)`` tuples: a simulation executes
hundreds of events per operation, so per-event allocation and comparison cost
dominates the simulator's inner loop.  Tuples heap-compare on ``(time, seq)``
without ever reaching the (uncomparable) action, exactly like the dataclass
they replaced, at a fraction of the allocation cost.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

#: One scheduled occurrence: run ``action`` at virtual time ``time``.
#: ``seq`` breaks ties so same-instant events pop in scheduling order.
Event = tuple[int, int, Callable[[], Any]]


class EventQueue:
    """Min-heap of ``(time, seq, action)`` tuples ordered by ``(time, seq)``."""

    __slots__ = ("_heap", "_next_seq", "_now")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: int, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` to run ``delay`` ticks from now.

        ``label`` is accepted for caller readability but not stored: the
        queue sits on the simulator's hottest path and labels were never
        observable outside debugging sessions.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (self._now + delay, seq, action))

    def pop(self) -> Event:
        """Remove and return the earliest pending event, advancing time."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event[0]
        return event

    def peek_time(self) -> int | None:
        """Virtual time of the next event, or None when the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def run_all(self, max_events: int | None = None) -> int:
        """Pop-and-run events until the queue drains.

        Returns the number of events executed.  ``max_events`` guards against
        runaway protocols (an exceeded budget raises
        :class:`~repro.errors.SimulationError`).
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"event budget of {max_events} exhausted")
            time, _seq, action = pop(heap)
            self._now = time
            action()
            executed += 1
        return executed
