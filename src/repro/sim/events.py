"""Virtual-time event queue.

Events carry an integral virtual time and a monotonically increasing sequence
number, so two events scheduled for the same instant pop in scheduling order.
This makes every simulation fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """One scheduled occurrence: run ``action`` at virtual time ``time``."""

    time: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: int, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event, advancing time."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        if event.time < self._now:
            raise SimulationError(f"event scheduled in the past: {event}")
        self._now = event.time
        return event

    def peek_time(self) -> int | None:
        """Virtual time of the next event, or None when the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0].time

    def run_all(self, max_events: int | None = None) -> int:
        """Pop-and-run events until the queue drains.

        Returns the number of events executed.  ``max_events`` guards against
        runaway protocols (an exceeded budget raises
        :class:`~repro.errors.SimulationError`).
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"event budget of {max_events} exhausted")
            event = self.pop()
            event.action()
            executed += 1
        return executed
