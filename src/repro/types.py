"""Shared ground types: process identifiers, timestamps, values.

The model of the paper (Section 2) distinguishes three disjoint process sets:
*objects* (the ``S`` base storage components), a singleton *writer*, and
``R`` *readers*.  Process identifiers carry their role so that harness code
can enforce the model's communication restrictions (objects never initiate
messages; clients never talk to each other).
"""

from __future__ import annotations

import enum
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: The register's initial value.  Per the paper it is a reserved symbol that
#: no write operation may store.
BOTTOM: str = "⊥"  # ⊥


class Role(enum.Enum):
    """Role of a process in the emulation."""

    OBJECT = "object"
    WRITER = "writer"
    READER = "reader"
    #: Repair coordinators: one per membership-epoch transition in a
    #: reconfigurable system (see :mod:`repro.registers.reconfig`).  They
    #: are clients like readers/writers, but their operations carry state
    #: transfer, not register semantics, so they get their own role.
    REPAIR = "repair"


@dataclass(frozen=True, slots=True)
class ProcessId:
    """Identifier of a process: a role plus an index within that role.

    Ordering is lexicographic on ``(role.value, index)`` which gives the
    deterministic iteration orders the simulator relies on.  The comparison
    methods are hand-written: every terminated round sorts its repliers,
    and the dataclass-generated operators allocate two field tuples per
    comparison.
    """

    role_value: str
    index: int

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        return self.index == other.index and self.role_value == other.role_value

    def __lt__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        role = self.role_value
        other_role = other.role_value
        return role < other_role or (role == other_role and self.index < other.index)

    def __le__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        role = self.role_value
        other_role = other.role_value
        return role < other_role or (role == other_role and self.index <= other.index)

    def __gt__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        role = self.role_value
        other_role = other.role_value
        return role > other_role or (role == other_role and self.index > other.index)

    def __ge__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        role = self.role_value
        other_role = other.role_value
        return role > other_role or (role == other_role and self.index >= other.index)

    @property
    def role(self) -> Role:
        """Return the :class:`Role` this identifier belongs to."""
        return Role(self.role_value)

    def __str__(self) -> str:
        prefix = {"object": "s", "writer": "w", "reader": "r", "repair": "q"}[self.role_value]
        if self.role_value == "writer":
            return prefix
        return f"{prefix}{self.index}"


def object_id(index: int) -> ProcessId:
    """Identifier of storage object ``s_index`` (1-based, as in the paper)."""
    if index < 1:
        raise ValueError(f"object indices are 1-based, got {index}")
    return ProcessId(Role.OBJECT.value, index)


def writer_id() -> ProcessId:
    """Identifier of the unique writer ``w``."""
    return ProcessId(Role.WRITER.value, 0)


def reader_id(index: int) -> ProcessId:
    """Identifier of reader ``r_index`` (1-based, as in the paper)."""
    if index < 1:
        raise ValueError(f"reader indices are 1-based, got {index}")
    return ProcessId(Role.READER.value, index)


def repair_id(index: int) -> ProcessId:
    """Identifier of repair coordinator ``q_index`` (1-based, one per epoch step)."""
    if index < 1:
        raise ValueError(f"repair indices are 1-based, got {index}")
    return ProcessId(Role.REPAIR.value, index)


def object_ids(count: int) -> tuple[ProcessId, ...]:
    """Identifiers ``s_1 .. s_count``."""
    return tuple(object_id(i) for i in range(1, count + 1))


def reader_ids(count: int) -> tuple[ProcessId, ...]:
    """Identifiers ``r_1 .. r_count``."""
    return tuple(reader_id(i) for i in range(1, count + 1))


@dataclass(frozen=True, slots=True)
class Timestamp:
    """Logical timestamp ordering the writes of a run.

    For SWMR registers ``seq`` alone suffices (the single writer increments
    it).  The multi-writer transformation breaks ties with ``writer`` (the
    client index), giving the usual lexicographic MWMR order.  ``seq == 0``
    is reserved for the initial value ⊥.

    Ordering is lexicographic on ``(seq, writer)``.  The comparison methods
    are hand-written rather than dataclass-generated: protocols compare
    timestamps once per delivered message (every STORE/WRITE handler runs
    ``incoming.ts > state[...].ts``), and the generated operators allocate
    two field tuples per comparison on that hot path.  The hash is
    precomputed: voucher counting hashes timestamps (inside tagged values)
    several times per terminated round, and both fields are ints, so the
    cached value is process-independent (safe under pickling, unlike
    anything involving seeded string hashes).
    """

    seq: int
    writer: int = 0
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.seq, self.writer)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Timestamp:
            return NotImplemented
        return self.seq == other.seq and self.writer == other.writer

    def __lt__(self, other: "Timestamp") -> bool:
        if other.__class__ is not Timestamp:
            return NotImplemented
        seq = self.seq
        other_seq = other.seq
        return seq < other_seq or (seq == other_seq and self.writer < other.writer)

    def __le__(self, other: "Timestamp") -> bool:
        if other.__class__ is not Timestamp:
            return NotImplemented
        seq = self.seq
        other_seq = other.seq
        return seq < other_seq or (seq == other_seq and self.writer <= other.writer)

    def __gt__(self, other: "Timestamp") -> bool:
        if other.__class__ is not Timestamp:
            return NotImplemented
        seq = self.seq
        other_seq = other.seq
        return seq > other_seq or (seq == other_seq and self.writer > other.writer)

    def __ge__(self, other: "Timestamp") -> bool:
        if other.__class__ is not Timestamp:
            return NotImplemented
        seq = self.seq
        other_seq = other.seq
        return seq > other_seq or (seq == other_seq and self.writer >= other.writer)

    @classmethod
    def zero(cls) -> "Timestamp":
        """The timestamp of the initial value ⊥."""
        return cls(0, 0)

    def next_for(self, writer: int = 0) -> "Timestamp":
        """Successor timestamp owned by ``writer``."""
        return Timestamp(self.seq + 1, writer)

    def __str__(self) -> str:
        if self.writer:
            return f"{self.seq}.{self.writer}"
        return str(self.seq)


@dataclass(frozen=True, slots=True)
class TaggedValue:
    """A value paired with the timestamp under which it was written."""

    ts: Timestamp
    value: Any

    def __eq__(self, other: object) -> bool:
        # Hand-written for the voucher-counting hot path: the generated
        # dataclass __eq__ allocates two field tuples per comparison.
        if other.__class__ is not TaggedValue:
            return NotImplemented
        return self.ts == other.ts and self.value == other.value

    @classmethod
    def initial(cls) -> "TaggedValue":
        """The pair ``(ts=0, ⊥)`` every register starts from."""
        return cls(Timestamp.zero(), BOTTOM)

    def newer_than(self, other: "TaggedValue") -> bool:
        """True when this pair carries a strictly larger timestamp."""
        return self.ts > other.ts

    def __str__(self) -> str:
        return f"({self.ts}, {self.value!r})"


_op_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class OperationId:
    """Unique handle of one read or write operation instance."""

    client: ProcessId
    kind: str  # "read" | "write"
    serial: int = field(default_factory=lambda: next(_op_counter))

    def __str__(self) -> str:
        return f"{self.kind}[{self.client}#{self.serial}]"


def fresh_operation_id(client: ProcessId, kind: str) -> OperationId:
    """Allocate a process-unique operation identifier."""
    if kind not in ("read", "write", "repair"):
        raise ValueError(
            f"operation kind must be 'read', 'write' or 'repair', got {kind!r}"
        )
    return OperationId(client=client, kind=kind)


def reset_operation_serials(start: int = 1) -> None:
    """Restart the operation-serial counter at ``start``.

    Serials only need to be unique *within* one simulator instance; the
    process-global counter exists purely for convenience.
    """
    global _op_counter
    _op_counter = itertools.count(start)


@contextmanager
def scoped_operation_serials() -> Iterator[None]:
    """Run a block with serials starting at 1, then resume the outer count.

    Trial executors (:func:`repro.api.cluster.run_trial`) wrap each trial in
    this scope so a trial's history — including the operation ids surfaced
    in check explanations — is a pure function of its spec, byte-identical
    whether the trial runs in this process or in a worker.  On exit the
    counter resumes *past* its pre-scope watermark, so systems that were
    live before the scope keep allocating fresh serials (no duplicate
    operation ids in their histories).
    """
    watermark = next(_op_counter)
    reset_operation_serials()
    try:
        yield
    finally:
        reset_operation_serials(watermark + 1)
