"""Seeded random operation schedules.

A workload is a list of :class:`OperationPlan` entries — kind, client,
value, invocation time, and (for multi-register systems) a key — that a
harness replays against any register system.  Generation is deterministic
per seed, so failures shrink and reproduce.

Keyed workloads: pass ``keys`` (a count or explicit names) and every plan
draws a target register, optionally skewed toward low-ranked keys with
``key_skew`` (0.0 = uniform; larger values concentrate traffic on the first
keys, the classic hot-shard regime).  Keyless generation performs exactly
the same RNG draws as before ``keys`` existed, so single-register schedules
are byte-identical across versions for the same seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class OperationPlan:
    """One planned operation."""

    kind: str  # "read" | "write"
    client_index: int  # reader index for reads; writer index for writes
    value: str | None  # payload for writes, None for reads
    at: int  # invocation time (virtual ticks)
    key: str | None = None  # target register for multi-register backends


def normalize_keys(keys: int | Sequence[str] | None) -> tuple[str, ...] | None:
    """Canonical key layout: ``4`` → ``("k1", .., "k4")``; names pass through.

    Key names may not contain ``/`` (the multiplex machinery path-joins
    nested register names with it) and must be unique.
    """
    if keys is None:
        return None
    if isinstance(keys, int):
        if keys < 1:
            raise ConfigurationError("need at least one key")
        return tuple(f"k{i}" for i in range(1, keys + 1))
    names = tuple(str(key) for key in keys)
    if not names:
        raise ConfigurationError("need at least one key")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate key names: {sorted(names)}")
    for name in names:
        if not name or "/" in name:
            raise ConfigurationError(f"invalid key name {name!r} (empty or contains '/')")
    return names


class WorkloadGenerator:
    """Generates schedules with tunable concurrency, mix, and key skew.

    Args:
        seed: RNG seed (determinism).
        n_readers: reader population to draw from.
        n_writers: writer population (1 for SWMR systems).
        read_fraction: probability an operation is a read.
        spacing: mean gap between invocation times; small values create
            heavy overlap (concurrency), large values serialize operations.
        keys: register keyspace — a count or explicit names (None: the
            single-register schedules of SWMR/MWMR systems).
        key_skew: Zipf-style exponent over key ranks; 0.0 draws keys
            uniformly, larger values make the first keys hot shards.
    """

    def __init__(
        self,
        seed: int = 0,
        n_readers: int = 2,
        n_writers: int = 1,
        read_fraction: float = 0.6,
        spacing: int = 25,
        keys: int | Sequence[str] | None = None,
        key_skew: float = 0.0,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be a probability")
        if n_readers < 1 or n_writers < 1:
            raise ConfigurationError("need at least one reader and one writer")
        if spacing < 0:
            raise ConfigurationError("spacing must be non-negative")
        if key_skew < 0:
            raise ConfigurationError("key_skew must be non-negative")
        self._rng = random.Random(seed)
        self.n_readers = n_readers
        self.n_writers = n_writers
        self.read_fraction = read_fraction
        self.spacing = spacing
        self.keys = normalize_keys(keys)
        self.key_skew = key_skew
        self._key_weights = (
            None
            if self.keys is None
            else [1.0 / (rank ** key_skew) for rank in range(1, len(self.keys) + 1)]
        )

    def _draw_key(self) -> str | None:
        if self.keys is None:
            return None
        return self._rng.choices(self.keys, weights=self._key_weights)[0]

    def plan(self, n_operations: int) -> list[OperationPlan]:
        """A schedule of ``n_operations`` operations."""
        plans: list[OperationPlan] = []
        clock = 0
        write_serial = 0
        busy_until: dict[tuple, int] = {}
        for _ in range(n_operations):
            clock += self._rng.randint(0, max(self.spacing, 0))
            if self._rng.random() < self.read_fraction:
                client = self._rng.randint(1, self.n_readers)
                key = self._draw_key()
                # Readers are shared across keys, so a reader's window spans
                # the whole keyspace.
                busy = ("read", client)
                at = max(clock, busy_until.get(busy, 0))
                plans.append(
                    OperationPlan(kind="read", client_index=client, value=None, at=at, key=key)
                )
            else:
                write_serial += 1
                client = self._rng.randint(1, self.n_writers)
                key = self._draw_key()
                # Sharded systems give each key its own writer, so write
                # windows are per (writer, key); keyless schedules keep the
                # historical per-writer window.
                busy = ("write", client) if key is None else ("write", client, key)
                at = max(clock, busy_until.get(busy, 0))
                plans.append(
                    OperationPlan(
                        kind="write",
                        client_index=client,
                        value=f"v{write_serial}",
                        at=at,
                        key=key,
                    )
                )
            # Clients are sequential: leave a generous window before the
            # same client invokes again (operations finish well within it
            # under unit-latency delivery).
            busy_until[busy] = at + 500
        return plans

    def streams(self, n_operations: int) -> Iterator[OperationPlan]:
        """Generator variant of :meth:`plan`."""
        yield from self.plan(n_operations)

    def key_streams(self, n_operations: int) -> dict[str, list[OperationPlan]]:
        """One operation stream per key, in schedule order.

        Requires a keyed generator; the streams partition :meth:`plan`'s
        output, so replaying every stream replays the whole schedule.
        """
        if self.keys is None:
            raise ConfigurationError("key_streams needs a generator built with keys=")
        streams: dict[str, list[OperationPlan]] = {key: [] for key in self.keys}
        for plan in self.plan(n_operations):
            streams[plan.key].append(plan)
        return streams


def apply_plan(system, plans: list[OperationPlan]) -> None:
    """Replay a schedule against a :class:`~repro.registers.base.RegisterSystem`."""
    for plan in plans:
        if plan.kind == "write":
            system.write(plan.value, at=plan.at)
        else:
            system.read(plan.client_index, at=plan.at)
