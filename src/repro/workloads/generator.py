"""Seeded random operation schedules.

A workload is a list of :class:`OperationPlan` entries — kind, client,
value, invocation time — that a harness replays against any register system.
Generation is deterministic per seed, so failures shrink and reproduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class OperationPlan:
    """One planned operation."""

    kind: str  # "read" | "write"
    client_index: int  # reader index for reads; writer index for writes
    value: str | None  # payload for writes, None for reads
    at: int  # invocation time (virtual ticks)


class WorkloadGenerator:
    """Generates schedules with tunable concurrency and read/write mix.

    Args:
        seed: RNG seed (determinism).
        n_readers: reader population to draw from.
        n_writers: writer population (1 for SWMR systems).
        read_fraction: probability an operation is a read.
        spacing: mean gap between invocation times; small values create
            heavy overlap (concurrency), large values serialize operations.
    """

    def __init__(
        self,
        seed: int = 0,
        n_readers: int = 2,
        n_writers: int = 1,
        read_fraction: float = 0.6,
        spacing: int = 25,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be a probability")
        if n_readers < 1 or n_writers < 1:
            raise ConfigurationError("need at least one reader and one writer")
        if spacing < 0:
            raise ConfigurationError("spacing must be non-negative")
        self._rng = random.Random(seed)
        self.n_readers = n_readers
        self.n_writers = n_writers
        self.read_fraction = read_fraction
        self.spacing = spacing

    def plan(self, n_operations: int) -> list[OperationPlan]:
        """A schedule of ``n_operations`` operations."""
        plans: list[OperationPlan] = []
        clock = 0
        write_serial = 0
        busy_until: dict[tuple[str, int], int] = {}
        for _ in range(n_operations):
            clock += self._rng.randint(0, max(self.spacing, 0))
            if self._rng.random() < self.read_fraction:
                client = self._rng.randint(1, self.n_readers)
                key = ("read", client)
                at = max(clock, busy_until.get(key, 0))
                plans.append(OperationPlan(kind="read", client_index=client, value=None, at=at))
            else:
                write_serial += 1
                client = self._rng.randint(1, self.n_writers)
                key = ("write", client)
                at = max(clock, busy_until.get(key, 0))
                plans.append(
                    OperationPlan(
                        kind="write",
                        client_index=client,
                        value=f"v{write_serial}",
                        at=at,
                    )
                )
            # Clients are sequential: leave a generous window before the
            # same client invokes again (operations finish well within it
            # under unit-latency delivery).
            busy_until[key] = at + 500
        return plans

    def streams(self, n_operations: int) -> Iterator[OperationPlan]:
        """Generator variant of :meth:`plan`."""
        yield from self.plan(n_operations)


def apply_plan(system, plans: list[OperationPlan]) -> None:
    """Replay a schedule against a :class:`~repro.registers.base.RegisterSystem`."""
    for plan in plans:
        if plan.kind == "write":
            system.write(plan.value, at=plan.at)
        else:
            system.read(plan.client_index, at=plan.at)
