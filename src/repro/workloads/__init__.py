"""Workload generation for tests and benchmarks.

:mod:`repro.workloads.generator` produces seeded random operation schedules
(who reads/writes what, when); :mod:`repro.workloads.scenarios` bundles the
named scenarios the benchmark harness sweeps — contention patterns, fault
mixes, and the cloud-style read-heavy workloads the paper's introduction
motivates.
"""

from repro.workloads.generator import OperationPlan, WorkloadGenerator
from repro.workloads.scenarios import FaultPlan, Scenario, standard_scenarios

__all__ = [
    "OperationPlan",
    "WorkloadGenerator",
    "Scenario",
    "FaultPlan",
    "standard_scenarios",
]
