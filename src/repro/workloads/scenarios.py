"""Named benchmark scenarios: fault mixes and schedule shapes.

The latency-matrix experiment (E6) runs every protocol under every scenario
here; tests reuse them so benchmark configurations stay covered by the test
suite.  Scenarios are **registry-addressable**: :func:`get_scenario` builds
one by name for a given threshold, :func:`available_scenarios` lists the
names, and :func:`register_scenario` adds custom regimes (which the
:class:`repro.api.cluster.Cluster` facade then accepts by name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.faults.adversary import CrashAt, SilentBehavior
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.faults.churn import Flap, RollingRestart
from repro.sim.network import DeliveryPolicy
from repro.sim.process import FaultBehavior, ObjectServer
from repro.types import ProcessId, object_id


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Which objects misbehave and how.

    ``maker`` builds a fresh behaviour per object (behaviours can be
    stateful); ``count`` says how many of the lowest-indexed objects get
    one.  ``count`` is clamped to the system's ``t`` — scenarios model
    legal adversaries, not over-threshold demolition (tests cover that
    separately).  The clamp is explicit: :meth:`effective_count` reports
    what a given threshold actually yields, and ``strict=True`` turns the
    clamp into a :class:`~repro.errors.ConfigurationError` so sweeps cannot
    silently under-fault.
    """

    name: str
    count: int
    maker: Callable[[], FaultBehavior] | None
    strict: bool = False
    #: Fleet-wide plans (rolling restarts hit *every* object) opt out of
    #: the threshold clamp: the full ``count`` materializes, and adopting
    #: clusters flip ``allow_overfault`` on.  Legal because the faults are
    #: staggered — at most ``t`` machines are down at any one time even
    #: though more than ``t`` misbehave over the whole run.
    overfault: bool = False

    def effective_count(self, t: int) -> int:
        """How many objects actually misbehave at threshold ``t``."""
        if self.maker is None:
            return 0
        if self.overfault:
            return self.count
        return min(self.count, t)

    def behaviors(self, t: int) -> Mapping[ProcessId, FaultBehavior]:
        """Materialize behaviours for a system with threshold ``t``.

        Raises :class:`~repro.errors.ConfigurationError` when ``strict``
        and the requested ``count`` exceeds ``t``.
        """
        if self.maker is None or self.count == 0:
            return {}
        effective = self.effective_count(t)
        if self.strict and effective < self.count:
            raise ConfigurationError(
                f"fault plan {self.name!r} requests {self.count} faulty objects "
                f"but the threshold is t={t} (strict)"
            )
        return {object_id(i + 1): self.maker() for i in range(effective)}


@dataclass(frozen=True, slots=True)
class Scenario:
    """A fault plan plus workload shape — and, optionally, a schedule.

    ``policy_factory`` builds a fresh adversarial
    :class:`~repro.sim.network.DeliveryPolicy` per trial (policies are
    stateful), making message-timing adversaries — block skipping via
    :class:`~repro.faults.schedules.PlannedSchedulePolicy`, reply
    withholding, custom holds — first-class citizens of the scenario
    registry next to fault plans.  ``None`` keeps the default synchronous
    unit-latency fabric.
    """

    name: str
    fault_plan: FaultPlan
    read_fraction: float = 0.6
    spacing: int = 25
    description: str = ""
    policy_factory: Callable[[], "DeliveryPolicy"] | None = None
    #: Recovery scenarios replay durable journals on rejoin, so adopting
    #: clusters must run with ``durability='mem'`` or ``'dir'``; the facade
    #: checks this parent-side and fails with a clear error before any
    #: trial (or pool worker) starts.
    requires_durability: bool = False


# --------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------- #

#: name → builder mapping a threshold ``t`` to a concrete :class:`Scenario`.
_SCENARIOS: dict[str, Callable[[int], Scenario]] = {}

#: Canonical presentation order of the built-in sweep.
_STANDARD_ORDER = ("fault-free", "crash", "silent", "replay", "fabricate")


def register_scenario(
    name: str, builder: Callable[[int], Scenario], *, overwrite: bool = False
) -> None:
    """Register ``builder`` (t → Scenario) under ``name``."""
    if name in _SCENARIOS and not overwrite:
        raise ConfigurationError(f"scenario {name!r} registered twice")
    _SCENARIOS[name] = builder


def get_scenario(name: str, t: int) -> Scenario:
    """Build the scenario registered under ``name`` for threshold ``t``."""
    try:
        builder = _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None
    return builder(t)


def available_scenarios() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


register_scenario(
    "fault-free",
    lambda t: Scenario(
        name="fault-free",
        fault_plan=FaultPlan("none", 0, None),
        description="synchronous, all objects correct",
    ),
)
register_scenario(
    "crash",
    lambda t: Scenario(
        name="crash",
        fault_plan=FaultPlan("crash", t, lambda: CrashAt(survive_messages=3)),
        description=f"{t} objects crash after a few messages",
    ),
)
register_scenario(
    "silent",
    lambda t: Scenario(
        name="silent",
        fault_plan=FaultPlan("silent", t, lambda: SilentBehavior()),
        description=f"{t} objects silent from the start",
    ),
)
register_scenario(
    "replay",
    lambda t: Scenario(
        name="replay",
        fault_plan=FaultPlan("replay", t, lambda: StaleEchoBehavior(frozen_state={})),
        description=f"{t} objects echo stale genuine states (the proofs' adversary)",
    ),
)
register_scenario(
    "fabricate",
    lambda t: Scenario(
        name="fabricate",
        fault_plan=FaultPlan("fabricate", t, lambda: FabricatingBehavior()),
        description=f"{t} objects fabricate inflated timestamps",
    ),
)
register_scenario(
    "rolling-restart",
    lambda t: Scenario(
        name="rolling-restart",
        # Every object of the default 2t+1 crash-family layout restarts
        # once, in index order: s_i crashes after its (3 + (i-1)·6)-th
        # delivery and rejoins from its journal two deliveries later.  The
        # stagger keeps at most t machines down at once, so the plan is
        # legal despite touching more than t objects over the run.
        fault_plan=FaultPlan(
            "rolling-restart",
            2 * t + 1,
            lambda: RollingRestart(base=3, stagger=6, rejoin_after=2),
            overfault=True,
        ),
        description="crash-recover every object in sequence (staggered restarts)",
        requires_durability=True,
    ),
)
register_scenario(
    "crash-storm",
    lambda t: Scenario(
        name="crash-storm",
        # One machine stuck in a crash-recover loop: three crashes, each
        # after two honest deliveries, each dark for one delivery.
        fault_plan=FaultPlan(
            "crash-storm",
            1,
            lambda: Flap(survive_messages=2, rejoin_after=1, cycles=3),
        ),
        description="repeated crash-recover cycles on one object",
        requires_durability=True,
    ),
)


def standard_scenarios(t: int) -> list[Scenario]:
    """The scenario sweep used by tests and the latency benchmarks.

    Four adversary regimes beyond fault-free: crash, silent, replay
    (stale-echo — the adversary class of the paper's proofs), and
    fabrication (the unauthenticated worst case).
    """
    return [get_scenario(name, t) for name in _STANDARD_ORDER]


def freeze_stale_echo(servers: list[ObjectServer], behaviors: Mapping[ProcessId, FaultBehavior]) -> None:
    """Re-freeze stale-echo behaviours at the objects' *current* states.

    ``standard_scenarios`` builds :class:`StaleEchoBehavior` with an empty
    frozen state (objects echo their pristine initial state).  Call this
    after some writes have landed to model "echo an old-but-genuine state"
    instead of "echo ⊥".
    """
    for pid, behavior in behaviors.items():
        if isinstance(behavior, StaleEchoBehavior):
            server = next(s for s in servers if s.pid == pid)
            behavior.__init__(server.snapshot())  # re-freeze in place
