"""Named benchmark scenarios: fault mixes and schedule shapes.

The latency-matrix experiment (E6) runs every protocol under every scenario
here; tests reuse them so benchmark configurations stay covered by the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.faults.adversary import CrashAt, SilentBehavior
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.sim.process import FaultBehavior, ObjectServer
from repro.types import ProcessId, object_id


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Which objects misbehave and how.

    ``maker`` builds a fresh behaviour per object (behaviours can be
    stateful); ``count`` says how many of the lowest-indexed objects get
    one.  ``count`` must stay within the system's ``t`` — scenarios model
    legal adversaries, not over-threshold demolition (tests cover that
    separately).
    """

    name: str
    count: int
    maker: Callable[[], FaultBehavior] | None

    def behaviors(self, t: int) -> Mapping[ProcessId, FaultBehavior]:
        """Materialize behaviours for a system with threshold ``t``."""
        if self.maker is None or self.count == 0:
            return {}
        how_many = min(self.count, t)
        return {object_id(i + 1): self.maker() for i in range(how_many)}


@dataclass(frozen=True, slots=True)
class Scenario:
    """A fault plan plus workload shape."""

    name: str
    fault_plan: FaultPlan
    read_fraction: float = 0.6
    spacing: int = 25
    description: str = ""


def standard_scenarios(t: int) -> list[Scenario]:
    """The scenario sweep used by tests and the latency benchmarks.

    Four adversary regimes: fault-free, crash, replay (stale-echo — the
    adversary class of the paper's proofs), and fabrication (the
    unauthenticated worst case).
    """
    return [
        Scenario(
            name="fault-free",
            fault_plan=FaultPlan("none", 0, None),
            description="synchronous, all objects correct",
        ),
        Scenario(
            name="crash",
            fault_plan=FaultPlan("crash", t, lambda: CrashAt(survive_messages=3)),
            description=f"{t} objects crash after a few messages",
        ),
        Scenario(
            name="silent",
            fault_plan=FaultPlan("silent", t, lambda: SilentBehavior()),
            description=f"{t} objects silent from the start",
        ),
        Scenario(
            name="replay",
            fault_plan=FaultPlan(
                "replay", t, lambda: StaleEchoBehavior(frozen_state={})
            ),
            description=f"{t} objects echo stale genuine states (the proofs' adversary)",
        ),
        Scenario(
            name="fabricate",
            fault_plan=FaultPlan("fabricate", t, lambda: FabricatingBehavior()),
            description=f"{t} objects fabricate inflated timestamps",
        ),
    ]


def freeze_stale_echo(servers: list[ObjectServer], behaviors: Mapping[ProcessId, FaultBehavior]) -> None:
    """Re-freeze stale-echo behaviours at the objects' *current* states.

    ``standard_scenarios`` builds :class:`StaleEchoBehavior` with an empty
    frozen state (objects echo their pristine initial state).  Call this
    after some writes have landed to model "echo an old-but-genuine state"
    instead of "echo ⊥".
    """
    for pid, behavior in behaviors.items():
        if isinstance(behavior, StaleEchoBehavior):
            server = next(s for s in servers if s.pid == pid)
            behavior.__init__(server.snapshot())  # re-freeze in place
