"""Schedule witnesses: minimized, serializable, replayable refutations.

When the explorer finds a schedule whose history fails a consistency
check, the discovery is only as useful as its reproducibility.  A
:class:`ScheduleWitness` captures *everything* the violating run needs —
protocol, backend, sizes, fault configuration, the exact operation plans,
and the held links — as plain JSON-able data, so it

* **minimizes**: :func:`minimize_decisions` delta-debugs the held-link set
  down to a locally minimal one (every remaining link is necessary for the
  violation);
* **round-trips**: ``witness.to_json()`` → :meth:`ScheduleWitness.from_json`
  reconstructs an equal witness;
* **replays deterministically**: :meth:`ScheduleWitness.replay` re-executes
  the schedule through :func:`repro.explore.engine.run_schedule`; the
  stored wire-trace fingerprint lets :meth:`reproduces` assert the replay
  is byte-identical to the original discovery, not merely "also failing".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.explore.controlled import (
    Decision,
    HoldLink,
    canonical_links,
    decision_from_json,
)
from repro.explore.engine import ScheduleOutcome, ScheduleProbe, run_schedule
from repro.faults.schedules import PlannedSkip
from repro.workloads.generator import OperationPlan

#: Bump when the witness JSON layout changes incompatibly.
WITNESS_VERSION = 1


def minimize_decisions(
    probe: ScheduleProbe,
    decisions: tuple[Decision, ...],
    outcome: ScheduleOutcome,
) -> tuple[tuple[Decision, ...], ScheduleOutcome, int]:
    """Delta-debug ``decisions`` to a minimal set still failing the same checks.

    Greedy one-at-a-time removal to a fixed point (ddmin's final phase;
    hold sets are small, so the quadratic pass is the whole algorithm): a
    decision — held link or fault trigger alike — is dropped whenever the
    remaining set still fails every check the original schedule failed.
    Returns the minimal set, its outcome, and the number of extra schedule
    executions spent.
    """
    target = {name for name, _ in outcome.failures}
    current = list(canonical_links(decisions))
    best = outcome
    runs = 0
    shrunk = True
    while shrunk:
        shrunk = False
        for link in list(current):
            trial = tuple(x for x in current if x != link)
            candidate = run_schedule(probe.with_decisions(trial))
            runs += 1
            if target <= {name for name, _ in candidate.failures}:
                current = list(trial)
                best = candidate
                shrunk = True
    return tuple(current), best, runs


@dataclass(slots=True)
class ScheduleWitness:
    """A violating schedule, self-contained and replayable.

    ``decisions`` is the (minimized) held-link set; ``discovered`` is the
    raw set the frontier first found (kept for audit — it shows how much
    delta-debugging removed).  ``failures`` and ``trace_hash`` pin the
    violation and the exact wire trace the replay must reproduce.
    """

    probe: ScheduleProbe
    decisions: tuple[Decision, ...]
    discovered: tuple[Decision, ...]
    failures: tuple[tuple[str, str], ...]
    trace_hash: str
    version: int = WITNESS_VERSION

    @classmethod
    def from_exploration(
        cls,
        probe: ScheduleProbe,
        decisions: tuple[Decision, ...],
        discovered: tuple[Decision, ...],
        outcome: ScheduleOutcome,
    ) -> "ScheduleWitness":
        return cls(
            probe=probe.with_decisions(decisions),
            decisions=canonical_links(decisions),
            discovered=canonical_links(discovered),
            failures=outcome.failures,
            trace_hash=outcome.trace_hash,
        )

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def replay(self) -> ScheduleOutcome:
        """Re-execute the witnessed schedule and return the fresh outcome."""
        return run_schedule(self.probe.with_decisions(self.decisions))

    def reproduces(self, outcome: ScheduleOutcome | None = None) -> bool:
        """Whether the replay reproduces the recorded violation exactly.

        "Exactly" means the same checks fail with the same explanations
        *and* the wire trace fingerprint matches — i.e. the re-executed
        schedule is the byte-identical run, not a coincidental failure.
        """
        if outcome is None:
            outcome = self.replay()
        return outcome.failures == self.failures and outcome.trace_hash == self.trace_hash

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        probe = self.probe
        for plan in probe.plans:
            if not isinstance(plan.value, (str, int, float, bool, type(None))):
                # JSON would silently mutate the value (tuple → list, …), so
                # the loaded witness would replay a *different* schedule and
                # fail its byte-identical trace check.  Refuse loudly.
                raise ConfigurationError(
                    f"witness plans must carry JSON-primitive values to "
                    f"round-trip; got {plan.value!r} ({type(plan.value).__name__})"
                )
        return {
            "version": self.version,
            "protocol": probe.protocol,
            "protocol_kwargs": {key: value for key, value in probe.protocol_kwargs},
            "backend": probe.backend,
            "t": probe.t,
            "S": probe.S,
            "n_readers": probe.n_readers,
            "n_writers": probe.n_writers,
            "keys": list(probe.keys),
            "allow_overfault": probe.allow_overfault,
            "scenario": probe.scenario,
            "fault_groups": [
                {
                    "fault": group.fault,
                    "count": group.count,
                    "strict": group.strict,
                    "kwargs": {key: value for key, value in group.kwargs},
                }
                for group in probe.fault_groups
            ],
            "schedule": [
                {
                    "op": skip.op,
                    "objects": list(skip.objects),
                    "round_no": skip.round_no,
                    "withhold_replies": skip.withhold_replies,
                }
                for skip in probe.schedule
            ],
            "plans": [
                {
                    "kind": plan.kind,
                    "client_index": plan.client_index,
                    "value": plan.value,
                    "at": plan.at,
                    "key": plan.key,
                }
                for plan in probe.plans
            ],
            "checks": list(probe.checks),
            "granularity": probe.granularity,
            "max_events": probe.max_events,
            "engine": probe.engine,
            "durability": probe.durability,
            "repairs": [[member, at] for member, at in probe.repairs],
            "spares": probe.spares,
            "xfer_quorum": probe.xfer_quorum,
            "consistency": probe.consistency,
            "observe": probe.observe,
            "decisions": [link.to_json() for link in self.decisions],
            "discovered": [link.to_json() for link in self.discovered],
            "failures": [list(pair) for pair in self.failures],
            "trace_hash": self.trace_hash,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScheduleWitness":
        from repro.api.cluster import _FaultGroup

        version = data.get("version")
        if version != WITNESS_VERSION:
            raise ConfigurationError(
                f"unsupported witness version {version!r} (this build reads "
                f"version {WITNESS_VERSION})"
            )
        # Fault triggers are tagged ["fault", obj, at]; every untagged
        # entry is a held link, so pre-timing witnesses load unchanged.
        decisions = tuple(decision_from_json(entry) for entry in data["decisions"])
        probe = ScheduleProbe(
            protocol=data["protocol"],
            protocol_kwargs=tuple(sorted(data.get("protocol_kwargs", {}).items())),
            t=data["t"],
            S=data["S"],
            n_readers=data["n_readers"],
            n_writers=data.get("n_writers", 1),
            keys=tuple(data.get("keys", ())),
            backend=data.get("backend", "single"),
            allow_overfault=data.get("allow_overfault", False),
            scenario=data.get("scenario"),
            fault_groups=tuple(
                _FaultGroup(
                    fault=group["fault"],
                    count=group["count"],
                    strict=group.get("strict", False),
                    kwargs=tuple(sorted(group.get("kwargs", {}).items())),
                )
                for group in data.get("fault_groups", ())
            ),
            schedule=tuple(
                PlannedSkip(
                    op=skip["op"],
                    objects=tuple(skip["objects"]),
                    round_no=skip.get("round_no"),
                    withhold_replies=skip.get("withhold_replies", False),
                )
                for skip in data.get("schedule", ())
            ),
            plans=tuple(
                OperationPlan(
                    kind=plan["kind"],
                    client_index=plan["client_index"],
                    value=plan["value"],
                    at=plan["at"],
                    key=plan.get("key"),
                )
                for plan in data["plans"]
            ),
            checks=tuple(data["checks"]),
            granularity=data.get("granularity", "operation"),
            decisions=decisions,
            max_events=data.get("max_events", 200_000),
            engine=data.get("engine", "event"),
            # Absent means the crash-stop objects every pre-durability
            # witness was recorded against, so the corpus stays replayable.
            durability=data.get("durability", "none"),
            # Absent means the static membership every pre-reconfig witness
            # was recorded against.
            repairs=tuple(
                (int(member), int(at)) for member, at in data.get("repairs", ())
            ),
            spares=data.get("spares"),
            xfer_quorum=data.get("xfer_quorum"),
            # Absent means the atomic reads every pre-spectrum witness was
            # recorded against.
            consistency=data.get("consistency", "atomic"),
            # Absent means unobserved — the only mode pre-obs witnesses had.
            observe=data.get("observe", False),
        )
        return cls(
            probe=probe,
            decisions=decisions,
            discovered=tuple(
                decision_from_json(entry) for entry in data.get("discovered", ())
            ),
            failures=tuple(
                (check, explanation) for check, explanation in data["failures"]
            ),
            trace_hash=data["trace_hash"],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2, ensure_ascii=False)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleWitness":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the witness JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ScheduleWitness":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def describe(self) -> str:
        holds = ", ".join(link.describe() for link in self.decisions) or "∅"
        checks = ", ".join(f"{check}: {explanation}" for check, explanation in self.failures)
        return (
            f"{self.probe.protocol} under {{{holds}}} violates {checks} "
            f"(trace {self.trace_hash})"
        )
