"""Bounded schedule exploration: certify or refute a protocol over schedules.

The paper's lower bounds are adversarial *schedule* arguments — the
adversary picks which messages stay in transit.  This engine turns that
argument executable in the other direction: given a protocol, workload and
fault configuration (one :class:`ScheduleProbe`), it systematically
enumerates held-link schedules (:class:`~repro.explore.controlled.HoldLink`
sets), runs every schedule through the existing simulator via
:class:`~repro.explore.controlled.ControlledDelivery`, and checks each
recorded history with the registered consistency checkers.  The result is a
*bounded model check*: within the configured bounds either every schedule
passes (the configuration is **certified**) or a violating schedule is
found, minimized, and emitted as a replayable
:class:`~repro.explore.witness.ScheduleWitness`.

Search space and reductions
---------------------------

A schedule is a set of held links; the frontier explores supersets
breadth- or depth-first up to ``max_holds`` links.  Two reductions keep the
space small:

* **sleep-set pruning** — a link that carried no delivered message in the
  parent run cannot change the run when held, so only *delivered* links are
  branched on (commutative "hold a silent link" moves are never explored);
* **transcript hashing** — every run is fingerprinted over its full wire
  trace; a schedule whose trace equals an earlier one is a duplicate (its
  extra decisions matched no messages), so it is neither re-checked nor
  expanded — any continuation is reachable from the earlier twin;
* **symmetry reduction** (opt-in) — fault-free objects of one protocol are
  interchangeable, so hold sets that differ only by a permutation of those
  objects are explored once, through a canonical representative.

With ``fault_timing=True`` the decision vocabulary grows beyond held
links: for every faulted object the explorer also sweeps *when* that
object's behaviour fires (:class:`~repro.explore.controlled.FaultTrigger`,
realized by rebuilding the behaviour as a
:class:`~repro.faults.timing.TimedFault`).  Trigger points are per-object
handled-message counts discovered from each parent run's
:attr:`ScheduleOutcome.fault_counts`, so the swept range grows exactly
with the traffic the schedule actually produced — the same discovery rule
held links use.

Violating schedules are not expanded either: a superset of a violating
hold set wires the same witness with more noise.

Determinism: probes are evaluated in *waves* (the whole frontier for BFS,
single nodes for DFS) and every wave is mapped either in-process or over
the PR-2 process pool, so ``parallel=True`` yields byte-identical
:meth:`ExploreResult.to_dict` output.
"""

from __future__ import annotations

import pickle
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.api.backends import BackendRequest, get_backend_spec
from repro.api.registry import get_spec
from repro.errors import ConfigurationError, SimulationError
from repro.explore.controlled import (
    GRANULARITIES,
    ControlledDelivery,
    Decision,
    FaultTrigger,
    HoldLink,
    canonical_decisions,
    canonical_links,
)
from repro.faults.schedules import PlannedSkip
from repro.sim.network import DeliveryPolicy
from repro.sim.simulator import OperationStatus
from repro.sim.tracing import trace_fingerprint
from repro.types import scoped_operation_serials
from repro.workloads.generator import OperationPlan

#: Frontier strategies: breadth-first (waves) or depth-first (stack).
STRATEGIES = ("bfs", "dfs")


# --------------------------------------------------------------------- #
# Probes: one schedule execution as plain data
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class ScheduleProbe:
    """Everything one schedule run needs, as picklable plain data.

    A probe is to the explorer what :class:`~repro.api.cluster.TrialSpec`
    is to the trial engine: the pure-data boundary that lets schedule
    evaluations fan out over a process pool with byte-identical results.
    ``decisions`` is the only field the frontier varies; everything else is
    the fixed configuration under test.
    """

    protocol: str
    protocol_kwargs: tuple[tuple[str, Any], ...]
    t: int
    S: int | None
    n_readers: int
    n_writers: int
    keys: tuple[str, ...]
    backend: str
    allow_overfault: bool
    scenario: str | None
    fault_groups: tuple[Any, ...]  # cluster._FaultGroup entries
    schedule: tuple[PlannedSkip, ...]
    plans: tuple[OperationPlan, ...]
    checks: tuple[str, ...]
    granularity: str = "operation"
    #: The schedule under test: held links plus fault triggers, in the
    #: canonical decision order (holds first).  Triggers are applied to the
    #: object behaviours, holds to the delivery policy.
    decisions: tuple[Decision, ...] = ()
    max_events: int = 200_000
    #: Simulation engine schedules are evaluated on.  Both engines produce
    #: byte-identical outcomes (same failures, same events count, same wire
    #: trace fingerprint), so certificates and witnesses transfer.
    engine: str = "event"
    #: Durability seam the probed systems persist through.  With a
    #: crash-recover fault configured, every held link shifts which
    #: operation's messages land in the dark window — recovery *timing*
    #: is an ordinary explorer choice point, so stale-rejoin violations
    #: minimize to witnesses and clean sweeps certify the configuration.
    durability: str = "none"
    #: Membership-repair steps for the reconfig backend.  Repairs are
    #: client operations, so their transfer/install messages enter the
    #: hold alphabet like any others — epoch-transition timing relative to
    #: client rounds is an ordinary explorer choice point.
    repairs: tuple[tuple[int, int], ...] = ()
    spares: int | None = None
    xfer_quorum: int | None = None
    #: Consistency model the probed backend serves.  A ``k-atomic(N)``
    #: probe runs the bounded-lag read view, so the explorer can certify
    #: or refute staleness-bound claims schedule by schedule — checks like
    #: ``k-atomic(1)`` dispatch through the same registry as any other.
    consistency: str = "atomic"
    #: Observability: probed systems arm the span-layer clocks (see
    #: :mod:`repro.obs`).  Purely additive bookkeeping, so outcomes and
    #: trace fingerprints are unchanged either way.
    observe: bool = False

    def backend_request(self) -> BackendRequest:
        return BackendRequest(
            t=self.t,
            S=self.S,
            n_readers=self.n_readers,
            n_writers=self.n_writers,
            keys=self.keys,
            allow_overfault=self.allow_overfault,
            protocol_kwargs=self.protocol_kwargs,
            engine=self.engine,
            durability=self.durability,
            repairs=self.repairs,
            spares=self.spares,
            xfer_quorum=self.xfer_quorum,
            consistency=self.consistency,
            observe=self.observe,
        )

    def with_decisions(self, decisions: Sequence[Decision]) -> "ScheduleProbe":
        return replace(self, decisions=canonical_decisions(decisions))


@dataclass(frozen=True, slots=True)
class ScheduleOutcome:
    """What one explored schedule produced (picklable, deterministic).

    ``failures`` are the failed consistency checks as ``(check,
    explanation)`` pairs; ``expansions`` are the links that carried
    delivered traffic (the frontier's branching alphabet);
    ``trace_hash`` fingerprints the full wire trace (the partial-order
    reduction key, and the replay-equality oracle for witnesses).
    """

    decisions: tuple[Decision, ...]
    failures: tuple[tuple[str, str], ...]
    passed: tuple[str, ...]
    completed: int
    incomplete: int
    dropped: int
    held_messages: int
    events: int
    truncated: bool
    trace_hash: str
    expansions: tuple[HoldLink, ...]
    #: Per faulted object, how many messages it handled this run — the
    #: discovery set for fault-timing choice points: a trigger at any
    #: ``0..seen`` is a distinct adversary within this schedule's traffic.
    #: Empty for fault-free and scenario-driven probes.
    fault_counts: tuple[tuple[int, int], ...] = ()

    @property
    def violating(self) -> bool:
        return bool(self.failures)

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "decisions": [link.to_json() for link in self.decisions],
            "failures": [list(pair) for pair in self.failures],
            "passed": list(self.passed),
            "completed": self.completed,
            "incomplete": self.incomplete,
            "dropped": self.dropped,
            "held_messages": self.held_messages,
            "events": self.events,
            "truncated": self.truncated,
            "trace_hash": self.trace_hash,
        }
        if self.fault_counts:
            # New key, only for fault-carrying probes: fault-free outcomes
            # keep the exact pre-timing payload.
            payload["fault_counts"] = [list(pair) for pair in self.fault_counts]
        return payload


#: The PoR + replay-equality key (public home: :mod:`repro.sim.tracing`).
_fingerprint = trace_fingerprint


def _base_policy(probe: ScheduleProbe) -> DeliveryPolicy | None:
    """The policy beneath the explorer's holds: scenario + planned skips.

    Delegates to the trial engine's resolver so explored schedules run on
    exactly the fabric a :meth:`Cluster.run` trial of the same
    configuration would.
    """
    from repro.api.cluster import resolve_trial_policy

    return resolve_trial_policy(probe.scenario, probe.t, probe.schedule)


def _apply_fault_triggers(
    probe: ScheduleProbe,
    behaviors: dict[Any, Any],
    triggers: Sequence[FaultTrigger],
) -> None:
    """Rebuild each triggered object's behaviour as a timed variant.

    Triggers address faulted objects by index; the behaviour is rebuilt
    from its fault group with the group's own timing knobs dropped — the
    trigger is the single source of truth for *when* (an explicit
    ``timed`` group's facade-scheduled ``at`` is overridden the same way).
    """
    if not triggers:
        return
    from repro.api.faults import fault_spec
    from repro.faults.timing import timed_fault

    if probe.scenario is not None:
        raise ConfigurationError(
            "fault triggers address named fault groups; scenario-driven "
            "fault plans schedule their own timing"
        )
    # _materialize_behaviors assigns group members to objects s1, s2, …
    # sequentially (clamping the tail), so faulted index i belongs to the
    # i-th expanded group entry.
    expansion = [group for group in probe.fault_groups for _ in range(group.count)]
    by_index = {pid.index: pid for pid in behaviors}
    for trigger in triggers:
        pid = by_index.get(trigger.obj)
        if pid is None:
            raise ConfigurationError(
                f"{trigger.describe()} addresses s{trigger.obj}, which "
                "carries no fault behaviour"
            )
        group = expansion[trigger.obj - 1]
        spec = fault_spec(group.fault)
        kwargs = dict(group.kwargs)
        if spec.name == "timed":
            inner = kwargs.pop("inner")
            kwargs.pop("at", None)
            behaviors[pid] = timed_fault(inner, trigger.at, **kwargs)
        else:
            for knob in spec.timing:
                kwargs.pop(knob, None)
            behaviors[pid] = timed_fault(spec.name, trigger.at, **kwargs)


def run_schedule(probe: ScheduleProbe) -> ScheduleOutcome:
    """Execute one schedule described by ``probe`` and return its outcome.

    Pure with respect to the probe (same probe ⇒ same outcome, in-process
    or on a pool worker): the system is built fresh, operation serials are
    scoped, and the fault behaviours are materialized per run.
    """
    from repro.api.cluster import _materialize_behaviors, run_check

    holds = tuple(d for d in probe.decisions if isinstance(d, HoldLink))
    triggers = tuple(d for d in probe.decisions if isinstance(d, FaultTrigger))
    with scoped_operation_serials():
        behaviors = _materialize_behaviors(
            probe.scenario, probe.fault_groups, probe.t, probe.allow_overfault
        )
        _apply_fault_triggers(probe, behaviors, triggers)
        policy = ControlledDelivery(
            holds=holds,
            base=_base_policy(probe),
            granularity=probe.granularity,
        )
        backend = get_backend_spec(probe.backend).build(
            get_spec(probe.protocol), probe.backend_request(), behaviors, policy
        )
        # A held schedule may block a client forever; that client's later
        # planned invocations are then dropped (a legal partial run), not a
        # sequential-client model violation.
        backend.simulator.skip_busy_invocations = True
        for plan in probe.plans:
            backend.schedule(plan)
        truncated = False
        try:
            events = backend.run(max_events=probe.max_events)
        except SimulationError:
            # Budget exhausted: the prefix executed so far is still a legal
            # partial run (undelivered messages are "in transit"), so the
            # checks below stay meaningful — but certification must not
            # claim coverage of the truncated continuations.
            events = probe.max_events
            truncated = True
        histories = backend.histories()
        failures: list[tuple[str, str]] = []
        passed: list[str] = []
        for name in probe.checks:
            verdict = run_check(name, histories)
            if verdict.ok:
                passed.append(name)
            else:
                failures.append((name, verdict.explanation or "check failed"))
        operations = backend.simulator.operations
        completed = sum(
            1 for op in operations if op.status is OperationStatus.COMPLETE
        )
        dropped = sum(
            1 for op in operations if op.status is OperationStatus.ABORTED
        )
        fault_counts: tuple[tuple[int, int], ...] = ()
        if probe.fault_groups and probe.scenario is None:
            fault_counts = tuple(sorted(
                (server.pid.index, server.messages_seen)
                for server in backend.simulator.objects.values()
                if server.behavior is not None
            ))
        return ScheduleOutcome(
            decisions=probe.decisions,
            failures=tuple(failures),
            passed=tuple(passed),
            completed=completed,
            incomplete=len(operations) - completed - dropped,
            dropped=dropped,
            held_messages=policy.held_messages,
            events=events,
            truncated=truncated,
            trace_hash=_fingerprint(backend.trace),
            expansions=policy.delivered_links,
            fault_counts=fault_counts,
        )


# --------------------------------------------------------------------- #
# Exploration results
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class ExploreStats:
    """Counters describing how the frontier was traversed and pruned."""

    explored: int = 0
    violating: int = 0
    pruned_duplicate: int = 0  # transcript-hash twins (PoR)
    pruned_seen: int = 0       # child decision sets already enqueued
    pruned_inactive: int = 0   # sleep-set: known links with no traffic here
    pruned_symmetry: int = 0   # children folded onto a canonical relabeling
    truncated_runs: int = 0
    deepest: int = 0
    minimization_runs: int = 0

    def to_dict(self) -> dict[str, int]:
        payload = {
            "explored": self.explored,
            "violating": self.violating,
            "pruned_duplicate": self.pruned_duplicate,
            "pruned_seen": self.pruned_seen,
            "pruned_inactive": self.pruned_inactive,
            "truncated_runs": self.truncated_runs,
            "deepest": self.deepest,
            "minimization_runs": self.minimization_runs,
        }
        if self.pruned_symmetry:
            # Only symmetry-reduced explorations carry the key, so every
            # pre-existing payload stays byte-identical.
            payload["pruned_symmetry"] = self.pruned_symmetry
        return payload


@dataclass(slots=True)
class ExploreResult:
    """Outcome of a bounded exploration: verdict, witnesses, pruning stats.

    ``certified`` is True only when the frontier was *exhausted* within the
    bounds, no run was truncated by the event budget, and no schedule
    violated — i.e. every reachable schedule with at most ``max_holds``
    held links passed every requested check.
    """

    protocol: str
    backend: str
    t: int
    S: int
    n_readers: int
    faults: str
    checks: tuple[str, ...]
    granularity: str
    strategy: str
    max_holds: int
    max_schedules: int
    max_events: int
    engine: str = "event"
    durability: str = "none"
    #: Whether fault-trigger choice points were swept (the ``alphabet``
    #: then counts held links *and* trigger points).
    fault_timing: bool = False
    #: Whether interchangeable fault-free objects were folded onto
    #: canonical representatives.
    symmetry: bool = False
    alphabet: int = 0
    exhausted: bool = False
    stats: ExploreStats = field(default_factory=ExploreStats)
    witnesses: list[Any] = field(default_factory=list)  # ScheduleWitness

    @property
    def violations(self) -> int:
        return len(self.witnesses)

    @property
    def certified(self) -> bool:
        return (
            self.exhausted
            and not self.witnesses
            and self.stats.truncated_runs == 0
        )

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "protocol": self.protocol,
            "backend": self.backend,
            "engine": self.engine,
            "durability": self.durability,
            "t": self.t,
            "S": self.S,
            "n_readers": self.n_readers,
            "faults": self.faults,
            "checks": list(self.checks),
            "granularity": self.granularity,
            "strategy": self.strategy,
            "bounds": {
                "max_holds": self.max_holds,
                "max_schedules": self.max_schedules,
                "max_events": self.max_events,
            },
            "alphabet": self.alphabet,
            "exhausted": self.exhausted,
            "certified": self.certified,
            "stats": self.stats.to_dict(),
            "witnesses": [witness.to_dict() for witness in self.witnesses],
        }
        # New keys only when the new machinery was on: default-off payloads
        # stay byte-identical to the pre-timing schema.
        if self.fault_timing:
            payload["fault_timing"] = True
        if self.symmetry:
            payload["symmetry"] = True
        return payload

    def render(self) -> str:
        """Human-readable summary, ready to print."""
        engine_tag = "" if self.engine == "event" else f", engine={self.engine}"
        if self.durability != "none":
            engine_tag += f", durability={self.durability}"
        mode_tag = ""
        if self.fault_timing:
            mode_tag += ", fault-timing"
        if self.symmetry:
            mode_tag += ", symmetry"
        unit = "decision(s)" if self.fault_timing else "link(s)"
        lines = [
            f"explore {self.protocol} [{', '.join(self.checks)}] — "
            f"t={self.t}, S={self.S}, {self.n_readers} readers{engine_tag}, "
            f"faults: {self.faults}",
            f"  strategy={self.strategy}, granularity={self.granularity}"
            f"{mode_tag}, bounds: max_holds={self.max_holds}, "
            f"max_schedules={self.max_schedules}, max_events={self.max_events}",
            f"  explored {self.stats.explored} schedule(s) over "
            f"{self.alphabet} {unit}, deepest hold set: {self.stats.deepest}",
            f"  pruning: {self.stats.pruned_duplicate} duplicate trace(s), "
            f"{self.stats.pruned_seen} re-enqueued set(s), "
            f"{self.stats.pruned_inactive} inactive link(s)"
            + (f", {self.stats.pruned_symmetry} symmetric set(s)"
               if self.stats.pruned_symmetry else "")
            + (f", {self.stats.truncated_runs} truncated run(s)"
               if self.stats.truncated_runs else ""),
        ]
        if self.witnesses:
            lines.append(f"  VIOLATIONS: {len(self.witnesses)} "
                         f"(from {self.stats.violating} violating schedule(s), "
                         f"{self.stats.minimization_runs} minimization run(s))")
            for index, witness in enumerate(self.witnesses, start=1):
                holds = ", ".join(link.describe() for link in witness.decisions)
                check, explanation = witness.failures[0]
                lines.append(f"   [{index}] hold {{{holds}}} ⇒ {check}: {explanation}")
        else:
            if self.certified:
                verdict = "CERTIFIED"
            elif self.stats.truncated_runs:
                verdict = (
                    f"no violation found ({self.stats.truncated_runs} run(s) "
                    "truncated by max_events — raise it to certify)"
                )
            else:
                verdict = "no violation found (bounds not exhausted)"
            lines.append(f"  {verdict}: every explored schedule passed "
                         f"{', '.join(self.checks)}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# The explorer
# --------------------------------------------------------------------- #


class Explorer:
    """Frontier search over held-link schedules for one probe configuration.

    Args:
        probe: the configuration under test (its ``decisions`` must be
            empty — the explorer owns that field).
        max_holds: most links a schedule may hold (frontier depth).
        max_schedules: total schedule budget ("max reorderings").
        strategy: ``"bfs"`` (waves, default) or ``"dfs"`` (stack).
        minimize: delta-debug each violating hold set down to a minimal one
            before emitting its witness.
        stop_on_violation: stop the search at the first violating schedule
            (refutation mode); by default the bounded space is swept fully
            (certification mode).
        fault_timing: also sweep *when* each configured fault fires —
            fault triggers join held links in the decision vocabulary
            (ignored for scenario-driven and fault-free probes, whose
            timing is owned by the scenario / vacuous).
        symmetry: fold hold sets that differ only by a permutation of the
            interchangeable (fault-free) objects onto one canonical
            representative.  Only sound when nothing else distinguishes
            those objects, so it is ignored for scenario, planned-schedule,
            repair and spare-carrying probes.
    """

    def __init__(
        self,
        probe: ScheduleProbe,
        *,
        max_holds: int = 2,
        max_schedules: int = 2_000,
        strategy: str = "bfs",
        minimize: bool = True,
        stop_on_violation: bool = False,
        fault_timing: bool = False,
        symmetry: bool = False,
    ) -> None:
        if probe.decisions:
            raise ConfigurationError("the explorer starts from the empty schedule")
        if probe.granularity not in GRANULARITIES:
            raise ConfigurationError(
                f"granularity must be one of {GRANULARITIES}, got {probe.granularity!r}"
            )
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if max_holds < 0 or max_schedules < 1:
            raise ConfigurationError("bounds must be positive")
        self.probe = probe
        self.max_holds = max_holds
        self.max_schedules = max_schedules
        self.strategy = strategy
        self.minimize = minimize
        self.stop_on_violation = stop_on_violation
        self.fault_timing = bool(
            fault_timing and probe.scenario is None and probe.fault_groups
        )
        self.symmetry = bool(
            symmetry
            and probe.scenario is None
            and not probe.repairs
            and not probe.schedule
            and probe.spares is None
        )
        self._relabel_from = 1
        if self.symmetry:
            from repro.api.cluster import _materialize_behaviors

            behaviors = _materialize_behaviors(
                probe.scenario, probe.fault_groups, probe.t, probe.allow_overfault
            )
            # Faulted objects occupy s1..s_f (consecutive by construction);
            # everything above is interchangeable.
            self._relabel_from = len(behaviors) + 1

    # ------------------------------------------------------------------ #
    # Symmetry reduction
    # ------------------------------------------------------------------ #

    def _canonicalize(self, decisions: tuple[Decision, ...]) -> tuple[Decision, ...]:
        """The canonical representative of ``decisions`` under permutations
        of the interchangeable (fault-free) objects.

        Per-object hold patterns on those objects are sorted and relabeled
        onto the smallest interchangeable indices; holds on faulted objects
        and fault triggers (which only ever address faulted objects) are
        left untouched.
        """
        fixed: list[Decision] = []
        movable: dict[int, list[HoldLink]] = {}
        for decision in decisions:
            if (
                isinstance(decision, HoldLink)
                and decision.obj >= self._relabel_from
            ):
                movable.setdefault(decision.obj, []).append(decision)
            else:
                fixed.append(decision)
        if not movable:
            return decisions
        patterns = sorted(
            tuple(sorted((hold.op, hold.round_no or 0) for hold in holds))
            for holds in movable.values()
        )
        relabeled: list[Decision] = []
        for slot, pattern in enumerate(patterns, start=self._relabel_from):
            for op, rnd in pattern:
                relabeled.append(
                    HoldLink(op=op, obj=slot, round_no=rnd or None)
                )
        return canonical_decisions(fixed + relabeled)

    # ------------------------------------------------------------------ #
    # Wave evaluation
    # ------------------------------------------------------------------ #

    def _evaluate(
        self,
        batch: list[tuple[Decision, ...]],
        parallel: bool,
        max_workers: int | None,
    ) -> list[ScheduleOutcome]:
        probes = [self.probe.with_decisions(decisions) for decisions in batch]
        if parallel and len(probes) > 1:
            from repro.api.cluster import _pool_map

            outcomes = _pool_map(probes, max_workers, fn=run_schedule)
            if outcomes is not None:
                return outcomes
        return [run_schedule(probe) for probe in probes]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def run(self, parallel: bool = False, max_workers: int | None = None) -> ExploreResult:
        """Sweep the bounded schedule space; returns the structured result."""
        if parallel:
            try:
                pickle.dumps(self.probe)
            except Exception as error:  # noqa: BLE001 — any failure disqualifies
                warnings.warn(
                    f"parallel exploration unavailable, falling back to serial: "
                    f"probe is not picklable ({error})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                parallel = False

        # The root runs first, alone and in-process: configuration errors
        # surface immediately, and its outcome seeds S (for reporting) and
        # the expansion alphabet.
        root_outcome = run_schedule(self.probe)
        result = self._result_shell()
        stats = result.stats
        violations: list[tuple[tuple[Decision, ...], ScheduleOutcome]] = []

        frontier: deque[tuple[Decision, ...]] = deque()
        seen: set[tuple[Decision, ...]] = {()}
        trace_seen: set[str] = set()
        alphabet: set[HoldLink] = set()
        # Triggers live in their own alphabet: mixing them into the link
        # set would corrupt the sleep-set arithmetic below, which only
        # reasons about delivered traffic.
        trigger_alphabet: set[FaultTrigger] = set()
        stop = False

        def enqueue(decisions: tuple[Decision, ...], extra: Decision) -> None:
            child = canonical_decisions(decisions + (extra,))
            if self.symmetry:
                canonical = self._canonicalize(child)
                if canonical != child:
                    stats.pruned_symmetry += 1
                    child = canonical
            if child in seen:
                stats.pruned_seen += 1
                return
            seen.add(child)
            frontier.append(child)

        def absorb(decisions: tuple[Decision, ...], outcome: ScheduleOutcome) -> None:
            nonlocal stop
            stats.explored += 1
            stats.deepest = max(stats.deepest, len(decisions))
            if outcome.truncated:
                stats.truncated_runs += 1
            duplicate = outcome.trace_hash in trace_seen
            if duplicate:
                # Transcript-hash PoR: an identical wire trace means the
                # extra decisions matched no messages — the run, its
                # verdicts, and all its continuations were already covered.
                stats.pruned_duplicate += 1
                return
            trace_seen.add(outcome.trace_hash)
            if outcome.violating:
                stats.violating += 1
                violations.append((decisions, outcome))
                if self.stop_on_violation:
                    stop = True
                return  # supersets of a violating hold set add only noise
            if len(decisions) >= self.max_holds:
                return
            active = set(outcome.expansions)
            stats.pruned_inactive += len(alphabet - active - set(decisions))
            alphabet.update(active)
            for link in outcome.expansions:
                if link in decisions:
                    continue
                enqueue(decisions, link)
            if self.fault_timing:
                # One trigger per object; the swept range is discovered
                # from this run's own traffic — ``at == seen`` is the
                # "fires after everything observed" representative.
                triggered = {
                    d.obj for d in decisions if isinstance(d, FaultTrigger)
                }
                for obj, seen_count in outcome.fault_counts:
                    if obj in triggered:
                        continue
                    for at in range(seen_count + 1):
                        trigger = FaultTrigger(obj=obj, at=at)
                        trigger_alphabet.add(trigger)
                        enqueue(decisions, trigger)

        absorb((), root_outcome)

        while frontier and not stop and stats.explored < self.max_schedules:
            if self.strategy == "dfs":
                batch = [frontier.pop()]
            else:
                budget = self.max_schedules - stats.explored
                batch = [frontier.popleft() for _ in range(min(budget, len(frontier)))]
            if parallel and len(batch) > 1:
                pairs = zip(batch, self._evaluate(batch, parallel, max_workers))
            else:
                # Serial: evaluate lazily so stop_on_violation (and the
                # schedule budget) cut the wave short without paying for
                # the unabsorbed tail.  Absorption order is identical to
                # the parallel path, so results stay byte-identical.
                pairs = (
                    (decisions, run_schedule(self.probe.with_decisions(decisions)))
                    for decisions in batch
                )
            for decisions, outcome in pairs:
                absorb(decisions, outcome)
                if stop:
                    break

        result.exhausted = not frontier and not stop and stats.explored <= self.max_schedules
        result.alphabet = len(alphabet) + len(trigger_alphabet)
        self._attach_witnesses(result, violations)
        return result

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #

    def _result_shell(self) -> ExploreResult:
        from repro.api.cluster import _materialize_behaviors

        behaviors = _materialize_behaviors(
            self.probe.scenario, self.probe.fault_groups,
            self.probe.t, self.probe.allow_overfault,
        )
        if behaviors:
            faults = ", ".join(
                f"{pid}:{behavior.describe()}"
                for pid, behavior in sorted(behaviors.items())
            )
        else:
            faults = "fault-free"
        if self.probe.schedule:
            faults += " + " + "; ".join(s.describe() for s in self.probe.schedule)
        backend = get_backend_spec(self.probe.backend)
        if self.probe.S is not None:
            size = self.probe.S
        else:
            # The protocol's resilience class gives the default object
            # count; no need to build (and discard) a whole live system
            # just to report it.
            size = get_spec(self.probe.protocol).min_size(self.probe.t)
        return ExploreResult(
            protocol=self.probe.protocol,
            backend=backend.name,
            engine=self.probe.engine,
            durability=self.probe.durability,
            t=self.probe.t,
            S=size,
            n_readers=self.probe.n_readers,
            faults=faults,
            checks=self.probe.checks,
            granularity=self.probe.granularity,
            strategy=self.strategy,
            max_holds=self.max_holds,
            max_schedules=self.max_schedules,
            max_events=self.probe.max_events,
            fault_timing=self.fault_timing,
            symmetry=self.symmetry,
        )

    def _attach_witnesses(
        self,
        result: ExploreResult,
        violations: list[tuple[tuple[Decision, ...], ScheduleOutcome]],
    ) -> None:
        from repro.explore.witness import ScheduleWitness, minimize_decisions

        emitted: set[tuple[tuple[Decision, ...], tuple[str, ...]]] = set()
        for decisions, outcome in violations:
            minimal, final_outcome = outcome.decisions, outcome
            if self.minimize:
                minimal, final_outcome, runs = minimize_decisions(
                    self.probe, decisions, outcome
                )
                result.stats.minimization_runs += runs
            key = (minimal, tuple(name for name, _ in final_outcome.failures))
            if key in emitted:
                continue  # two discoveries shrank to the same root cause
            emitted.add(key)
            result.witnesses.append(ScheduleWitness.from_exploration(
                self.probe, decisions=minimal, discovered=decisions,
                outcome=final_outcome,
            ))


def explore_probe(
    probe: ScheduleProbe,
    *,
    max_holds: int = 2,
    max_schedules: int = 2_000,
    strategy: str = "bfs",
    minimize: bool = True,
    stop_on_violation: bool = False,
    fault_timing: bool = False,
    symmetry: bool = False,
    parallel: bool = False,
    max_workers: int | None = None,
) -> ExploreResult:
    """Convenience wrapper: build an :class:`Explorer` and run it."""
    explorer = Explorer(
        probe,
        max_holds=max_holds,
        max_schedules=max_schedules,
        strategy=strategy,
        minimize=minimize,
        stop_on_violation=stop_on_violation,
        fault_timing=fault_timing,
        symmetry=symmetry,
    )
    return explorer.run(parallel=parallel, max_workers=max_workers)
