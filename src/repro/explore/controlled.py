"""Explorer-driven delivery: message transit as an explicit choice point.

The event-loop simulator is deterministic once a delivery policy is fixed,
so the only nondeterminism the paper's adversary actually owns is *which
messages stay (indefinitely) in transit*.  :class:`ControlledDelivery`
exposes that choice to the schedule explorer: every message on the wire is
mapped to a **link** — a :class:`HoldLink` — and the policy holds every
message of the links the explorer selected, exactly the way
:class:`~repro.faults.schedules.BlockSkipPolicy` /
:class:`~repro.faults.schedules.WithholdFrom` realize hand-written
adversarial schedules.  While a schedule runs, the policy also records
which links carried at least one delivered message: that set is the
explorer's *expansion alphabet* (holding a link that carried no traffic
cannot change the run, so such links are never branched on — the
sleep-set-style pruning of :mod:`repro.explore.engine`).

Two granularities are supported:

* ``"operation"`` (default) — a link is ``(operation, object)``; holding it
  cuts every message between the operation's client and the object, in both
  directions, across all rounds.  This is the block-skipping adversary of
  the paper's proofs ("round *rnd* of *op* skips block *B*") applied to the
  whole operation, and it keeps the decision alphabet small
  (|plans| × S links).
* ``"round"`` — a link is ``(operation, object, round)``; finer, closer to
  per-message control, with a correspondingly larger alphabet.  Links of
  rounds a protocol only enters under some schedules are *discovered* on
  the parent run (see the engine's expansion rule).

Operations are addressed by their **serial**, which under the trial
engine's :func:`repro.types.scoped_operation_serials` scope equals the
1-based position of the operation in the trial's schedule — the same
plan-addressing used by :class:`~repro.faults.schedules.PlannedSkip`.

Delivery is not the only choice the adversary owns: *fault timing* is the
second half of the decision vocabulary.  A :class:`FaultTrigger` defers
one faulted object's behaviour to an explicit per-object trigger point
(via :class:`~repro.faults.timing.TimedFault`), so "when does the crash /
freeze fire" is explored exactly like "which link stays in transit".  Both
decision kinds share one canonical order and one JSON wire form —
``[op, obj, round]`` for holds (the historical layout, so old witnesses
load unchanged) and ``["fault", obj, at]`` for triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.errors import ConfigurationError
from repro.sim.network import DeliveryPolicy, FifoDelivery, Message

#: The supported link granularities.
GRANULARITIES = ("operation", "round")


@dataclass(frozen=True, slots=True)
class HoldLink:
    """One unit of adversarial choice: a client↔object link to hold.

    ``op`` is the operation serial (1-based plan position under scoped
    serials), ``obj`` the 1-based storage-object index (``s_obj``), and
    ``round_no`` the round the hold is confined to — ``None`` holds every
    round of the operation (the ``"operation"`` granularity).
    """

    op: int
    obj: int
    round_no: int | None = None

    def __post_init__(self) -> None:
        if self.op < 1 or self.obj < 1:
            raise ConfigurationError(
                f"hold links are 1-based, got op={self.op}, obj={self.obj}"
            )
        if self.round_no is not None and self.round_no < 1:
            raise ConfigurationError(f"round numbers are 1-based, got {self.round_no}")

    @property
    def sort_key(self) -> tuple[int, int, int]:
        """Canonical ordering key (``round_no=None`` sorts first)."""
        return (self.op, self.obj, self.round_no or 0)

    def describe(self) -> str:
        suffix = "" if self.round_no is None else f" rnd{self.round_no}"
        return f"op{self.op}↔s{self.obj}{suffix}"

    def to_json(self) -> list:
        return [self.op, self.obj, self.round_no]

    @classmethod
    def from_json(cls, data: Sequence) -> "HoldLink":
        op, obj, round_no = data
        return cls(op=int(op), obj=int(obj),
                   round_no=None if round_no is None else int(round_no))


@dataclass(frozen=True, slots=True)
class FaultTrigger:
    """One unit of adversarial choice: *when* a fault fires.

    ``obj`` is the 1-based index of a faulted storage object; ``at`` is the
    number of messages the object handles honestly before its configured
    behaviour fires (``at=0`` fires on the first delivery — the
    facade-scheduled "active from the start" semantics of always-on
    behaviours).  The schedule engine realizes a trigger by wrapping the
    object's behaviour in :class:`~repro.faults.timing.TimedFault`.
    """

    obj: int
    at: int

    def __post_init__(self) -> None:
        if self.obj < 1:
            raise ConfigurationError(
                f"fault triggers are 1-based, got obj={self.obj}"
            )
        if self.at < 0:
            raise ConfigurationError(
                f"trigger points are non-negative, got at={self.at}"
            )

    @property
    def sort_key(self) -> tuple[int, int]:
        return (self.obj, self.at)

    def describe(self) -> str:
        return f"fire s{self.obj}@{self.at}"

    def to_json(self) -> list:
        return ["fault", self.obj, self.at]

    @classmethod
    def from_json(cls, data: Sequence) -> "FaultTrigger":
        kind, obj, at = data
        if kind != "fault":
            raise ConfigurationError(f"not a fault-trigger entry: {list(data)!r}")
        return cls(obj=int(obj), at=int(at))


#: The explorer's decision vocabulary: hold a link, or time a fault.
Decision = Union[HoldLink, FaultTrigger]


def decision_from_json(data: Sequence) -> Decision:
    """Decode one serialized decision (either vocabulary kind).

    Holds keep their historical ``[op, obj, round]`` all-numeric layout;
    triggers are tagged ``["fault", obj, at]`` — so every decision list in
    a pre-timing witness decodes exactly as before.
    """
    if data and data[0] == "fault":
        return FaultTrigger.from_json(data)
    return HoldLink.from_json(data)


def _decision_key(decision: Decision) -> tuple[int, int, int, int]:
    # Holds sort before triggers; within a kind, the dataclass key rules.
    if isinstance(decision, HoldLink):
        return (0, *decision.sort_key)
    return (1, *decision.sort_key, 0)


def canonical_links(links: Iterable[Decision]) -> tuple[Decision, ...]:
    """``links`` as a duplicate-free tuple in canonical order.

    Accepts the full decision vocabulary (the historical name is kept —
    every decision set the engine touches flows through here).
    """
    return tuple(sorted(set(links), key=_decision_key))


#: Vocabulary-accurate alias for :func:`canonical_links`.
canonical_decisions = canonical_links


class ControlledDelivery(DeliveryPolicy):
    """Delivery policy steered by an explorer-chosen set of held links.

    Messages whose link is in ``holds`` stay in transit indefinitely (the
    legitimate partial-run phenomenon, not message loss); everything else
    flows through ``base`` (unit-latency FIFO by default, or an adversarial
    policy such as a scenario's).  The policy keeps two observations the
    engine consumes after the run:

    * :attr:`delivered_links` — links that carried at least one delivered
      message (the expansion alphabet);
    * :attr:`held_messages` — how many messages the chosen holds caught.
    """

    def __init__(
        self,
        holds: Iterable[HoldLink] = (),
        base: DeliveryPolicy | None = None,
        granularity: str = "operation",
    ) -> None:
        if granularity not in GRANULARITIES:
            raise ConfigurationError(
                f"granularity must be one of {GRANULARITIES}, got {granularity!r}"
            )
        self.holds = frozenset(holds)
        for link in self.holds:
            if isinstance(link, FaultTrigger):
                raise ConfigurationError(
                    f"{link.describe()} is a fault-timing decision, not a "
                    "held link — the schedule engine applies it to the "
                    "object's behaviour, not the delivery policy"
                )
            if granularity == "operation" and link.round_no is not None:
                raise ConfigurationError(
                    f"link {link.describe()} names a round but granularity "
                    "is 'operation'"
                )
            if granularity == "round" and link.round_no is None:
                raise ConfigurationError(
                    f"link {link.describe()} has no round but granularity is 'round'"
                )
        self.base = base or FifoDelivery()
        self.granularity = granularity
        self._delivered: dict[HoldLink, int] = {}
        self.held_messages = 0

    @property
    def delivered_links(self) -> tuple[HoldLink, ...]:
        """Links that carried delivered traffic, in canonical order."""
        return canonical_links(self._delivered)

    def _link(self, message: Message) -> HoldLink | None:
        """The link ``message`` travels on, or None for client↔client."""
        endpoint = message.src if message.is_reply else message.dst
        if endpoint.role_value != "object":
            return None
        round_no = message.round_no if self.granularity == "round" else None
        return HoldLink(op=message.op.serial, obj=endpoint.index, round_no=round_no)

    def delay(self, message: Message, now: int) -> int | None:
        link = self._link(message)
        if link is None:
            return self.base.delay(message, now)
        if link in self.holds:
            self.held_messages += 1
            return None
        delay = self.base.delay(message, now)
        if delay is not None:
            # Only genuinely delivered traffic enters the expansion
            # alphabet: a link the *base* policy already holds (a scenario
            # policy, a planned skip) would branch into schedules whose
            # extra hold matches nothing — pure duplicate work.
            self._delivered[link] = self._delivered.get(link, 0) + 1
        return delay
