"""Systematic schedule exploration: a bounded model checker over deliveries.

The repo's other entry points *simulate one schedule*; this package
*searches the schedule space*.  In the spirit of robustness checkers
(Beillahi–Bouajjani–Enea) and the k-atomicity-verification line (Golab et
al.), it enumerates which client↔object links the adversary keeps "in
transit", runs every resulting schedule through the existing simulator and
consistency checkers, and either **certifies** a configuration over all
bounded schedules or **refutes** it with a minimized, replayable
:class:`ScheduleWitness`.

Three layers:

* :mod:`repro.explore.controlled` — :class:`ControlledDelivery`, the
  delivery policy that turns message transit into an explorer-driven
  choice point over :class:`HoldLink` decisions, plus the second half of
  the decision vocabulary: :class:`FaultTrigger`, which makes *fault
  timing* an explorer choice point as well;
* :mod:`repro.explore.engine` — :class:`ScheduleProbe` (plain-data
  schedule descriptions, pool-parallelizable like trial specs),
  :func:`run_schedule`, and the :class:`Explorer` frontier with sleep-set
  and transcript-hash partial-order reductions;
* :mod:`repro.explore.witness` — delta-debugged minimization plus JSON
  round-tripping and deterministic replay.

Entry points: :meth:`repro.api.Cluster.explore` and
``python -m repro explore`` / ``python -m repro replay``.
"""

from repro.explore.controlled import (
    ControlledDelivery,
    Decision,
    FaultTrigger,
    HoldLink,
    canonical_decisions,
    canonical_links,
    decision_from_json,
)
from repro.explore.engine import (
    Explorer,
    ExploreResult,
    ExploreStats,
    ScheduleOutcome,
    ScheduleProbe,
    explore_probe,
    run_schedule,
)
from repro.explore.witness import ScheduleWitness, minimize_decisions

__all__ = [
    "ControlledDelivery",
    "Decision",
    "FaultTrigger",
    "HoldLink",
    "canonical_decisions",
    "canonical_links",
    "decision_from_json",
    "Explorer",
    "ExploreResult",
    "ExploreStats",
    "ScheduleOutcome",
    "ScheduleProbe",
    "explore_probe",
    "run_schedule",
    "ScheduleWitness",
    "minimize_decisions",
]
