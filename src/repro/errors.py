"""Exception hierarchy for the ``repro`` library.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the whole family with one clause.  Errors are grouped by
subsystem: simulation, protocol, specification checking, and the lower-bound
construction engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters.

    Examples: a Byzantine register with ``S < 3t + 1`` objects when optimal
    resilience is required, a reader id outside the declared reader set, or a
    block partition whose sizes do not sum to ``S``.
    """


class SimulationError(ReproError):
    """The simulator reached an internal inconsistency.

    This signals a bug in the harness (e.g. an event scheduled in the past),
    never a legitimate protocol outcome.
    """


class ChannelError(SimulationError):
    """A message was sent over a nonexistent or closed channel."""


class ProtocolError(ReproError):
    """A protocol automaton observed something its specification forbids.

    Correct processes raise this when a reply is malformed beyond what the
    fault model allows (e.g. a reply to a round that was never started).
    """


class QuorumUnreachableError(ProtocolError):
    """An operation can never gather the reply set its quorum rule demands.

    Raised by the round engine when the set of objects that may still reply
    is provably too small to satisfy the round's termination predicate; this
    converts an infinite wait into a diagnosable failure.
    """


class OperationAbortedError(ProtocolError):
    """An in-flight operation was aborted by the harness (client crash)."""


class SpecificationError(ReproError):
    """A history handed to a checker is structurally ill-formed.

    For instance, a response without a matching invocation, or two concurrent
    operations issued by the same client (the model allows at most one
    outstanding operation per client).
    """


class StorageError(ReproError):
    """A stable-storage invariant was violated.

    Examples: appending to a store whose machine is crashed (frozen), or
    attaching a crash-recover fault to an object built without a durability
    seam (``durability="none"``).
    """


class ConstructionError(ReproError):
    """A lower-bound construction could not be carried out as scripted.

    Distinct from :class:`ConstructionEscape`: this signals misuse (wrong
    block partition, protocol with the wrong declared round counts), not a
    protocol legitimately evading the adversary.
    """


class ConstructionEscape(ReproError):
    """The target protocol escaped the lower-bound construction.

    The constructions of Propositions 1 and 2 apply only to protocols whose
    reads complete in two (resp. three) rounds on the reply sets the adversary
    offers.  A protocol that refuses to terminate a round (e.g. the 4-round
    transform) *escapes*; the exception records at which scripted step the
    escape happened, which is the executable face of bound tightness.
    """

    def __init__(self, step: str, reason: str) -> None:
        self.step = step
        self.reason = reason
        super().__init__(f"construction escaped at {step}: {reason}")
