"""Adversarial delivery schedules: block skipping and reply withholding.

The proofs say *"round rnd of operation op skips block B"*: no object in B
receives the round's invocation (and hence never replies to it), while every
other object receives it and replies.  On the event-loop simulator this is a
delivery policy that holds the matching invocation messages; held messages
stay "in transit", so a skipped round is a legitimate partial-run phenomenon,
not message loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Collection, Iterable

from repro.sim.network import DeliveryPolicy, FifoDelivery, Message
from repro.types import OperationId, ProcessId


@dataclass(frozen=True, slots=True)
class SkipRule:
    """Hold invocations of ``op`` round ``round_no`` aimed at ``objects``.

    ``round_no`` of ``None`` means every round of the operation.
    """

    op: OperationId
    objects: frozenset[ProcessId]
    round_no: int | None = None

    def matches(self, message: Message) -> bool:
        if message.is_reply or message.op != self.op:
            return False
        if self.round_no is not None and message.round_no != self.round_no:
            return False
        return message.dst in self.objects


class BlockSkipPolicy(DeliveryPolicy):
    """A delivery policy enforcing a set of :class:`SkipRule`.

    Non-matching messages flow through the base policy (unit-latency FIFO by
    default), so the simulated run is synchronous except exactly where the
    adversary intervenes.
    """

    def __init__(self, rules: Iterable[SkipRule] = (), base: DeliveryPolicy | None = None) -> None:
        self.rules: list[SkipRule] = list(rules)
        self.base = base or FifoDelivery()

    def skip(self, op: OperationId, objects: Collection[ProcessId], round_no: int | None = None) -> "BlockSkipPolicy":
        """Add a rule; returns self for chaining."""
        self.rules.append(SkipRule(op=op, objects=frozenset(objects), round_no=round_no))
        return self

    def delay(self, message: Message, now: int) -> int | None:
        for rule in self.rules:
            if rule.matches(message):
                return None
        return self.base.delay(message, now)


class WithholdFrom(DeliveryPolicy):
    """Hold *replies* travelling from chosen objects to chosen clients.

    This is the "keep t correct objects slow forever" adversary: the objects
    are perfectly correct, but their replies sit in transit beyond the end of
    the partial run.  ``release`` on the network ends the blackout.
    """

    def __init__(
        self,
        objects: Collection[ProcessId],
        clients: Collection[ProcessId] | None = None,
        base: DeliveryPolicy | None = None,
        also_invocations: bool = False,
    ) -> None:
        self.objects = frozenset(objects)
        self.clients = frozenset(clients) if clients is not None else None
        self.base = base or FifoDelivery()
        self.also_invocations = also_invocations

    def _targets(self, message: Message) -> bool:
        if message.is_reply:
            if message.src not in self.objects:
                return False
            return self.clients is None or message.dst in self.clients
        if self.also_invocations:
            if message.dst not in self.objects:
                return False
            return self.clients is None or message.src in self.clients
        return False

    def delay(self, message: Message, now: int) -> int | None:
        if self._targets(message):
            return None
        return self.base.delay(message, now)


def predicate_policy(
    hold_if: Callable[[Message], bool],
    base: DeliveryPolicy | None = None,
) -> DeliveryPolicy:
    """Ad-hoc policy from a predicate (thin wrapper for tests)."""
    from repro.sim.network import SelectiveHold

    return SelectiveHold(hold_if=hold_if, base=base)


@dataclass(frozen=True, slots=True)
class PlannedSkip:
    """A :class:`SkipRule` addressed by *plan position* instead of a live id.

    ``SkipRule`` needs the :class:`~repro.types.OperationId` of an already
    invoked operation, which does not exist while an experiment is still
    being configured.  ``PlannedSkip`` carries the same fact as plain data:
    ``op`` is the 1-based position of the operation in the trial's schedule
    (the trial engine runs every trial under
    :func:`repro.types.scoped_operation_serials`, so plan position ``k``
    gets operation serial ``k``), ``objects`` are 1-based object indices
    (the block ``B``), and ``round_no`` of ``None`` skips every round.

    ``withhold_replies`` extends the hold to the reply direction — the
    :class:`WithholdFrom` counterpart: the objects still *receive and
    apply* the invocation, but the client never hears back (the "correct
    but slow forever" adversary).  Without it the rule matches invocations
    only, exactly like :class:`SkipRule`.

    Being a frozen plain-data record, planned skips pickle and serialize,
    so scheduled trials run on process pools and round-trip through
    :class:`~repro.api.cluster.TrialSpec` unchanged.
    """

    op: int
    objects: tuple[int, ...]
    round_no: int | None = None
    withhold_replies: bool = False

    def matches(self, message: Message) -> bool:
        if message.op.serial != self.op:
            return False
        if self.round_no is not None and message.round_no != self.round_no:
            return False
        if message.is_reply:
            return (
                self.withhold_replies
                and message.src.role_value == "object"
                and message.src.index in self.objects
            )
        return message.dst.role_value == "object" and message.dst.index in self.objects

    def describe(self) -> str:
        block = ",".join(f"s{index}" for index in self.objects)
        rounds = "all rounds" if self.round_no is None else f"rnd{self.round_no}"
        direction = "±replies" if self.withhold_replies else "invocations"
        return f"op{self.op} skips {{{block}}} ({rounds}, {direction})"


class PlannedSchedulePolicy(DeliveryPolicy):
    """A :class:`BlockSkipPolicy` over plan-addressed :class:`PlannedSkip` rules.

    This is what :meth:`repro.api.cluster.Cluster.with_schedule` and
    schedule-bearing scenarios compile to at trial time; non-matching
    messages flow through ``base`` (unit-latency FIFO by default).
    """

    def __init__(self, skips: Iterable[PlannedSkip] = (), base: DeliveryPolicy | None = None) -> None:
        self.skips: tuple[PlannedSkip, ...] = tuple(skips)
        self.base = base or FifoDelivery()

    def delay(self, message: Message, now: int) -> int | None:
        for skip in self.skips:
            if skip.matches(message):
                return None
        return self.base.delay(message, now)
