"""Churn fault behaviours: permanent loss, flapping, rolling replacement.

Where :mod:`repro.faults.recovery` models machines that crash and *come
back*, churn models the fleet-level failure patterns a reconfigurable
system (:mod:`repro.registers.reconfig`) exists to survive:

``perm-crash``
    A machine that fails for good.  Honest for ``survive_messages``
    deliveries, then dark forever — the disk is gone, nobody reboots it.
    Unlike the crash-recover family this needs no durability seam (there
    is nothing to recover), so it also works on ``durability="none"``
    systems: it is the canonical trigger for an epoch repair.

``flap``
    A machine stuck in a crash-recover loop: up for ``survive_messages``
    deliveries, dark for ``rejoin_after``, rejoin from the journal, and
    repeat for ``cycles`` crashes before finally stabilising.  Requires
    the durability seam, like its parent :class:`CrashRecoverAt`.

``rolling-replace`` / rolling restarts
    Staggered copies of the above: each object's crash point is derived
    from its own index (``base + (index - 1) * stagger``) via the
    :meth:`CrashRecoverAt._configure` hook, so one zero-argument fault
    maker fails ``s1``, then ``s2``, then ``s3`` in sequence — the shape
    of a fleet-wide rolling replacement or rolling restart.

All of these run entirely through ``before_handle`` phase machines that
are message-counted and per-message dispatched, so they behave
byte-identically on both simulation engines (the batched engine funnels
faulty objects through the same per-message path).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.faults.recovery import CrashRecoverAt
from repro.sim.network import Message
from repro.sim.process import FaultBehavior, ObjectServer


class PermanentCrash(FaultBehavior):
    """Fail-stop for good after ``survive_messages`` honest deliveries.

    If the object has a durable store it is frozen and crashed (a dead
    machine persists nothing, and its journal suffix is lost with it), but
    no store is required — permanent loss is meaningful on volatile
    systems too.
    """

    def __init__(self, survive_messages: int = 3) -> None:
        if survive_messages < 0:
            raise ValueError("survive_messages must be non-negative")
        self.survive_messages = survive_messages
        self.phase = "up"
        self._configured = False

    # -- subclass hooks ------------------------------------------------

    def _configure(self, server: ObjectServer) -> None:
        """Derive per-object parameters before the first delivery.

        Same contract as :meth:`CrashRecoverAt._configure`: runs once,
        with the owning server in hand, so staggered variants can key
        their crash point off ``server.pid.index``.
        """

    def on_armed(self, server: ObjectServer) -> None:
        """Derive per-object parameters while dormant under a timed wrapper."""
        if not self._configured:
            self._configured = True
            self._configure(server)

    # -- the phase machine ---------------------------------------------

    def before_handle(self, server: ObjectServer, message: Message) -> bool:
        if not self._configured:
            self._configured = True
            self._configure(server)
        if self.phase == "up":
            # messages_seen was already incremented for this delivery.
            if server.messages_seen <= self.survive_messages:
                return True
            store = getattr(server.handler, "store", None)
            if store is not None:
                store.frozen = True
                store.crash()
            self.phase = "down"
            self.log_phase("down")
        return False

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        # before_handle gated the dark phase; whenever the handler ran,
        # the machine was still up and presents its genuine reply.
        return honest_payload

    def describe(self) -> str:
        return f"perm-crash(survive={self.survive_messages})"


class RollingReplace(PermanentCrash):
    """Staggered permanent crashes: ``s_i`` dies after its
    ``base + (i - 1) * stagger``-th delivery.

    One zero-argument maker attached to every object produces a rolling
    failure wave — the workload a reconfigurable backend's repair steps
    must chase, replacing each casualty before the next one falls.
    """

    def __init__(self, base: int = 3, stagger: int = 6) -> None:
        super().__init__(survive_messages=base)
        if stagger < 0:
            raise ValueError("stagger must be non-negative")
        self.base = base
        self.stagger = stagger

    def _configure(self, server: ObjectServer) -> None:
        self.survive_messages = self.base + (server.pid.index - 1) * self.stagger

    def describe(self) -> str:
        return f"rolling-replace(base={self.base}, stagger={self.stagger})"


class Flap(CrashRecoverAt):
    """Crash-recover in a loop: ``cycles`` crashes, each after
    ``survive_messages`` honest deliveries, each dark for ``rejoin_after``
    deliveries before rejoining from the journal.

    After the final cycle the machine stays up — a flapping node that an
    operator eventually fixes, not a permanent loss.
    """

    def __init__(
        self,
        survive_messages: int = 2,
        rejoin_after: int = 1,
        cycles: int = 2,
    ) -> None:
        super().__init__(survive_messages=survive_messages, rejoin_after=rejoin_after)
        if cycles < 1:
            raise ValueError("cycles must be at least 1 (1 is plain crash-recover)")
        self.cycles = cycles
        self.up_seen = 0
        self.crashes = 0

    def before_handle(self, server: ObjectServer, message: Message) -> bool:
        if not self._prepared:
            self._prepared = True
            self._configure(server)
            self._prepare(self._store(server))
        if self.phase in ("up", "recovered"):
            # Count this cycle's honest deliveries ourselves: the server's
            # messages_seen spans all cycles and never resets.
            self.up_seen += 1
            if self.up_seen <= self.survive_messages or self.crashes >= self.cycles:
                return True
            store = self._store(server)
            store.frozen = True
            store.crash()
            self._damage(store)
            self.crashes += 1
            self.phase = "down"
            self.dark_seen = 0
            self.log_phase("down")
        if self.phase == "down":
            self.dark_seen += 1
            if self.dark_seen <= self.rejoin_after:
                return False
            state, _image = server.handler.recovered_state()
            server.restore(state)
            self._store(server).frozen = False
            self.phase = "recovered"
            self.up_seen = 0
            self.log_phase("recovered")
        return True

    def describe(self) -> str:
        return (
            f"flap(survive={self.survive_messages}, rejoin={self.rejoin_after}, "
            f"cycles={self.cycles})"
        )


class RollingRestart(CrashRecoverAt):
    """Staggered crash-recover: ``s_i`` crashes after its
    ``base + (i - 1) * stagger``-th delivery and rejoins ``rejoin_after``
    deliveries later.

    Attached to every object this is a fleet-wide rolling restart — at
    most one machine down at a time when ``stagger`` exceeds the restart
    window, which is what the ``rolling-restart`` scenario certifies.
    """

    def __init__(
        self, base: int = 3, stagger: int = 6, rejoin_after: int = 2
    ) -> None:
        super().__init__(survive_messages=base, rejoin_after=rejoin_after)
        if stagger < 0:
            raise ValueError("stagger must be non-negative")
        self.base = base
        self.stagger = stagger

    def _configure(self, server: ObjectServer) -> None:
        self.survive_messages = self.base + (server.pid.index - 1) * self.stagger

    def describe(self) -> str:
        return (
            f"rolling-restart(base={self.base}, stagger={self.stagger}, "
            f"rejoin={self.rejoin_after})"
        )
