"""Fault timing as data: fire a registered behaviour at a chosen point.

Every behaviour in :mod:`repro.faults` decides *when* it deviates with its
own facade-scheduled knobs (``survive_messages``, construction-time
freezes).  :class:`TimedFault` lifts that decision out of the behaviour and
into a single wrapper parameter: the inner behaviour stays **dormant** —
byte-identical to a correct object — until the owning object has handled
``at`` messages, and fires on the next delivery.  Trigger points are
measured in per-object handled-message counts (``ObjectServer.
messages_seen``), the same deterministic clock the crash behaviours
already use, so a timed fault is picklable, engine-independent, and
addressable by the schedule explorer as an ordinary decision
(:class:`~repro.explore.controlled.FaultTrigger`).

Firing is a three-step handshake with the inner behaviour:

* while dormant, the wrapper answers honestly and (once) calls
  :meth:`~repro.sim.process.FaultBehavior.on_armed` so behaviours with
  pre-fire configuration — fsync-lag's sync-lag knob, rolling stagger —
  take effect from the start, exactly as they would facade-scheduled;
* on the firing delivery it calls
  :meth:`~repro.sim.process.FaultBehavior.on_activate` *before* the
  delivery's state transition (stale-echo freezes the genuine state after
  exactly ``at`` messages) and logs a ``fired`` phase when observed;
* from then on every ``before_handle``/``reply`` delegates to the inner
  behaviour permanently.

Inner behaviours that count absolute ``messages_seen`` (crash,
crash-recover, perm-crash, …) have their own timing knobs forced to zero
by :func:`timed_fault` — the wrapper owns the *when*, the inner behaviour
owns the *what*.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.sim.network import Message
from repro.sim.process import FaultBehavior, ObjectServer


class TimedFault(FaultBehavior):
    """Behave honestly for ``at`` deliveries, then become ``inner``.

    ``fault`` is the registry name of the wrapped behaviour, kept for
    labels and serialization (``inner.describe()`` when built directly).
    """

    def __init__(self, inner: FaultBehavior, at: int, fault: str | None = None) -> None:
        if at < 0:
            raise ConfigurationError(f"trigger points are non-negative, got at={at}")
        self.inner = inner
        self.at = at
        self.fault = fault or inner.describe()
        self.fired = False
        self._armed = False

    def _advance(self, server: ObjectServer) -> None:
        if not self._armed:
            self._armed = True
            self.inner.on_armed(server)
        # messages_seen was already incremented for this delivery, so the
        # fault fires on delivery ``at + 1`` — after ``at`` handled
        # messages, exactly like survive_messages=at would.
        if not self.fired and server.messages_seen > self.at:
            self.fired = True
            self.log_phase("fired")
            self.inner.on_activate(server)

    def before_handle(self, server: ObjectServer, message: Message) -> bool:
        self._advance(server)
        if not self.fired:
            return True
        return self.inner.before_handle(server, message)

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        if not self.fired:
            return honest_payload
        return self.inner.reply(server, message, honest_payload)

    def describe(self) -> str:
        return f"timed({self.fault}@{self.at})"


def timed_fault(fault: str, at: int = 0, **kwargs: Any) -> TimedFault:
    """Build the behaviour registered under ``fault``, firing after ``at``.

    The inner behaviour's own timing parameters (its
    :attr:`~repro.api.faults.FaultSpec.timing` tuple, e.g.
    ``survive_messages``) are forced to zero — the wrapper is the single
    source of truth for *when*; passing one explicitly is rejected so a
    probe can never carry two contradictory trigger points.  All other
    keyword arguments configure the inner behaviour as usual.
    """
    from repro.api.faults import fault_spec

    spec = fault_spec(fault)
    if spec.name == "timed":
        raise ConfigurationError("timed faults do not nest")
    clash = sorted(set(kwargs) & set(spec.timing))
    if clash:
        raise ConfigurationError(
            f"timed({spec.name}) owns the trigger point; drop "
            f"{', '.join(repr(k) for k in clash)} and use at= instead"
        )
    spec.validate_kwargs(kwargs)
    inner_kwargs = dict(kwargs)
    for knob in spec.timing:
        inner_kwargs[knob] = 0
    return TimedFault(spec.build(**inner_kwargs), at=at, fault=spec.name)
