"""Benign-endpoint fault behaviours: silence and crash.

A silent object is the weakest Byzantine behaviour — in an asynchronous
system a client cannot distinguish "crashed object" from "replies forever in
transit", which is why every quorum rule in this library tolerates ``t``
missing replies.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.sim.network import Message
from repro.sim.process import FaultBehavior, ObjectServer


class SilentBehavior(FaultBehavior):
    """Never reply to anything (object crashed before the run started)."""

    def __init__(self) -> None:
        self._announced = False

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        if not self._announced:
            self._announced = True
            self.log_phase("down")
        return None

    def describe(self) -> str:
        return "silent"


class CrashAt(FaultBehavior):
    """Behave correctly for the first ``survive_messages`` messages, then crash.

    Message-counted rather than time-counted so behaviour is independent of
    delivery policy timing, which keeps adversarial tests deterministic.
    """

    def __init__(self, survive_messages: int) -> None:
        if survive_messages < 0:
            raise ValueError("survive_messages must be non-negative")
        self.survive_messages = survive_messages
        self._announced = False

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        # messages_seen was already incremented for this delivery.
        if server.messages_seen <= self.survive_messages:
            return honest_payload
        if not self._announced:
            self._announced = True
            self.log_phase("down")
        return None

    def describe(self) -> str:
        return f"crash-after-{self.survive_messages}"


class _Flaky(FaultBehavior):
    """Reply honestly with probability ``p`` (seeded), else stay silent."""

    def __init__(self, p_reply: float, seed: int) -> None:
        self.p_reply = p_reply
        self._rng = random.Random(seed)

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        if self._rng.random() < self.p_reply:
            return honest_payload
        self.log_phase("omit")
        return None

    def describe(self) -> str:
        return f"flaky(p={self.p_reply})"


def flaky_behavior(p_reply: float = 0.5, seed: int = 0) -> FaultBehavior:
    """A seeded randomly-silent behaviour (omission faults)."""
    if not 0.0 <= p_reply <= 1.0:
        raise ValueError("p_reply must be a probability")
    return _Flaky(p_reply, seed)
