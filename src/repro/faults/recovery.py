"""Crash-recover fault behaviours: go dark, then rejoin from durable state.

The paper's objects are crash-stop; these behaviours model the crash-
*recover* machines of real stores.  Each one runs the same three-phase
machine, message-counted so it is deterministic, picklable, and identical
on both simulation engines (faulty objects always take the full
per-message dispatch path):

``up``
    Behave honestly for ``survive_messages`` deliveries.  The delivery
    after that *crashes* the machine: the stable store is frozen (a dead
    machine persists nothing) and crash damage is applied — the
    acknowledged-but-unsynced journal suffix is lost, plus whatever the
    subclass adds (a torn final record, a widened sync lag).

``down``
    Swallow ``rejoin_after`` further deliveries outright (via
    :meth:`~repro.sim.process.FaultBehavior.before_handle`, so the dark
    machine performs **no** state transitions).  With ``rejoin_after=0``
    the machine restarts instantly: the crash and the rejoin happen on
    the same delivery.

``recovered``
    Replay the durable journal into a fresh protocol state
    (:meth:`~repro.storage.durable.DurableObjectHandler.recovered_state`),
    unfreeze the store, and serve the triggering delivery — and everything
    after it — honestly from the recovered (possibly stale) state.

*When* the rejoin lands relative to in-flight rounds is exactly what the
schedule explorer searches: every held link shifts which operation's
messages fall into the dark window, so recovery timing is an ordinary
explorer choice point and stale-rejoin violations come out as minimized
:class:`~repro.explore.witness.ScheduleWitness`es.

All three behaviours require the durability seam; attaching one to an
object built with ``durability="none"`` raises
:class:`~repro.errors.StorageError` on first delivery.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import StorageError
from repro.sim.network import Message
from repro.sim.process import FaultBehavior, ObjectServer
from repro.storage.stable import StableStorage


class CrashRecoverAt(FaultBehavior):
    """Crash after ``survive_messages`` deliveries; rejoin from the journal.

    With a store that syncs before acknowledging (the default), the
    machine rejoins with exactly the state it last acknowledged — the
    well-provisioned recovery configuration the explorer can certify.
    """

    def __init__(self, survive_messages: int = 3, rejoin_after: int = 2) -> None:
        if survive_messages < 0:
            raise ValueError("survive_messages must be non-negative")
        if rejoin_after < 0:
            raise ValueError("rejoin_after must be non-negative")
        self.survive_messages = survive_messages
        self.rejoin_after = rejoin_after
        self.phase = "up"
        self.dark_seen = 0
        self._prepared = False

    # -- subclass hooks ------------------------------------------------

    def _configure(self, server: ObjectServer) -> None:
        """Derive per-object parameters before the first delivery.

        Runs once, ahead of :meth:`_prepare`, with the owning server in
        hand — the hook that lets one zero-argument fault maker stagger
        its phase machine by ``server.pid.index`` (rolling restarts)
        without per-object constructor arguments.
        """

    def _prepare(self, store: StableStorage) -> None:
        """Configure the store before the first delivery is handled."""

    def _damage(self, store: StableStorage) -> None:
        """Apply crash damage beyond losing the unsynced suffix."""

    # -- timed-fault wrapping ------------------------------------------

    def on_armed(self, server: ObjectServer) -> None:
        """Configure the store while still dormant under a timed wrapper.

        Durability-dependent damage needs its setup (fsync-lag's sync-lag
        knob, staggered parameters) in effect from the run's start even
        when the crash itself is trigger-scheduled — otherwise the journal
        the crash eats would have been synced with the default policy.
        """
        if not self._prepared:
            self._prepared = True
            self._configure(server)
            self._prepare(self._store(server))

    # -- the phase machine ---------------------------------------------

    def _store(self, server: ObjectServer) -> StableStorage:
        store = getattr(server.handler, "store", None)
        if store is None:
            raise StorageError(
                f"{self.describe()} needs durable object state — build the "
                "system with durability='mem' or durability='dir'"
            )
        return store

    def before_handle(self, server: ObjectServer, message: Message) -> bool:
        if not self._prepared:
            self._prepared = True
            self._configure(server)
            self._prepare(self._store(server))
        if self.phase == "up":
            # messages_seen was already incremented for this delivery.
            if server.messages_seen <= self.survive_messages:
                return True
            store = self._store(server)
            store.frozen = True
            store.crash()
            self._damage(store)
            self.phase = "down"
            self.dark_seen = 0
            self.log_phase("down")
        if self.phase == "down":
            self.dark_seen += 1
            if self.dark_seen <= self.rejoin_after:
                return False
            state, _image = server.handler.recovered_state()
            server.restore(state)
            self._store(server).frozen = False
            self.phase = "recovered"
            self.log_phase("recovered")
        return True

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        # before_handle gated the dark window; whenever the handler ran,
        # the machine is live and presents its genuine reply.
        return honest_payload

    def describe(self) -> str:
        return f"crash-recover(survive={self.survive_messages}, rejoin={self.rejoin_after})"


class FsyncLag(CrashRecoverAt):
    """Crash-recover with a lazy fsync: the last ``lag`` journal records are
    acknowledged but not yet durable, so the crash loses exactly that
    suffix and the machine rejoins with *stale* state it already
    acknowledged — the under-provisioned configuration the explorer
    refutes with a stale-rejoin witness."""

    def __init__(
        self, survive_messages: int = 3, rejoin_after: int = 2, lag: int = 1
    ) -> None:
        super().__init__(survive_messages=survive_messages, rejoin_after=rejoin_after)
        if lag < 1:
            raise ValueError("lag must be at least 1 (0 is plain crash-recover)")
        self.lag = lag

    def _prepare(self, store: StableStorage) -> None:
        store.lag = self.lag

    def describe(self) -> str:
        return (
            f"fsync-lag(lag={self.lag}, survive={self.survive_messages}, "
            f"rejoin={self.rejoin_after})"
        )


class TornWrite(CrashRecoverAt):
    """Crash-recover where the crash tears the final journal record
    mid-entry; recovery's checksum validation must detect the damage and
    discard the record, so the machine rejoins one update behind."""

    def _damage(self, store: StableStorage) -> None:
        store.tear_last()

    def describe(self) -> str:
        return f"torn-write(survive={self.survive_messages}, rejoin={self.rejoin_after})"
