"""Fault behaviours and adversarial schedules.

The paper's model allows clients to crash and up to ``t`` objects to be
*malicious* (Byzantine, unauthenticated data).  This package provides:

* benign endpoint faults — silence, crash-at-time (:mod:`repro.faults.adversary`);
* crash-recover faults — machines that go dark and rejoin from durable
  storage, with fsync-lag and torn-write damage (:mod:`repro.faults.recovery`);
* Byzantine behaviours — state replay ("forge state to σ", exactly the
  adversary of the proofs) and fabrication of arbitrary well-typed states
  (:mod:`repro.faults.byzantine`);
* adversarial delivery schedules — block skipping and reply withholding
  (:mod:`repro.faults.schedules`);
* fault timing as data — :class:`~repro.faults.timing.TimedFault` defers
  any registered behaviour to an explicit per-object trigger point, the
  choice the schedule explorer sweeps (:mod:`repro.faults.timing`).
"""

from repro.faults.adversary import CrashAt, SilentBehavior, flaky_behavior
from repro.faults.recovery import CrashRecoverAt, FsyncLag, TornWrite
from repro.faults.timing import TimedFault, timed_fault
from repro.faults.byzantine import (
    FabricatingBehavior,
    ReplayBehavior,
    StateArchive,
    StaleEchoBehavior,
)
from repro.faults.schedules import (
    BlockSkipPolicy,
    PlannedSchedulePolicy,
    PlannedSkip,
    SkipRule,
    WithholdFrom,
)

__all__ = [
    "SilentBehavior",
    "CrashAt",
    "CrashRecoverAt",
    "FsyncLag",
    "TornWrite",
    "flaky_behavior",
    "StateArchive",
    "ReplayBehavior",
    "StaleEchoBehavior",
    "FabricatingBehavior",
    "TimedFault",
    "timed_fault",
    "BlockSkipPolicy",
    "SkipRule",
    "WithholdFrom",
    "PlannedSkip",
    "PlannedSchedulePolicy",
]
