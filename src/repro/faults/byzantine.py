"""Byzantine object behaviours: state replay and fabrication.

The lower-bound proofs never need "creative" Byzantine objects: every forgery
in the paper is of the form *"objects in block B forge their state to σ
before replying to rd"* where σ is a **genuine** protocol state captured in
some other partial run.  :class:`ReplayBehavior` implements exactly that: it
computes the reply the honest handler would give *from a snapshot state*
instead of the current one.

Fabrication (inventing states that never occurred, e.g. sky-high timestamps)
is stronger and only possible because data is unauthenticated;
:class:`FabricatingBehavior` models it and is what separates the
unauthenticated model from the secret-token model of [DMSS09].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.sim.network import Message
from repro.sim.process import FaultBehavior, ObjectServer, copy_state
from repro.types import ProcessId


class StateArchive:
    """Labelled per-object state snapshots (the σ's of the proofs).

    Labels are free-form strings such as ``"sigma_2"`` ("state after the
    write's rounds 1..2").  Snapshots are deep copies, immune to later
    mutation of the live objects.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, dict[ProcessId, dict[str, Any]]] = {}

    def capture(self, label: str, servers: Iterable[ObjectServer]) -> None:
        """Snapshot the current state of every server under ``label``."""
        bucket = self._snapshots.setdefault(label, {})
        for server in servers:
            bucket[server.pid] = server.snapshot()

    def capture_one(self, label: str, server: ObjectServer) -> None:
        """Snapshot a single server under ``label``."""
        self._snapshots.setdefault(label, {})[server.pid] = server.snapshot()

    def store(self, label: str, pid: ProcessId, state: Mapping[str, Any]) -> None:
        """Store an explicit state dict under ``label`` for ``pid``."""
        self._snapshots.setdefault(label, {})[pid] = copy_state(dict(state))

    def get(self, label: str, pid: ProcessId) -> dict[str, Any]:
        """Deep copy of the snapshot of ``pid`` under ``label``."""
        try:
            return copy_state(self._snapshots[label][pid])
        except KeyError:
            raise ConfigurationError(f"no snapshot {label!r} for {pid}") from None

    def has(self, label: str, pid: ProcessId | None = None) -> bool:
        """Whether ``label`` (and optionally ``pid``) is archived."""
        if label not in self._snapshots:
            return False
        if pid is None:
            return True
        return pid in self._snapshots[label]

    def labels(self) -> tuple[str, ...]:
        """All labels, sorted."""
        return tuple(sorted(self._snapshots))


@dataclass(slots=True)
class ReplayRule:
    """Forge replies matching ``matcher`` from snapshot ``label``."""

    matcher: Callable[[Message], bool]
    label: str


class ReplayBehavior(FaultBehavior):
    """Reply from archived snapshots instead of the live state.

    Rules are checked in order; the first matching rule selects the snapshot
    the honest handler is evaluated against.  Without a match the object
    answers honestly (from its live state), which mirrors the proofs: the
    malicious blocks behave correctly toward every operation except the ones
    they target.

    The handler runs against a *copy* of the snapshot, so a forged reply
    never perturbs the archive or the live state.
    """

    def __init__(self, archive: StateArchive, rules: Iterable[ReplayRule] = ()) -> None:
        self.archive = archive
        self.rules: list[ReplayRule] = list(rules)
        self._announced = False

    def forge(self, matcher: Callable[[Message], bool], label: str) -> "ReplayBehavior":
        """Append a rule; returns self for chaining."""
        self.rules.append(ReplayRule(matcher=matcher, label=label))
        return self

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        for rule in self.rules:
            if rule.matcher(message):
                if not self._announced:
                    self._announced = True
                    self.log_phase("replay")
                if not self.archive.has(rule.label, server.pid):
                    return None  # no such past: the safest lie is silence
                forged_state = self.archive.get(rule.label, server.pid)
                return server.handler.handle(forged_state, message)
        return honest_payload

    def describe(self) -> str:
        return f"replay({len(self.rules)} rules)"


class StaleEchoBehavior(FaultBehavior):
    """Freeze at construction time: forever reply from that one snapshot.

    Equivalent to a replay behaviour with a single catch-all rule; kept as a
    distinct class because "echo an old genuine state" is the canonical
    attack against naive fast reads and deserves a name in test output.
    """

    def __init__(self, frozen_state: Mapping[str, Any]) -> None:
        self._frozen = copy_state(dict(frozen_state))
        self._announced = False

    @classmethod
    def freezing(cls, server: ObjectServer) -> "StaleEchoBehavior":
        """Freeze ``server`` at its current state."""
        return cls(server.snapshot())

    def on_activate(self, server: ObjectServer) -> None:
        """Trigger-scheduled freeze: echo the genuine state at firing time.

        Runs before the firing delivery's state transition, so the frozen
        snapshot is the state after exactly the trigger's ``at`` handled
        messages — a *genuine* past state, as the proofs require.
        """
        self._frozen = server.snapshot()

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        if not self._announced:
            self._announced = True
            self.log_phase("stale")
        if self._frozen:
            scratch = copy_state(self._frozen)
        else:
            # An empty freeze means "echo the pristine initial state".
            scratch = server.handler.initial_state()
        return server.handler.handle(scratch, message)

    def describe(self) -> str:
        return "stale-echo"


class FabricatingBehavior(FaultBehavior):
    """Reply with arbitrary attacker-chosen payloads (unauthenticated model).

    ``fabricate(message, honest_payload)`` returns the forged payload, or
    ``None`` for silence.  The default fabricator mirrors the honest payload
    but inflates every timestamp-looking field, the classic attack on
    protocols that trust a single maximum.
    """

    def __init__(
        self,
        fabricate: Callable[[Message, Mapping[str, Any]], Mapping[str, Any] | None] | None = None,
    ) -> None:
        self._fabricate = fabricate or _inflate_timestamps
        self._announced = False

    def reply(
        self,
        server: ObjectServer,
        message: Message,
        honest_payload: Mapping[str, Any],
    ) -> Mapping[str, Any] | None:
        if not self._announced:
            self._announced = True
            self.log_phase("forging")
        return self._fabricate(message, honest_payload)

    def describe(self) -> str:
        return "fabricating"


def _inflate_timestamps(message: Message, honest: Mapping[str, Any]) -> Mapping[str, Any]:
    """Default fabrication: bump timestamps sky-high, garble values."""
    from repro.types import TaggedValue, Timestamp

    forged: dict[str, Any] = {}
    for key, value in honest.items():
        if isinstance(value, TaggedValue):
            forged[key] = TaggedValue(
                ts=Timestamp(value.ts.seq + 1_000_000, value.ts.writer),
                value="<fabricated>",
            )
        else:
            forged[key] = value
    return forged
