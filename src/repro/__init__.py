"""repro — reproduction of *The Complexity of Robust Atomic Storage* (PODC'11).

Robust (wait-free, optimally resilient, unauthenticated-Byzantine) atomic
read/write storage emulations over simulated fault-prone storage objects,
together with **executable versions of the paper's two lower-bound proofs**
and the matching upper-bound constructions of its Section 5.

Quickstart — the :mod:`repro.api` facade
----------------------------------------

Protocols, fault behaviours, scenarios and consistency checks are all
addressable **by name**; the :class:`Cluster` builder composes them into a
structured, repeatable experiment::

    from repro.api import Cluster, available_protocols

    print(available_protocols())          # 'abd', 'fast-regular', ...
    result = (
        Cluster("atomic-fast-regular", t=1, n_readers=2)
        .with_faults("stale-echo", count=1)
        .with_workload(reads=0.6, spacing=25, operations=12)
        .check("atomicity")
        .run(trials=5, seed=7)
    )
    assert result.ok and result.worst_read == 4
    print(result.render())                # per-trial latencies + verdicts

``python -m repro list-protocols`` shows the registry;
``python -m repro run --protocol abd --faults crash`` runs the same pipeline
from the command line, and :func:`repro.api.sweep` fans protocol × scenario
grids into one table (the latency-matrix benchmark is exactly that call).

Public surface overview
-----------------------

* ``repro.api`` — the facade: protocol / fault registries, the ``Cluster``
  builder, ``RunResult`` / ``SweepResult``.
* ``repro.explore`` — the bounded model checker over delivery schedules:
  ``Cluster.explore()`` / ``python -m repro explore`` certify a
  configuration over every bounded held-message schedule or refute it
  with a minimized, replayable ``ScheduleWitness``.
* ``repro.registers`` — the protocol suite (ABD, GV06-style fast regular,
  bounded regular, secret-token regular, regular→atomic and SWMR→MWMR
  transformations, strawmen) and the :class:`RegisterSystem` harness.
* ``repro.spec`` — atomicity / regularity / safety / linearizability
  checkers over recorded operation histories.
* ``repro.core`` — the lower-bound engine: the ``t_k`` recurrence, block
  partitions and superblocks, scripted partial runs, and the Proposition 1 /
  Lemma 1 constructions that emit atomicity-violation certificates.
* ``repro.sim`` / ``repro.faults`` — the deterministic message-passing
  simulator and the adversary layer (crash, replay-Byzantine, fabrication,
  block-skipping schedules).
* ``repro.quorums`` — threshold and set-system quorum arithmetic.
* ``repro.workloads`` / ``repro.analysis`` / ``repro.cost`` — workload
  generation, latency accounting, and the cloud cost model used by the
  benchmark harness.

Low-level API
-------------

The facade wraps — never replaces — the constructor-driven path, which
remains fully supported for tests and fine-grained control::

    from repro import RegisterSystem, FastRegularProtocol, check_swmr_atomicity
    from repro.registers.transform_atomic import RegularToAtomicProtocol

    protocol = RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)
    system = RegisterSystem(protocol, t=1, n_readers=2)
    system.write("hello", at=0)
    system.read(1, at=30)
    system.run()
    assert check_swmr_atomicity(system.history()).ok
"""

from repro.errors import (
    ConfigurationError,
    ConstructionError,
    ConstructionEscape,
    ProtocolError,
    ReproError,
    SimulationError,
    SpecificationError,
)
from repro.types import BOTTOM, ProcessId, TaggedValue, Timestamp, object_ids, reader_id, reader_ids, writer_id
from repro.registers import (
    AbdProtocol,
    BoundedRegularProtocol,
    ByzantineSafeProtocol,
    FastRegularProtocol,
    LuckyAtomicProtocol,
    MultiWriterAbdProtocol,
    MultiWriterRegisterSystem,
    RegisterSystem,
    RegularToAtomicProtocol,
    SecretTokenProtocol,
    ThreeRoundReadProtocol,
    TwoRoundReadProtocol,
)
from repro.spec import (
    History,
    HistoryRecorder,
    check_swmr_atomicity,
    check_swmr_regularity,
    check_swmr_safety,
    is_linearizable,
)
from repro.api import (
    Cluster,
    RunResult,
    SweepResult,
    available_checks,
    available_faults,
    available_protocols,
    get_fault,
    get_protocol,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolError",
    "SpecificationError",
    "ConstructionError",
    "ConstructionEscape",
    # types
    "BOTTOM",
    "ProcessId",
    "Timestamp",
    "TaggedValue",
    "object_ids",
    "reader_id",
    "reader_ids",
    "writer_id",
    # registers
    "RegisterSystem",
    "AbdProtocol",
    "MultiWriterAbdProtocol",
    "ByzantineSafeProtocol",
    "FastRegularProtocol",
    "BoundedRegularProtocol",
    "LuckyAtomicProtocol",
    "SecretTokenProtocol",
    "RegularToAtomicProtocol",
    "MultiWriterRegisterSystem",
    "TwoRoundReadProtocol",
    "ThreeRoundReadProtocol",
    # spec
    "History",
    "HistoryRecorder",
    "check_swmr_atomicity",
    "check_swmr_regularity",
    "check_swmr_safety",
    "is_linearizable",
    # facade
    "Cluster",
    "RunResult",
    "SweepResult",
    "sweep",
    "get_protocol",
    "get_fault",
    "available_protocols",
    "available_faults",
    "available_checks",
]
