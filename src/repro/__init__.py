"""repro — reproduction of *The Complexity of Robust Atomic Storage* (PODC'11).

Robust (wait-free, optimally resilient, unauthenticated-Byzantine) atomic
read/write storage emulations over simulated fault-prone storage objects,
together with **executable versions of the paper's two lower-bound proofs**
and the matching upper-bound constructions of its Section 5.

Public surface overview
-----------------------

* ``repro.registers`` — the protocol suite (ABD, GV06-style fast regular,
  bounded regular, secret-token regular, regular→atomic and SWMR→MWMR
  transformations, strawmen) and the :class:`RegisterSystem` harness.
* ``repro.spec`` — atomicity / regularity / safety / linearizability
  checkers over recorded operation histories.
* ``repro.core`` — the lower-bound engine: the ``t_k`` recurrence, block
  partitions and superblocks, scripted partial runs, and the Proposition 1 /
  Lemma 1 constructions that emit atomicity-violation certificates.
* ``repro.sim`` / ``repro.faults`` — the deterministic message-passing
  simulator and the adversary layer (crash, replay-Byzantine, fabrication,
  block-skipping schedules).
* ``repro.quorums`` — threshold and set-system quorum arithmetic.
* ``repro.workloads`` / ``repro.analysis`` / ``repro.cost`` — workload
  generation, latency accounting, and the cloud cost model used by the
  benchmark harness.

Quickstart::

    from repro import RegisterSystem, FastRegularProtocol, check_swmr_atomicity
    from repro.registers.transform_atomic import RegularToAtomicProtocol

    protocol = RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)
    system = RegisterSystem(protocol, t=1, n_readers=2)
    system.write("hello", at=0)
    system.read(1, at=30)
    system.run()
    assert check_swmr_atomicity(system.history()).ok
"""

from repro.errors import (
    ConfigurationError,
    ConstructionError,
    ConstructionEscape,
    ProtocolError,
    ReproError,
    SimulationError,
    SpecificationError,
)
from repro.types import BOTTOM, ProcessId, TaggedValue, Timestamp, object_ids, reader_id, reader_ids, writer_id
from repro.registers import (
    AbdProtocol,
    BoundedRegularProtocol,
    ByzantineSafeProtocol,
    FastRegularProtocol,
    LuckyAtomicProtocol,
    MultiWriterAbdProtocol,
    MultiWriterRegisterSystem,
    RegisterSystem,
    RegularToAtomicProtocol,
    SecretTokenProtocol,
    ThreeRoundReadProtocol,
    TwoRoundReadProtocol,
)
from repro.spec import (
    History,
    HistoryRecorder,
    check_swmr_atomicity,
    check_swmr_regularity,
    check_swmr_safety,
    is_linearizable,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolError",
    "SpecificationError",
    "ConstructionError",
    "ConstructionEscape",
    # types
    "BOTTOM",
    "ProcessId",
    "Timestamp",
    "TaggedValue",
    "object_ids",
    "reader_id",
    "reader_ids",
    "writer_id",
    # registers
    "RegisterSystem",
    "AbdProtocol",
    "MultiWriterAbdProtocol",
    "ByzantineSafeProtocol",
    "FastRegularProtocol",
    "BoundedRegularProtocol",
    "LuckyAtomicProtocol",
    "SecretTokenProtocol",
    "RegularToAtomicProtocol",
    "MultiWriterRegisterSystem",
    "TwoRoundReadProtocol",
    "ThreeRoundReadProtocol",
    # spec
    "History",
    "HistoryRecorder",
    "check_swmr_atomicity",
    "check_swmr_regularity",
    "check_swmr_safety",
    "is_linearizable",
]
