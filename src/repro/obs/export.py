"""Observability exporters: JSONL dumps, Chrome trace timelines, terminal tables.

Three output shapes for the records :func:`~repro.obs.spans.derive_spans`
and :func:`~repro.obs.metrics.derive_metrics` produce:

* :func:`dump_spans_jsonl` / :func:`dump_metrics_jsonl` — one JSON object
  per line, sorted keys, with optional merged extras (the trial index) —
  the same conventions as ``--trace`` dumps, so files from both engines
  compare byte for byte.
* :func:`write_chrome_trace` — Chrome trace-event JSON (the ``X``
  complete-event form), loadable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``: one process per trial, one thread track per
  client and per object, timestamps in virtual ticks.
* :func:`summarize_spans` — a fixed-width run-summary table (the
  ``repro stats`` subcommand and the ``--obs`` terminal summary).
"""

from __future__ import annotations

import json
import statistics
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.tables import format_table

#: Client/object track ordering in timelines: writer, readers, repair
#: clients, then objects.
_ROLE_ORDER = {"w": 0, "r": 1, "q": 2, "s": 3}


def _dump_jsonl(records: Iterable[Mapping[str, Any]], sink, extra) -> int:
    merged = dict(extra or {})
    written = 0
    for record in records:
        line = dict(record)
        line.update(merged)
        sink.write(json.dumps(line, sort_keys=True, ensure_ascii=False) + "\n")
        written += 1
    return written


def dump_spans_jsonl(
    spans: Iterable[Mapping[str, Any]], sink, extra: Mapping[str, Any] | None = None
) -> int:
    """Write span records to ``sink`` as JSONL; returns the line count."""
    return _dump_jsonl(spans, sink, extra)


def dump_metrics_jsonl(
    metrics: Iterable[Mapping[str, Any]], sink, extra: Mapping[str, Any] | None = None
) -> int:
    """Write metric records to ``sink`` as JSONL; returns the line count."""
    return _dump_jsonl(metrics, sink, extra)


def _track_key(name: str) -> tuple[int, int, str]:
    tail = name[1:]
    return (_ROLE_ORDER.get(name[:1], 9), int(tail) if tail.isdigit() else 0, name)


def _horizon(spans: Sequence[Mapping[str, Any]]) -> int:
    """Latest virtual time any span touches (closes open-ended events)."""
    latest = 0
    for span in spans:
        for key in ("start", "end", "time"):
            value = span.get(key)
            if isinstance(value, int) and value > latest:
                latest = value
    return latest


def chrome_trace_events(
    spans: Sequence[Mapping[str, Any]], pid: int = 0, label: str | None = None
) -> list[dict[str, Any]]:
    """Trace-event records for one trial's spans (``pid`` = the trial).

    Operations and rounds render as nested complete events on their
    client's track; recovery windows as complete events and journal syncs
    as instant events on the object's track.  Timestamps are virtual
    ticks.  Spans still open at quiescence are closed at the run horizon
    and flagged ``incomplete`` in their args.
    """
    tracks = sorted(
        {span["client"] if "client" in span else span["object"] for span in spans},
        key=_track_key,
    )
    tid_of = {name: index + 1 for index, name in enumerate(tracks)}
    horizon = _horizon(spans)
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": label if label is not None else f"trial {pid}"},
    }]
    for name in tracks:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid_of[name],
            "args": {"name": name},
        })
    for span in spans:
        what = span["span"]
        if what == "sync":
            events.append({
                "name": "sync", "cat": "sync", "ph": "i", "s": "t",
                "ts": span["time"], "pid": pid, "tid": tid_of[span["object"]],
                "args": {"records": span["records"], "bytes": span["bytes"]},
            })
            continue
        if what == "recovery":
            start, end, tid = span["start"], span["end"], tid_of[span["object"]]
            name, cat = "down", "recovery"
            args: dict[str, Any] = {"behavior": span["behavior"]}
        elif what == "op":
            start, end, tid = span["start"], span["end"], tid_of[span["client"]]
            name, cat = f"{span['op']} #{span['serial']}", "op"
            args = {"status": span["status"], "rounds": span["rounds"]}
        else:
            start, end, tid = span["start"], span["end"], tid_of[span["client"]]
            phase = span.get("phase")
            name = f"repair:{phase}" if phase else f"{span['tag']} r{span['round']}"
            cat = "round"
            args = {
                "replies": span["replies"], "needed": span["needed"],
                "held": span["held"], "dropped": span["dropped"],
                "destinations": ",".join(span["destinations"]),
            }
        if end is None:
            end = horizon
            args["incomplete"] = True
        events.append({
            "name": name, "cat": cat, "ph": "X", "ts": start, "dur": end - start,
            "pid": pid, "tid": tid, "args": args,
        })
    return events


def write_chrome_trace(
    trials: Sequence[tuple[int, str, Sequence[Mapping[str, Any]]]], sink
) -> int:
    """Write one Perfetto-loadable timeline for ``(pid, label, spans)`` trials.

    Returns the trace-event count.  Deterministic output: sorted keys, no
    wall-clock fields — files from both engines compare byte for byte.
    """
    events: list[dict[str, Any]] = []
    for pid, label, spans in trials:
        events.extend(chrome_trace_events(spans, pid=pid, label=label))
    sink.write(json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": events},
        sort_keys=True, ensure_ascii=False,
    ) + "\n")
    return len(events)


def summarize_spans(records: Sequence[Mapping[str, Any]]) -> str:
    """Per-trial summary table of a span record list (``repro stats``).

    Accepts the records as dumped (each may carry a merged ``trial`` key)
    or as derived in-process (no ``trial`` key: one implicit trial 0).
    """
    trials: dict[int, list[Mapping[str, Any]]] = {}
    for record in records:
        trials.setdefault(int(record.get("trial", 0)), []).append(record)
    rows = []
    for trial in sorted(trials):
        spans = trials[trial]
        ops = [s for s in spans if s["span"] == "op"]
        rounds = [s for s in spans if s["span"] == "round"]
        waits = [s["wait"] for s in rounds if s["wait"] is not None]
        recoveries = [s for s in spans if s["span"] == "recovery"]
        syncs = [s for s in spans if s["span"] == "sync"]
        by_kind = {
            kind: [s for s in ops if s["op"] == kind]
            for kind in ("write", "read", "repair")
        }
        rows.append({
            "trial": str(trial),
            "ops (w/r/q)": "/".join(str(len(by_kind[k])) for k in ("write", "read", "repair")),
            "incomplete": str(sum(1 for s in ops if s["status"] != "complete")),
            "rounds (worst w/r)": (
                f"{max((s['rounds'] for s in by_kind['write'] if s['status'] == 'complete'), default=0)}"
                f"/{max((s['rounds'] for s in by_kind['read'] if s['status'] == 'complete'), default=0)}"
            ),
            "quorum wait (mean/max)": (
                f"{statistics.fmean(waits):.1f}/{max(waits)}" if waits else "-"
            ),
            "held": str(sum(s["held"] for s in rounds)),
            "dropped": str(sum(s["dropped"] for s in rounds)),
            "recoveries": str(len(recoveries)),
            "syncs (bytes)": (
                f"{len(syncs)} ({sum(s['bytes'] for s in syncs)})" if syncs else "-"
            ),
        })
    columns = (
        "trial", "ops (w/r/q)", "incomplete", "rounds (worst w/r)",
        "quorum wait (mean/max)", "held", "dropped", "recoveries", "syncs (bytes)",
    )
    return format_table(f"span summary — {len(records)} span(s)", columns, rows)
