"""Span derivation: one structured timeline record per thing that happened.

Spans are derived **after** a run, from bookkeeping the engines already
pin byte-identical across the event and batched simulators (operations
and their :class:`~repro.sim.rounds.RoundRecord`s, the wire trace, the
observe-gated phase and sync logs).  Nothing here touches the simulation
hot path, and every produced record is plain JSON-primitive data — a pure
function of the run — so span dumps compare equal across engines and
across serial/parallel trial execution exactly like the structured
results do.

Span vocabulary (the ``"span"`` key of every record):

``op``
    One client operation: invocation/completion times, status, rounds
    used.  Membership repairs are operations too (``op == "repair"``).
``round``
    One protocol round of an operation: start, termination time (the
    next round's start, or the operation's completion — both happen
    synchronously at the same virtual tick), quorum-wait duration,
    destinations, replies counted vs needed, and how many of the round's
    messages the adversary held or the fabric dropped.  Repair rounds
    additionally carry ``"phase"``: ``"transfer"`` for the state-transfer
    read, ``"install"`` for the install round.
``recovery``
    One outage window of a crash-recover/churn fault behaviour: from the
    crash transition to the rejoin (``end`` is ``None`` for a permanent
    loss that never rejoins).
``sync``
    One durable-journal sync: the virtual time plus the records and frame
    bytes that became durable (point event, no duration).

Round termination times are not stored by the engines; they are derived
from the invariant that :meth:`Simulator._finish_round`, the next
``_start_round`` and operation completion all run synchronously at the
same ``queue.now`` — so round ``r`` ends exactly when round ``r+1``
starts (or when the operation completes, for its last round).  A round
still waiting at quiescence has ``end``/``wait`` of ``None``.
"""

from __future__ import annotations

from typing import Any

from repro.sim.simulator import OperationStatus, Simulator
from repro.sim.tracing import MessageTrace, TraceKind

#: Repair-round tag → human phase name (see :mod:`repro.registers.reconfig`).
REPAIR_PHASES = {
    "RECONFIG_XFER_READ": "transfer",
    "RECONFIG_XFER_INSTALL": "install",
}


def _held_dropped(trace: MessageTrace) -> dict[tuple[Any, int], list[int]]:
    """Per-(operation, round) counts of held and dropped messages."""
    counts: dict[tuple[Any, int], list[int]] = {}
    for _time, kind, message in trace.entries:
        if kind is TraceKind.HOLD:
            slot = 0
        elif kind is TraceKind.DROP:
            slot = 1
        else:
            continue
        key = (message.op, message.round_no)
        entry = counts.get(key)
        if entry is None:
            counts[key] = entry = [0, 0]
        entry[slot] += 1
    return counts


def derive_spans(simulator: Simulator, trace: MessageTrace) -> list[dict[str, Any]]:
    """Build the run's span records from the engine's own bookkeeping.

    Emission order is canonical and deterministic: operations in
    invocation order, each immediately followed by its rounds; then
    recovery windows sorted by (object, start); then syncs sorted by
    (object, time).
    """
    spans: list[dict[str, Any]] = []
    adversary = _held_dropped(trace)
    object_ids = simulator.object_ids
    for operation in simulator.operations:
        op_id = operation.op_id
        end = operation.completed_at
        spans.append({
            "span": "op",
            "client": str(operation.client),
            "op": op_id.kind,
            "serial": op_id.serial,
            "start": operation.invoked_at,
            "end": end,
            "status": operation.status.value,
            "rounds": operation.rounds_used,
        })
        rounds = operation.rounds
        for index, record in enumerate(rounds):
            if index + 1 < len(rounds):
                round_end: int | None = rounds[index + 1].started_at
            else:
                round_end = end
            destinations = record.spec.destinations or object_ids
            held, dropped = adversary.get((op_id, record.round_no), (0, 0))
            span: dict[str, Any] = {
                "span": "round",
                "client": str(operation.client),
                "op": op_id.kind,
                "serial": op_id.serial,
                "round": record.round_no,
                "tag": record.spec.tag,
                "start": record.started_at,
                "end": round_end,
                "wait": None if round_end is None else round_end - record.started_at,
                "destinations": [str(dst) for dst in destinations],
                "replies": len(record.replies),
                "needed": record.spec.rule.min_count,
                "held": held,
                "dropped": dropped,
            }
            phase = REPAIR_PHASES.get(record.spec.tag)
            if phase is not None:
                span["phase"] = phase
            spans.append(span)
    spans.extend(_recovery_spans(simulator))
    spans.extend(_fault_spans(simulator))
    spans.extend(_sync_spans(simulator))
    return spans


#: Phases that open/close outage windows; every other logged phase is a
#: point fault event (see :func:`_fault_spans`).
_WINDOW_PHASES = ("down", "recovered")


def _recovery_spans(simulator: Simulator) -> list[dict[str, Any]]:
    """Outage windows from the observe-gated fault phase logs."""
    spans: list[dict[str, Any]] = []
    for pid in sorted(simulator.objects, key=str):
        server = simulator.objects[pid]
        behavior = server.behavior
        log = getattr(behavior, "phase_log", None)
        if not log:
            continue
        open_at: int | None = None
        for time, phase in log:
            if phase == "down":
                open_at = time
            elif phase == "recovered" and open_at is not None:
                spans.append({
                    "span": "recovery",
                    "object": str(pid),
                    "behavior": behavior.describe(),
                    "start": open_at,
                    "end": time,
                })
                open_at = None
        if open_at is not None:
            # Never rejoined (permanent loss): an open outage window.
            spans.append({
                "span": "recovery",
                "object": str(pid),
                "behavior": behavior.describe(),
                "start": open_at,
                "end": None,
            })
    return spans


def _fault_spans(simulator: Simulator) -> list[dict[str, Any]]:
    """Point fault events from the non-outage phases of the fault logs.

    Byzantine onsets (``stale``/``forging``/``replay``), per-message
    omissions (``omit``) and timed-fault activations (``fired``) have no
    natural end time, so each becomes a single ``fault`` event rather than
    a window — every fault family is visible on the span timeline.
    """
    spans: list[dict[str, Any]] = []
    for pid in sorted(simulator.objects, key=str):
        server = simulator.objects[pid]
        behavior = server.behavior
        log = getattr(behavior, "phase_log", None)
        if not log:
            continue
        for time, phase in log:
            if phase in _WINDOW_PHASES:
                continue
            spans.append({
                "span": "fault",
                "object": str(pid),
                "behavior": behavior.describe(),
                "phase": phase,
                "time": time,
            })
    return spans


def _sync_spans(simulator: Simulator) -> list[dict[str, Any]]:
    """Durable-journal sync points from the observe-gated sync logs."""
    spans: list[dict[str, Any]] = []
    for pid in sorted(simulator.objects, key=str):
        store = getattr(simulator.objects[pid].handler, "store", None)
        log = getattr(store, "sync_log", None)
        if not log:
            continue
        for time, records, nbytes in log:
            spans.append({
                "span": "sync",
                "object": str(pid),
                "time": time,
                "records": records,
                "bytes": nbytes,
            })
    return spans
