"""Observability: spans, metrics, and timeline export derived from runs.

Everything here is post-hoc — derived from bookkeeping the engines
already keep byte-identical across the event and batched simulators —
so observability adds no hot-path cost when off and no determinism
hazard when on.  See :mod:`repro.obs.spans` for the span vocabulary,
:mod:`repro.obs.metrics` for metric names and sinks, and
:mod:`repro.obs.export` for the output formats.
"""

from repro.obs.export import (
    chrome_trace_events,
    dump_metrics_jsonl,
    dump_spans_jsonl,
    summarize_spans,
    write_chrome_trace,
)
from repro.obs.metrics import (
    RESERVOIR_SIZE,
    MetricsRegistry,
    MetricsSink,
    StreamingSink,
    derive_metrics,
)
from repro.obs.spans import REPAIR_PHASES, derive_spans

__all__ = [
    "REPAIR_PHASES",
    "RESERVOIR_SIZE",
    "MetricsRegistry",
    "MetricsSink",
    "StreamingSink",
    "chrome_trace_events",
    "derive_metrics",
    "derive_spans",
    "dump_metrics_jsonl",
    "dump_spans_jsonl",
    "summarize_spans",
    "write_chrome_trace",
]
