"""Named counters and histograms with pluggable, bounded-memory sinks.

A :class:`MetricsSink` receives ``count``/``observe`` calls and renders a
deterministic ``snapshot()`` — a sorted list of plain-data records, one
per metric.  Two sinks ship built in:

* :class:`MetricsRegistry` — exact: every histogram sample is retained.
  The default for per-trial derivation, where sample counts are small and
  byte-identical snapshots across engines matter.
* :class:`StreamingSink` — bounded memory: histograms keep exact running
  ``count``/``sum``/``min``/``max`` plus a fixed-size reservoir
  (Vitter's algorithm R, deterministically seeded per metric name) for
  quantile estimates.  Sized for million-operation streaming runs: memory
  is O(metrics × reservoir), independent of sample count.  While a
  histogram has at most ``reservoir`` samples its snapshot is exactly the
  registry's, so small runs can swap sinks without changing output.

Metric vocabulary used by :func:`derive_metrics`:

==========================  ============================================
``messages.<kind>.<tag>``   counter: wire observations by trace kind
                            (send/deliver/hold/drop) and protocol tag
``ops.<kind>``              counter: completed operations by kind
``ops.incomplete``          counter: operations pending/aborted at quiescence
``rounds.<kind>``           histogram: rounds per completed operation
``quorum.wait``             histogram: virtual ticks from round start to
                            quorum (terminated rounds only)
``events.executed``         counter: simulator events the run executed
``journal.sync.count``      counter: durable-journal syncs
``journal.sync.bytes``      counter: frame bytes made durable
``staleness.lag``           histogram: per-read staleness samples
                            (non-atomic consistency models only)
==========================  ============================================
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Iterable, Sequence

from repro.sim.tracing import MessageTrace

#: Default reservoir size of the streaming sink (per histogram).
RESERVOIR_SIZE = 512

#: Quantiles reported in every histogram snapshot.
_QUANTILES = ((50, "p50"), (90, "p90"), (99, "p99"))


def _quantile(ordered: Sequence[float], percentile: int) -> float:
    """Nearest-rank quantile of an ascending sample list."""
    rank = max(0, -(-percentile * len(ordered) // 100) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _histogram_record(
    name: str, count: int, total: float, low: float, high: float,
    ordered: Sequence[float],
) -> dict[str, Any]:
    record: dict[str, Any] = {
        "metric": name,
        "type": "histogram",
        "count": count,
        "sum": total,
        "min": low,
        "max": high,
        "mean": round(total / count, 6),
    }
    for percentile, label in _QUANTILES:
        record[label] = _quantile(ordered, percentile)
    return record


class MetricsSink:
    """The sink protocol: named counters plus histogram observations."""

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        raise NotImplementedError

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        raise NotImplementedError

    def snapshot(self) -> list[dict[str, Any]]:
        """Plain-data records, sorted by metric name (deterministic)."""
        raise NotImplementedError


class MetricsRegistry(MetricsSink):
    """Exact sink: retains every histogram sample."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._series: dict[str, list[float]] = {}

    def count(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        self._series.setdefault(name, []).append(value)

    def snapshot(self) -> list[dict[str, Any]]:
        records: list[dict[str, Any]] = [
            {"metric": name, "type": "counter", "value": value}
            for name, value in self._counters.items()
        ]
        for name, samples in self._series.items():
            ordered = sorted(samples)
            records.append(_histogram_record(
                name, len(samples), sum(samples), ordered[0], ordered[-1], ordered,
            ))
        records.sort(key=lambda record: record["metric"])
        return records


class _Reservoir:
    """Running stats plus a fixed-size deterministic sample (algorithm R)."""

    __slots__ = ("count", "total", "low", "high", "sample", "_rng", "_cap")

    def __init__(self, name: str, cap: int) -> None:
        self.count = 0
        self.total = 0.0
        self.low = 0.0
        self.high = 0.0
        self.sample: list[float] = []
        # Seeded per metric name so the retained sample is a pure function
        # of the observation sequence — identical across engines and runs.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._cap = cap

    def add(self, value: float) -> None:
        if self.count == 0:
            self.low = self.high = value
        else:
            if value < self.low:
                self.low = value
            if value > self.high:
                self.high = value
        if self.count < self._cap:
            self.sample.append(value)
        else:
            slot = self._rng.randint(0, self.count)
            if slot < self._cap:
                self.sample[slot] = value
        self.count += 1
        self.total += value


class StreamingSink(MetricsSink):
    """Bounded-memory sink: exact counters, reservoir-sampled histograms."""

    def __init__(self, reservoir: int = RESERVOIR_SIZE) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must hold at least one sample")
        self._counters: dict[str, int] = {}
        self._reservoirs: dict[str, _Reservoir] = {}
        self._cap = reservoir

    def count(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        reservoir = self._reservoirs.get(name)
        if reservoir is None:
            self._reservoirs[name] = reservoir = _Reservoir(name, self._cap)
        reservoir.add(value)

    def snapshot(self) -> list[dict[str, Any]]:
        records: list[dict[str, Any]] = [
            {"metric": name, "type": "counter", "value": value}
            for name, value in self._counters.items()
        ]
        for name, reservoir in self._reservoirs.items():
            # sum is exact; quantiles come from the (possibly sampled)
            # reservoir.  Integer totals stay integers so small runs match
            # the exact registry byte for byte.
            total = reservoir.total
            if total == int(total):
                total = int(total)
            records.append(_histogram_record(
                name, reservoir.count, total, reservoir.low, reservoir.high,
                sorted(reservoir.sample),
            ))
        records.sort(key=lambda record: record["metric"])
        return records


def derive_metrics(
    spans: Iterable[dict[str, Any]],
    trace: MessageTrace,
    *,
    events: int = 0,
    staleness: Iterable[int] = (),
    sink: MetricsSink | None = None,
) -> list[dict[str, Any]]:
    """Fold a run's spans and wire trace into a metrics snapshot.

    Pure data in, pure data out: feed the records :func:`derive_spans`
    built (plus the trace for per-tag message counters, the executed
    event count, and optional staleness samples) into ``sink`` — the
    exact :class:`MetricsRegistry` by default — and return its snapshot.
    """
    if sink is None:
        sink = MetricsRegistry()
    for _time, kind, message in trace.entries:
        sink.count(f"messages.{kind.value}.{message.tag}")
    for span in spans:
        what = span["span"]
        if what == "op":
            if span["status"] == "complete":
                sink.count(f"ops.{span['op']}")
                sink.observe(f"rounds.{span['op']}", span["rounds"])
            else:
                sink.count("ops.incomplete")
        elif what == "round":
            if span["wait"] is not None:
                sink.observe("quorum.wait", span["wait"])
        elif what == "sync":
            sink.count("journal.sync.count")
            sink.count("journal.sync.bytes", span["bytes"])
    sink.count("events.executed", events)
    for sample in staleness:
        sink.observe("staleness.lag", sample)
    return sink.snapshot()
