"""Command-line reproducer: ``python -m repro <command>``.

Commands:

* ``summary``    — one-screen overview: both lower bounds executed at small
                   instances plus the measured latency matrix.
* ``read-bound``  [--t T] [--k K]   — run Proposition 1, print the certificate.
* ``write-bound`` [--k K]           — run Lemma 1, print the certificate.
* ``latency``                       — measure the Section 5 latency matrix.
* ``recurrence`` [--max-k K]        — print the t_k table and the log bound.
* ``list-protocols``                — the protocol registry: names, models,
                                      resilience classes, advertised rounds.
* ``list-backends``                 — the system-backend registry: single,
                                      multi-writer, sharded, and plugins.
* ``list-scenarios`` [--t T]        — the scenario registry: fault plans and
                                      workload shapes at threshold ``t``.
* ``list-checkers``                 — the consistency-checker registry:
                                      atomicity, regularity, safety,
                                      linearizability and the parametric
                                      ``k-atomic(N)`` family.
* ``list-faults``                   — the fault-behaviour registry: crash,
                                      Byzantine echoes, the crash-recover
                                      family (needs ``--durability``) and the
                                      churn family, with each behaviour's
                                      accepted ``--fault-arg`` parameters.
* ``run`` --protocol NAME [--backend NAME] [--keys N] [--writers N]
  [--scenario NAME] [--faults NAME [--fault-arg K=V]...]
  [--durability none|mem|dir] [--repair MEMBER@AT]... [--xfer-quorum Q]
  [--consistency MODEL] [--check-model atomic|regular|safe|k-atomic [--k N]]
  [--t T] [--trials N] [--parallel] [--jsonl PATH] … —
  build a registry-driven experiment through the :class:`repro.api.Cluster`
  facade, run it (optionally on a process pool), print per-trial latencies
  and consistency-check verdicts, and optionally append the structured
  result as one JSON line.
* ``compare`` A.jsonl B.jsonl — diff two stored result files and flag
  round-count / latency / completion regressions (exit 1 when B regressed).
  Rows are matched on protocol, scenario, sizes, backend/key layout *and*
  consistency model, so runs from different backends or models are never
  compared as like-for-like.
* ``explore`` --protocol NAME [--max-holds N] [--strategy bfs|dfs]
  [--granularity operation|round] [--witness PATH] [--expect-violation] … —
  bounded model check over held-message schedules: certify the
  configuration over every bounded schedule or refute it with a minimized,
  replayable witness (exit 1 on violations, inverted by
  ``--expect-violation``).
* ``replay`` WITNESS.json — re-execute a saved schedule witness and
  re-check it; exit 0 iff the recorded violation reproduces byte-identically
  (same failed checks, same wire-trace fingerprint).
* ``stats`` SPANS.jsonl — summarize a span dump written by
  ``run --spans``: per-trial operation counts, worst rounds, quorum-wait
  stats, adversary interference, recoveries and journal syncs.

``run --trace PATH`` additionally dumps every trial's message trace as
JSONL (one ``TraceEvent`` per line) for offline inspection.  The
observability flags — ``--spans PATH`` (span records as JSONL),
``--metrics PATH`` (metrics snapshot as JSONL), ``--timeline PATH``
(Perfetto-loadable Chrome trace JSON) and ``--obs`` (terminal summary
table) — each enable the :mod:`repro.obs` layer for the run.

Everything runs in seconds on a laptop; nothing touches the network.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_read_bound(args: argparse.Namespace) -> int:
    from repro.core.read_bound import ReadLowerBoundConstruction
    from repro.registers.strawman import TwoRoundReadProtocol

    construction = ReadLowerBoundConstruction(
        lambda: TwoRoundReadProtocol(write_rounds=args.k), t=args.t
    )
    outcome = construction.execute()
    print(outcome.certificate.render())
    return 0 if outcome.certificate.valid else 1


def _cmd_write_bound(args: argparse.Namespace) -> int:
    from repro.core.write_bound import WriteLowerBoundConstruction
    from repro.registers.strawman import ThreeRoundReadProtocol

    construction = WriteLowerBoundConstruction(
        lambda: ThreeRoundReadProtocol(write_rounds=args.k), k=args.k
    )
    outcome = construction.execute()
    print(outcome.certificate.render())
    return 0 if outcome.certificate.valid else 1


def _cmd_latency(_args: argparse.Namespace) -> int:
    from repro.analysis.metrics import measure_latency
    from repro.analysis.tables import format_table
    from repro.registers.abd import AbdProtocol
    from repro.registers.base import RegisterSystem
    from repro.registers.fast_regular import FastRegularProtocol
    from repro.registers.secret_token import SecretTokenProtocol
    from repro.registers.transform_atomic import RegularToAtomicProtocol
    from repro.workloads.generator import WorkloadGenerator

    suite = [
        ("abd", lambda: AbdProtocol()),
        ("fast-regular", lambda: FastRegularProtocol()),
        ("secret-token", lambda: SecretTokenProtocol()),
        ("atomic(fast-regular)",
         lambda: RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)),
        ("atomic(secret-token)",
         lambda: RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=2)),
    ]
    rows = []
    for name, factory in suite:
        system = RegisterSystem(factory(), t=1, n_readers=2)
        report = measure_latency(
            system, WorkloadGenerator(seed=1, spacing=150).plan(10), scenario="fault-free"
        )
        rows.append({
            "protocol": name,
            "write rounds": str(report.worst_write),
            "read rounds": str(report.worst_read),
        })
    print(format_table("measured worst-case rounds (t=1, fault-free)",
                       ("protocol", "write rounds", "read rounds"), rows))
    return 0


def _cmd_recurrence(args: argparse.Namespace) -> int:
    from repro.core.recurrence import max_write_rounds, t_k

    print("k   :", " ".join(f"{k:6d}" for k in range(1, args.max_k + 1)))
    print("t_k :", " ".join(f"{t_k(k):6d}" for k in range(1, args.max_k + 1)))
    print()
    for t in (1, 2, 5, 10, 100, 10_000):
        print(f"t={t:>6}: 3-round reads need writes of more than "
              f"{max_write_rounds(t)} rounds")
    return 0


def _cmd_list_protocols(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.api import protocol_specs

    rows = []
    for spec in protocol_specs():
        rows.append({
            "name": spec.name,
            "model": spec.model,
            "semantics": spec.semantics,
            "resilience": spec.resilience,
            "writes": str(spec.write_rounds),
            "reads": spec.reads_description(),
            "backend": spec.backend,
            "description": spec.description,
        })
    print(format_table(
        "registered protocols",
        ("name", "model", "semantics", "resilience", "writes", "reads", "backend",
         "description"),
        rows,
    ))
    return 0


def _cmd_list_backends(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.api import backend_specs

    rows = []
    for spec in backend_specs():
        rows.append({
            "name": spec.name,
            "keyed": "yes" if spec.keyed else "no",
            "multi-writer": "yes" if spec.multi_writer else "no",
            "aliases": ", ".join(spec.aliases) or "-",
            "description": spec.description,
        })
    print(format_table(
        "registered system backends",
        ("name", "keyed", "multi-writer", "aliases", "description"),
        rows,
    ))
    return 0


def _cmd_list_faults(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.api import fault_specs

    rows = []
    for spec in fault_specs():
        params = spec.params()
        if params is None:
            accepted = "(any)"  # maker takes **kwargs; nothing to enumerate
        elif not params:
            accepted = "-"
        else:
            accepted = ", ".join(
                name if default is None else f"{name}={default}"
                for name, default in params.items()
            )
        rows.append({
            "name": spec.name,
            "model": spec.model,
            "aliases": ", ".join(spec.aliases) or "-",
            "--fault-arg": accepted,
            "description": spec.description,
        })
    print(format_table(
        "registered fault behaviours",
        ("name", "model", "aliases", "--fault-arg", "description"),
        rows,
    ))
    return 0


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.workloads.scenarios import available_scenarios, get_scenario

    rows = []
    for name in available_scenarios():
        scenario = get_scenario(name, args.t)
        plan = scenario.fault_plan
        faults = "none" if plan.maker is None else f"{plan.name}×{plan.effective_count(args.t)}"
        rows.append({
            "name": scenario.name,
            "faults": faults,
            "reads": f"{scenario.read_fraction:.2f}",
            "spacing": str(scenario.spacing),
            "description": scenario.description,
        })
    print(format_table(
        f"registered scenarios (t={args.t})",
        ("name", "faults", "reads", "spacing", "description"),
        rows,
    ))
    return 0


def _cmd_list_checkers(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.consistency import checker_specs

    rows = []
    for spec in checker_specs():
        rows.append({
            "name": spec.name,
            "parametric": "--k N" if spec.parametric else "-",
            "aliases": ", ".join(spec.aliases) or "-",
            "description": spec.description,
        })
    print(format_table(
        "registered consistency checkers",
        ("name", "parametric", "aliases", "description"),
        rows,
    ))
    return 0


def _checks_from_args(args: argparse.Namespace) -> tuple[str, ...]:
    """The check names a ``run``/``explore`` invocation asks for.

    ``--check`` names are taken verbatim (aliases and ``k-atomic(N)``
    spellings allowed), ``--check-model`` appends its model's checker, and
    ``--k`` parameterizes whichever of them is a bare ``k-atomic``.  With
    neither flag the protocol's own default check applies.
    """
    from repro.api import get_spec
    from repro.consistency import canonical_check_name
    from repro.errors import ConfigurationError

    names = list(args.check or ())
    if getattr(args, "check_model", None):
        names.append(args.check_model)
    k = getattr(args, "k", None)
    if not names:
        if k is not None:
            raise ConfigurationError(
                "--k has no effect without --check-model k-atomic or --check k-atomic"
            )
        return (get_spec(args.protocol).default_check(),)
    canonical = tuple(canonical_check_name(name, k) for name in names)
    if k is not None and not any(name.startswith("k-atomic") for name in canonical):
        raise ConfigurationError(
            "--k has no effect without --check-model k-atomic or --check k-atomic"
        )
    return canonical


def _cluster_from_args(args: argparse.Namespace):
    """The :class:`~repro.api.Cluster` both ``run`` and ``explore`` build.

    Flags one subcommand lacks (``--scenario``, ``--allow-overfault``,
    ``--key-skew``) fall back to their no-op defaults via ``getattr``.
    """
    import json

    from repro.api import Cluster
    from repro.errors import ConfigurationError

    cluster = Cluster(
        args.protocol,
        t=args.t,
        S=args.S,
        n_readers=args.readers,
        backend=args.backend,
        keys=args.keys,
        n_writers=args.writers_count,
        engine=args.engine,
        durability=getattr(args, "durability", "none"),
        consistency=getattr(args, "consistency", "atomic"),
        allow_overfault=getattr(args, "allow_overfault", False),
    )
    if getattr(args, "scenario", None):
        cluster = cluster.with_scenario(args.scenario)
    fault_kwargs = {}
    for item in getattr(args, "fault_arg", None) or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"--fault-arg expects KEY=VALUE, got {item!r}")
        try:
            parsed = json.loads(value)  # numbers/bools; bare words stay strings
        except json.JSONDecodeError:
            parsed = value
        fault_kwargs[key.replace("-", "_")] = parsed
    if args.faults:
        cluster = cluster.with_faults(
            args.faults, count=args.count, strict=args.strict, **fault_kwargs
        )
    elif fault_kwargs or args.count != 1 or args.strict:
        raise ConfigurationError(
            "--fault-arg/--count/--strict have no effect without --faults"
        )
    repairs = []
    for item in getattr(args, "repair", None) or ():
        member, sep, at = item.partition("@")
        if not sep or not member or not at:
            raise ConfigurationError(f"--repair expects MEMBER@AT, got {item!r}")
        try:
            repairs.append((int(member), int(at)))
        except ValueError:
            raise ConfigurationError(
                f"--repair expects integers, got {item!r}"
            ) from None
    spares = getattr(args, "spares", None)
    xfer_quorum = getattr(args, "xfer_quorum", None)
    if repairs:
        cluster = cluster.with_repairs(*repairs, spares=spares, xfer_quorum=xfer_quorum)
    elif spares is not None or xfer_quorum is not None:
        raise ConfigurationError(
            "--spares/--xfer-quorum have no effect without --repair"
        )
    if (
        getattr(args, "obs", False)
        or getattr(args, "spans", None)
        or getattr(args, "metrics", None)
        or getattr(args, "timeline", None)
    ):
        cluster = cluster.with_observe()
    plan = []
    for item in getattr(args, "op", None) or ():
        head, sep, at = item.rpartition("@")
        kind, sep2, arg = head.partition(":")
        if not sep or not sep2 or kind not in ("write", "read"):
            raise ConfigurationError(
                f"--op expects write:VALUE@TIME or read:READER@TIME, got {item!r}"
            )
        try:
            when = int(at)
            plan.append((kind, int(arg) if kind == "read" else arg, when))
        except ValueError:
            raise ConfigurationError(
                f"--op expects an integer time (and reader index), got {item!r}"
            ) from None
    if plan:
        return cluster.with_operations(plan)
    return cluster.with_workload(reads=args.reads, spacing=args.spacing,
                                 operations=args.ops,
                                 key_skew=getattr(args, "key_skew", None))


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    cluster = _cluster_from_args(args)
    checks = _checks_from_args(args)
    result = cluster.check(*checks).run(
        trials=args.trials,
        seed=args.seed,
        keep_history=False,  # the CLI only reports aggregates and verdicts
        keep_trace=args.trace is not None,
        parallel=args.parallel,
        max_workers=args.workers,
    )
    if args.jsonl:
        with open(args.jsonl, "a", encoding="utf-8") as sink:
            sink.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        print(f"[appended structured result to {args.jsonl}]")
    if args.trace:
        from repro.sim.tracing import dump_trace_jsonl

        events = 0
        with open(args.trace, "w", encoding="utf-8") as sink:
            for trial in result.trials:
                events += dump_trace_jsonl(trial.trace, sink, extra={"trial": trial.trial})
        print(f"[wrote {events} trace events to {args.trace}]")
    if args.spans:
        from repro.obs import dump_spans_jsonl

        lines = 0
        with open(args.spans, "w", encoding="utf-8") as sink:
            for trial in result.trials:
                lines += dump_spans_jsonl(
                    trial.obs["spans"], sink, extra={"trial": trial.trial}
                )
        print(f"[wrote {lines} span records to {args.spans}]")
    if args.metrics:
        from repro.obs import dump_metrics_jsonl

        lines = 0
        with open(args.metrics, "w", encoding="utf-8") as sink:
            for trial in result.trials:
                lines += dump_metrics_jsonl(
                    trial.obs["metrics"], sink, extra={"trial": trial.trial}
                )
        print(f"[wrote {lines} metric records to {args.metrics}]")
    if args.timeline:
        from repro.obs import write_chrome_trace

        with open(args.timeline, "w", encoding="utf-8") as sink:
            events = write_chrome_trace(
                [
                    (
                        trial.trial,
                        f"trial {trial.trial} — {result.protocol} @ {result.scenario}",
                        trial.obs["spans"],
                    )
                    for trial in result.trials
                ],
                sink,
            )
        print(f"[wrote a {events}-event timeline to {args.timeline}; "
              "open it at https://ui.perfetto.dev]")
    if args.obs:
        from repro.obs import summarize_spans

        print(summarize_spans([
            dict(span, trial=trial.trial)
            for trial in result.trials
            for span in trial.obs["spans"]
        ]))
    print(result.render())
    if not result.ok:
        for trial, verdict in result.failures():
            print(f"trial {trial}: {verdict.check} FAILED — {verdict.explanation}")
        if result.incomplete:
            print(f"{result.incomplete} operations did not complete")
        return 1
    print(f"\nall {len(result.trials)} trials complete; checks passed: {', '.join(checks)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.obs import summarize_spans

    records = []
    try:
        source = open(args.spans_file, encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read {args.spans_file}: {error}") from None
    with source:
        for line_no, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{args.spans_file}:{line_no}: not valid JSON ({error})"
                ) from None
    print(summarize_spans(records))
    return 0


def _load_jsonl(path: str) -> dict[tuple, dict]:
    """Index a ``run --jsonl`` file by protocol, scenario, sizes, backend
    and consistency model.

    The key includes the backend name, key count, writer count and the
    consistency model (absent fields mean the default single backend with
    atomic reads, so files written before backends or the consistency
    spectrum existed stay comparable).  Rows produced by different
    backends therefore never match each other — a sharded 8-key run is not
    like-for-like with a single-register one even if every other dimension
    agrees.  A later line for the same key supersedes earlier ones, so a
    file that accumulates repeated runs compares at its latest state.
    """
    import json

    from repro.errors import ConfigurationError

    runs: dict[tuple, dict] = {}
    with open(path, encoding="utf-8") as source:
        for line_no, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(f"{path}:{line_no}: not valid JSON ({error})") from None
            key = (record.get("protocol"), record.get("scenario"),
                   record.get("t"), record.get("n_readers"),
                   record.get("backend", "single"), record.get("keys", 1),
                   record.get("writers", 1), record.get("engine", "event"),
                   record.get("durability", "none"),
                   record.get("consistency", "atomic"))
            runs[key] = record
    return runs


def _mean_rounds(record: dict, kind: str) -> float:
    rounds = [r for trial in record.get("trials", []) for r in trial.get(f"{kind}_rounds", [])]
    return sum(rounds) / len(rounds) if rounds else 0.0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Flag regressions of B relative to A: rounds, latency means, completion."""
    baseline = _load_jsonl(args.baseline)
    candidate = _load_jsonl(args.candidate)

    regressions: list[str] = []
    improvements: list[str] = []
    shared = [key for key in baseline if key in candidate]
    for key in shared:
        a, b = baseline[key], candidate[key]
        label = f"{key[0]} @ {key[1]} (t={key[2]}, {key[3]} readers)"
        if key[4] != "single":
            label += f" [{key[4]}, {key[5]} key(s), {key[6]} writer(s)]"
        if key[7] != "event":
            label += f" [engine={key[7]}]"
        if key[8] != "none":
            label += f" [durability={key[8]}]"
        if key[9] != "atomic":
            label += f" [consistency={key[9]}]"
        for metric in ("worst_write", "worst_read", "incomplete"):
            old, new = a.get(metric, 0), b.get(metric, 0)
            if new > old:
                regressions.append(f"{label}: {metric} {old} -> {new}")
            elif new < old:
                improvements.append(f"{label}: {metric} {old} -> {new}")
        for kind in ("write", "read"):
            old, new = _mean_rounds(a, kind), _mean_rounds(b, kind)
            if new > old * (1.0 + args.mean_tolerance) + 1e-9:
                regressions.append(f"{label}: mean {kind} rounds {old:.2f} -> {new:.2f}")
            elif new < old - 1e-9:
                improvements.append(f"{label}: mean {kind} rounds {old:.2f} -> {new:.2f}")

    print(f"compared {len(shared)} run(s) present in both files")
    for key in baseline:
        if key not in candidate:
            print(f"  only in {args.baseline}: {key[0]} @ {key[1]}")
    for key in candidate:
        if key not in baseline:
            print(f"  only in {args.candidate}: {key[0]} @ {key[1]}")
    if improvements:
        print("improvements:")
        for line in improvements:
            print(f"  {line}")
    if regressions:
        print("REGRESSIONS:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("no regressions detected")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    cluster = _cluster_from_args(args)
    checks = _checks_from_args(args)
    result = cluster.check(*checks).explore(
        max_holds=args.max_holds,
        max_schedules=args.max_schedules,
        max_events=args.max_events,
        granularity=args.granularity,
        strategy=args.strategy,
        seed=args.seed,
        stop_on_violation=args.stop_on_violation,
        fault_timing=args.fault_timing,
        symmetry=args.symmetry,
        parallel=args.parallel,
        max_workers=args.workers,
    )
    print(result.render())
    if args.witness and result.witnesses:
        path = result.witnesses[0].save(args.witness)
        print(f"[saved first witness to {path}]")
    found = bool(result.witnesses)
    if args.expect_violation:
        if not found:
            print("expected a violation but the bounded space is clean", file=sys.stderr)
        return 0 if found else 1
    return 1 if found else 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    import json

    cluster = _cluster_from_args(args)
    result = cluster.frontier(
        max_k=args.max_k,
        max_holds=args.max_holds,
        max_schedules=args.max_schedules,
        max_events=args.max_events,
        granularity=args.granularity,
        strategy=args.strategy,
        seed=args.seed,
        fault_timing=not args.no_fault_timing,
        symmetry=args.symmetry,
        parallel=args.parallel,
        max_workers=args.workers,
    )
    print(result.render())
    if args.jsonl:
        with open(args.jsonl, "a", encoding="utf-8") as sink:
            sink.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        print(f"[appended structured frontier to {args.jsonl}]")
    if args.witness:
        if result.witness is None:
            print("no refutation witness to save (nothing was refuted)",
                  file=sys.stderr)
        else:
            path = result.witness.save(args.witness)
            print(f"[saved refutation witness to {path}]")
    if args.expect_strongest is not None:
        if result.strongest != args.expect_strongest:
            print(f"expected strongest certified model "
                  f"{args.expect_strongest!r}, got {result.strongest!r}",
                  file=sys.stderr)
            return 1
        return 0
    return 0 if result.strongest is not None else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.explore import ScheduleWitness

    witness = ScheduleWitness.load(args.witness)
    print(f"replaying {args.witness}: {witness.describe()}")
    outcome = witness.replay()
    for check, explanation in outcome.failures:
        print(f"  {check} FAILED — {explanation}")
    for check in outcome.passed:
        print(f"  {check} ok")
    if witness.reproduces(outcome):
        print(f"violation reproduced byte-identically "
              f"(trace {outcome.trace_hash}, {outcome.held_messages} held message(s))")
        return 0
    print("REPLAY DIVERGED from the recorded witness "
          f"(recorded trace {witness.trace_hash}, replayed {outcome.trace_hash})",
          file=sys.stderr)
    return 1


def _cmd_summary(_args: argparse.Namespace) -> int:
    from repro.core.read_bound import ReadLowerBoundConstruction
    from repro.core.write_bound import WriteLowerBoundConstruction
    from repro.registers.strawman import ThreeRoundReadProtocol, TwoRoundReadProtocol

    print("The Complexity of Robust Atomic Storage (PODC'11) — reproduction summary")
    print("=" * 74)
    read = ReadLowerBoundConstruction(
        lambda: TwoRoundReadProtocol(write_rounds=2), t=1
    ).execute()
    print(f"Proposition 1 (no 2-round reads, S≤4t, R>3): certificate "
          f"{'VALID' if read.certificate.valid else 'INVALID'} "
          f"({read.runs_executed} runs)")
    write = WriteLowerBoundConstruction(
        lambda: ThreeRoundReadProtocol(write_rounds=2), k=2
    ).execute()
    print(f"Lemma 1 (3-round reads ⇒ Ω(log t) writes), k=2: certificate "
          f"{'VALID' if write.certificate.valid else 'INVALID'} "
          f"({write.runs_executed} runs)")
    print()
    _cmd_latency(_args)
    print("\nSee `pytest benchmarks/ --benchmark-only` for every figure/table.")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("summary", help="run both bounds + the latency matrix")

    read = sub.add_parser("read-bound", help="execute Proposition 1")
    read.add_argument("--t", type=int, default=1)
    read.add_argument("--k", type=int, default=2, help="victim write rounds")

    write = sub.add_parser("write-bound", help="execute Lemma 1")
    write.add_argument("--k", type=int, default=2)

    sub.add_parser("latency", help="measure the latency matrix")

    recurrence = sub.add_parser("recurrence", help="print t_k and the log bound")
    recurrence.add_argument("--max-k", type=int, default=10)

    sub.add_parser("list-protocols", help="show the protocol registry")
    sub.add_parser("list-backends", help="show the system-backend registry")
    sub.add_parser("list-faults", help="show the fault-behaviour registry")
    sub.add_parser("list-checkers", help="show the consistency-checker registry")

    scenarios = sub.add_parser("list-scenarios", help="show the scenario registry")
    scenarios.add_argument("--t", type=int, default=1,
                           help="threshold the fault plans are sized for")

    run = sub.add_parser("run", help="run a registry-driven experiment")
    run.add_argument("--protocol", required=True, help="registry name (see list-protocols)")
    run.add_argument("--backend", default=None,
                     help="system backend (see list-backends; default: the protocol's own)")
    run.add_argument("--keys", type=int, default=None,
                     help="key count for keyed backends (e.g. --backend sharded)")
    run.add_argument("--writers", dest="writers_count", type=int, default=None,
                     help="writer family size for multi-writer backends")
    run.add_argument("--key-skew", type=float, default=0.0,
                     help="Zipf-style key skew for keyed workloads (0 = uniform)")
    run.add_argument("--engine", choices=("event", "batched"), default="event",
                     help="simulation engine (batched: wave-stepped, "
                          "identical results, faster)")
    run.add_argument("--durability", choices=("none", "mem", "dir"), default="none",
                     help="object-state durability (mem: in-memory journal, "
                          "dir: append-only log per object; enables "
                          "crash-recover faults and the space meter)")
    run.add_argument("--consistency", default="atomic", metavar="MODEL",
                     help="consistency model the backend serves: atomic "
                          "(default) or k-atomic(N) (bounded-stale reads; "
                          "routes single/sharded onto the k-atomic backend)")
    run.add_argument("--t", type=int, default=1, help="fault threshold")
    run.add_argument("--S", type=int, default=None, help="object count (default: protocol minimum)")
    run.add_argument("--readers", type=int, default=2, help="reader population")
    run.add_argument("--scenario", default=None,
                     help="named scenario (fault plan + workload shape)")
    run.add_argument("--faults", default=None, help="fault behaviour name (e.g. crash, stale-echo)")
    run.add_argument("--count", type=int, default=1, help="how many objects misbehave")
    run.add_argument("--fault-arg", dest="fault_arg", action="append", default=None,
                     metavar="KEY=VALUE",
                     help="fault-behaviour parameter (repeatable; e.g. "
                          "--fault-arg survive_messages=1 --fault-arg lag=2)")
    run.add_argument("--strict", action="store_true",
                     help="error instead of clamping --count to t")
    run.add_argument("--allow-overfault", action="store_true",
                     help="permit more than t faulty objects (churn/under-provisioned runs)")
    run.add_argument("--repair", action="append", default=None, metavar="MEMBER@AT",
                     help="replace member MEMBER with a spare at time AT "
                          "(repeatable; needs --backend reconfig)")
    run.add_argument("--spares", type=int, default=None,
                     help="pre-provisioned spare objects (default: one per --repair)")
    run.add_argument("--xfer-quorum", type=int, default=None,
                     help="objects a state-transfer read must reach (default: S-t)")
    run.add_argument("--trials", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--ops", type=int, default=10, help="operations per trial")
    run.add_argument("--reads", type=float, default=0.6, help="read fraction")
    run.add_argument("--spacing", type=int, default=50, help="mean gap between invocations")
    run.add_argument("--check", action="append", default=None,
                     help="consistency check to run (repeatable; default: the protocol's own)")
    run.add_argument("--check-model", dest="check_model", default=None,
                     choices=("atomic", "regular", "safe", "k-atomic"),
                     help="consistency model to check against "
                          "(shorthand for --check; see list-checkers)")
    run.add_argument("--k", type=int, default=None,
                     help="staleness bound for --check-model/--check k-atomic")
    run.add_argument("--parallel", action="store_true",
                     help="execute trials on a process pool (identical results)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size with --parallel (default: one per CPU)")
    run.add_argument("--jsonl", default=None, metavar="PATH",
                     help="append the structured RunResult as one JSON line to PATH")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="dump every trial's message trace as JSONL to PATH")
    run.add_argument("--spans", default=None, metavar="PATH",
                     help="write derived span records as JSONL to PATH "
                          "(enables observability)")
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="write per-trial metrics snapshots as JSONL to PATH "
                          "(enables observability)")
    run.add_argument("--timeline", default=None, metavar="PATH",
                     help="write a Perfetto-loadable Chrome trace timeline to "
                          "PATH (enables observability)")
    run.add_argument("--obs", action="store_true",
                     help="print a per-trial span summary table "
                          "(enables observability)")

    explore = sub.add_parser(
        "explore",
        help="bounded model check over held-message schedules",
    )
    explore.add_argument("--protocol", required=True,
                         help="registry name (see list-protocols)")
    explore.add_argument("--backend", default=None,
                         help="system backend (default: the protocol's own)")
    explore.add_argument("--keys", type=int, default=None,
                         help="key count for keyed backends")
    explore.add_argument("--writers", dest="writers_count", type=int, default=None,
                         help="writer family size for multi-writer backends")
    explore.add_argument("--engine", choices=("event", "batched"), default="event",
                         help="simulation engine schedules are evaluated on")
    explore.add_argument("--durability", choices=("none", "mem", "dir"), default="none",
                         help="object-state durability backing crash-recover faults")
    explore.add_argument("--consistency", default="atomic", metavar="MODEL",
                         help="consistency model the backend serves: atomic "
                              "(default) or k-atomic(N)")
    explore.add_argument("--t", type=int, default=1, help="fault threshold")
    explore.add_argument("--S", type=int, default=None,
                         help="object count (default: protocol minimum)")
    explore.add_argument("--readers", type=int, default=2, help="reader population")
    explore.add_argument("--scenario", default=None,
                         help="named scenario (fault plan + workload shape)")
    explore.add_argument("--faults", default=None,
                         help="fault behaviour name (e.g. crash, stale-echo)")
    explore.add_argument("--count", type=int, default=1, help="how many objects misbehave")
    explore.add_argument("--fault-arg", dest="fault_arg", action="append", default=None,
                         metavar="KEY=VALUE",
                         help="fault-behaviour parameter (repeatable)")
    explore.add_argument("--strict", action="store_true",
                         help="error instead of clamping --count to t")
    explore.add_argument("--allow-overfault", action="store_true",
                         help="permit more than t faulty objects (under-provisioned runs)")
    explore.add_argument("--repair", action="append", default=None, metavar="MEMBER@AT",
                         help="replace member MEMBER with a spare at time AT "
                              "(repeatable; needs --backend reconfig)")
    explore.add_argument("--spares", type=int, default=None,
                         help="pre-provisioned spare objects (default: one per --repair)")
    explore.add_argument("--xfer-quorum", type=int, default=None,
                         help="objects a state-transfer read must reach (default: S-t)")
    explore.add_argument("--ops", type=int, default=3, help="operations in the workload")
    explore.add_argument("--reads", type=float, default=0.6, help="read fraction")
    explore.add_argument("--spacing", type=int, default=50,
                         help="mean gap between invocations")
    explore.add_argument("--op", action="append", default=None,
                         metavar="KIND:ARG@TIME",
                         help="explicit operation plan entry (repeatable; "
                              "write:VALUE@TIME or read:READER@TIME; "
                              "overrides the generated workload)")
    explore.add_argument("--seed", type=int, default=0, help="workload seed")
    explore.add_argument("--check", action="append", default=None,
                         help="consistency check (repeatable; default: the protocol's own)")
    explore.add_argument("--check-model", dest="check_model", default=None,
                         choices=("atomic", "regular", "safe", "k-atomic"),
                         help="consistency model to check against "
                              "(shorthand for --check; see list-checkers)")
    explore.add_argument("--k", type=int, default=None,
                         help="staleness bound for --check-model/--check k-atomic")
    explore.add_argument("--max-holds", type=int, default=2,
                         help="most links a schedule may hold")
    explore.add_argument("--max-schedules", type=int, default=2000,
                         help="total schedule budget")
    explore.add_argument("--max-events", type=int, default=200_000,
                         help="simulator event budget per schedule")
    explore.add_argument("--granularity", choices=("operation", "round"),
                         default="operation", help="hold-link granularity")
    explore.add_argument("--strategy", choices=("bfs", "dfs"), default="bfs",
                         help="frontier order")
    explore.add_argument("--fault-timing", dest="fault_timing", action="store_true",
                         help="sweep per-object fault trigger points as "
                              "choice points (needs --faults, no --scenario)")
    explore.add_argument("--symmetry", action="store_true",
                         help="canonicalize schedules over interchangeable "
                              "fault-free objects (prunes symmetric twins)")
    explore.add_argument("--stop-on-violation", action="store_true",
                         help="stop at the first violating schedule (refutation mode)")
    explore.add_argument("--parallel", action="store_true",
                         help="evaluate frontier waves on a process pool")
    explore.add_argument("--workers", type=int, default=None,
                         help="process-pool size with --parallel")
    explore.add_argument("--witness", default=None, metavar="PATH",
                         help="save the first violation witness as JSON to PATH")
    explore.add_argument("--expect-violation", action="store_true",
                         help="exit 0 iff a violation IS found (CI refutation smoke)")

    frontier = sub.add_parser(
        "frontier",
        help="certify the strongest consistency model a configuration serves",
    )
    frontier.add_argument("--protocol", required=True,
                          help="registry name (see list-protocols)")
    frontier.add_argument("--backend", default=None,
                          help="system backend (default: the protocol's own)")
    frontier.add_argument("--keys", type=int, default=None,
                          help="key count for keyed backends")
    frontier.add_argument("--writers", dest="writers_count", type=int, default=None,
                          help="writer family size for multi-writer backends")
    frontier.add_argument("--engine", choices=("event", "batched"), default="event",
                          help="simulation engine schedules are evaluated on")
    frontier.add_argument("--durability", choices=("none", "mem", "dir"), default="none",
                          help="object-state durability backing crash-recover faults")
    frontier.add_argument("--t", type=int, default=1, help="fault threshold")
    frontier.add_argument("--S", type=int, default=None,
                          help="object count (default: protocol minimum)")
    frontier.add_argument("--readers", type=int, default=2, help="reader population")
    frontier.add_argument("--faults", default=None,
                          help="fault behaviour name (e.g. stale-echo, timed)")
    frontier.add_argument("--count", type=int, default=1,
                          help="how many objects misbehave")
    frontier.add_argument("--fault-arg", dest="fault_arg", action="append",
                          default=None, metavar="KEY=VALUE",
                          help="fault-behaviour parameter (repeatable; e.g. "
                               "--fault-arg inner=stale-echo --fault-arg at=99)")
    frontier.add_argument("--strict", action="store_true",
                          help="error instead of clamping --count to t")
    frontier.add_argument("--allow-overfault", action="store_true",
                          help="permit more than t faulty objects "
                               "(under-provisioned runs degrade gracefully)")
    frontier.add_argument("--ops", type=int, default=3,
                          help="operations in the generated workload")
    frontier.add_argument("--reads", type=float, default=0.6, help="read fraction")
    frontier.add_argument("--spacing", type=int, default=50,
                          help="mean gap between invocations")
    frontier.add_argument("--op", action="append", default=None,
                          metavar="KIND:ARG@TIME",
                          help="explicit operation plan entry (repeatable; "
                               "write:VALUE@TIME or read:READER@TIME; "
                               "overrides the generated workload)")
    frontier.add_argument("--seed", type=int, default=0, help="workload seed")
    frontier.add_argument("--max-k", type=int, default=4,
                          help="deepest k-atomic(k) rung on the ladder")
    frontier.add_argument("--max-holds", type=int, default=2,
                          help="most decisions a schedule may take")
    frontier.add_argument("--max-schedules", type=int, default=2000,
                          help="schedule budget per ladder rung")
    frontier.add_argument("--max-events", type=int, default=200_000,
                          help="simulator event budget per schedule")
    frontier.add_argument("--granularity", choices=("operation", "round"),
                          default="operation", help="hold-link granularity")
    frontier.add_argument("--strategy", choices=("bfs", "dfs"), default="bfs",
                          help="frontier order")
    frontier.add_argument("--no-fault-timing", dest="no_fault_timing",
                          action="store_true",
                          help="do not sweep fault trigger points "
                               "(facade-scheduled timing only)")
    frontier.add_argument("--symmetry", action="store_true",
                          help="canonicalize schedules over interchangeable "
                               "fault-free objects")
    frontier.add_argument("--parallel", action="store_true",
                          help="evaluate frontier waves on a process pool")
    frontier.add_argument("--workers", type=int, default=None,
                          help="process-pool size with --parallel")
    frontier.add_argument("--witness", default=None, metavar="PATH",
                          help="save the refutation witness (the schedule "
                               "breaking the next-stronger model) to PATH")
    frontier.add_argument("--jsonl", default=None, metavar="PATH",
                          help="append the structured frontier as one JSON "
                               "line to PATH")
    frontier.add_argument("--expect-strongest", default=None, metavar="MODEL",
                          help="exit 0 iff MODEL is the strongest certified "
                               "model (CI smoke)")

    replay = sub.add_parser(
        "replay", help="re-execute a saved schedule witness and re-check it"
    )
    replay.add_argument("witness", help="witness JSON written by explore --witness")

    compare = sub.add_parser(
        "compare", help="diff two run --jsonl files and flag regressions"
    )
    compare.add_argument("baseline", help="baseline .jsonl (the reference)")
    compare.add_argument("candidate", help="candidate .jsonl (flagged when worse)")
    compare.add_argument("--mean-tolerance", type=float, default=0.0,
                         help="relative slack on mean-round regressions (e.g. 0.05)")

    stats = sub.add_parser(
        "stats", help="summarize a span dump written by run --spans"
    )
    stats.add_argument("spans_file", help="spans .jsonl written by run --spans")

    args = parser.parse_args(argv)
    handlers = {
        "summary": _cmd_summary,
        "read-bound": _cmd_read_bound,
        "write-bound": _cmd_write_bound,
        "latency": _cmd_latency,
        "recurrence": _cmd_recurrence,
        "list-protocols": _cmd_list_protocols,
        "list-backends": _cmd_list_backends,
        "list-faults": _cmd_list_faults,
        "list-scenarios": _cmd_list_scenarios,
        "list-checkers": _cmd_list_checkers,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "explore": _cmd_explore,
        "frontier": _cmd_frontier,
        "replay": _cmd_replay,
        "stats": _cmd_stats,
    }
    try:
        return handlers[args.command](args)
    except Exception as error:  # ReproError and friends → friendly exit
        from repro.errors import ReproError

        if isinstance(error, ReproError):
            print(f"error: {error}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
