"""Threshold quorum parameters for crash and Byzantine storage.

The paper's model: ``S`` objects, up to ``t`` Byzantine, optimal resilience
``S = 3t + 1`` (footnote 1, citing [Martin-Alvisi-Dahlin 02]).  Clients wait
for at most ``S − t`` replies by default, since ``t`` faulty objects may stay
silent forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def optimal_resilience_objects(t: int) -> int:
    """Objects needed to tolerate ``t`` Byzantine faults: ``3t + 1``."""
    if t < 0:
        raise ConfigurationError("t must be non-negative")
    return 3 * t + 1


def max_tolerable_faults(S: int) -> int:
    """Largest ``t`` with ``3t + 1 <= S`` (Byzantine, unauthenticated)."""
    if S < 1:
        raise ConfigurationError("need at least one object")
    return (S - 1) // 3


def certification_threshold(t: int) -> int:
    """Votes needed so at least one voucher is correct: ``t + 1``."""
    if t < 0:
        raise ConfigurationError("t must be non-negative")
    return t + 1


@dataclass(frozen=True, slots=True)
class CrashThresholds:
    """Quorum sizes for crash-only storage (ABD regime).

    ABD needs any two quorums to intersect: majority quorums of size
    ``⌊S/2⌋ + 1`` tolerate ``t ≤ ⌈S/2⌉ − 1`` crashes.
    """

    S: int
    t: int

    def __post_init__(self) -> None:
        if self.S < 1:
            raise ConfigurationError("need at least one object")
        if not 0 <= self.t:
            raise ConfigurationError("t must be non-negative")
        if self.S < 2 * self.t + 1:
            raise ConfigurationError(
                f"crash-tolerant storage needs S >= 2t + 1 (got S={self.S}, t={self.t})"
            )

    @property
    def quorum(self) -> int:
        """Majority quorum size: any two quorums intersect."""
        return self.S // 2 + 1

    @property
    def wait_for(self) -> int:
        """Replies a client can always safely wait for: ``S − t``."""
        return self.S - self.t

    def quorums_intersect(self) -> bool:
        """Sanity: two quorums share at least one object."""
        return 2 * self.quorum - self.S >= 1


@dataclass(frozen=True, slots=True)
class ByzantineThresholds:
    """Quorum sizes for Byzantine storage with unauthenticated data.

    With ``S = 3t + 1`` and clients waiting for ``q = S − t = 2t + 1``
    replies:

    * any two reply sets intersect in ``2q − S = t + 1`` objects, at least
      one of which is correct (*masking* intersection);
    * a value reported identically by ``t + 1`` repliers is genuine
      (*certification*);
    * a complete write stored at ``q`` objects has at least ``q − t = t + 1``
      correct holders, and any later reply set contains at least
      ``q + (t+1) − S = 1`` of them (*freshness witness*).
    """

    S: int
    t: int

    def __post_init__(self) -> None:
        if self.S < 1:
            raise ConfigurationError("need at least one object")
        if self.t < 0:
            raise ConfigurationError("t must be non-negative")
        if self.S < 3 * self.t + 1:
            raise ConfigurationError(
                f"Byzantine unauthenticated storage needs S >= 3t + 1 "
                f"(got S={self.S}, t={self.t})"
            )

    @classmethod
    def optimally_resilient(cls, t: int) -> "ByzantineThresholds":
        """The ``S = 3t + 1`` configuration the paper calls optimal."""
        return cls(S=optimal_resilience_objects(t), t=t)

    @property
    def quorum(self) -> int:
        """Replies a client waits for: ``S − t``."""
        return self.S - self.t

    @property
    def certify(self) -> int:
        """Identical reports guaranteeing genuineness: ``t + 1``."""
        return certification_threshold(self.t)

    @property
    def is_optimal(self) -> bool:
        """True exactly when ``S = 3t + 1``."""
        return self.S == 3 * self.t + 1

    def reply_sets_intersect_correctly(self) -> bool:
        """Two quorums share at least one *correct* object."""
        return 2 * self.quorum - self.S - self.t >= 1

    def correct_holders_after_complete_phase(self) -> int:
        """Correct objects guaranteed to store a phase acked by a quorum."""
        return self.quorum - self.t

    def freshness_witnesses(self) -> int:
        """Correct fresh holders guaranteed inside any later reply set.

        ``q + (q − t) − S``; equals 1 at optimal resilience — the
        single-witness phenomenon that makes unauthenticated reads hard and
        drives both lower bounds.
        """
        return 2 * self.quorum - self.t - self.S
