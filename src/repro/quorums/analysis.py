"""Set-system analysis of quorum families.

Beyond threshold systems, the library can analyse explicit quorum families
(sets of object subsets): intersection sizes, availability under fault sets,
and the Malkhi–Reiter classification (dissemination vs masking systems).
These back the resilience-frontier benchmark (E7) and give property tests a
second, independent route to the threshold arithmetic.
"""

from __future__ import annotations

from itertools import combinations
from typing import AbstractSet, Collection, FrozenSet, Iterable

from repro.errors import ConfigurationError
from repro.types import ProcessId

QuorumFamily = Collection[FrozenSet[ProcessId]]


def intersection_size(family: QuorumFamily) -> int:
    """Minimum pairwise intersection size over the family.

    A family of fewer than two quorums has no pair; by convention the
    minimum is then the size of the single quorum (or 0 for an empty family).
    """
    quorums = list(family)
    if not quorums:
        return 0
    if len(quorums) == 1:
        return len(quorums[0])
    return min(len(a & b) for a, b in combinations(quorums, 2))


def quorum_availability(family: QuorumFamily, faulty: AbstractSet[ProcessId]) -> bool:
    """True when some quorum avoids every faulty object (liveness)."""
    return any(not (quorum & faulty) for quorum in family)


def is_dissemination_system(family: QuorumFamily, fault_sets: Iterable[AbstractSet[ProcessId]]) -> bool:
    """Malkhi–Reiter dissemination condition (self-verifying data).

    Any two quorums intersect outside every fault set, and some quorum
    survives every fault set.  Sufficient for *authenticated* storage only.
    """
    quorums = list(family)
    if not quorums:
        raise ConfigurationError("empty quorum family")
    fault_list = [frozenset(b) for b in fault_sets]
    for a, b in combinations(quorums, 2):
        core = a & b
        if any(core <= bad for bad in fault_list):
            return False
    return all(quorum_availability(quorums, bad) for bad in fault_list)


def is_masking_system(family: QuorumFamily, fault_sets: Iterable[AbstractSet[ProcessId]]) -> bool:
    """Malkhi–Reiter masking condition (unauthenticated data).

    For any quorums ``Q1, Q2`` and fault sets ``B1, B2``:
    ``(Q1 ∩ Q2) \\ B1 ⊄ B2`` — the correct part of the intersection cannot be
    out-voted by another fault set — and availability holds.  Threshold
    masking systems need ``S ≥ 4t + 1`` for *safe* reads without write-backs;
    the ``3t + 1`` protocols of this library sidestep masking by certifying
    values with ``t + 1`` identical reports instead.
    """
    quorums = list(family)
    if not quorums:
        raise ConfigurationError("empty quorum family")
    fault_list = [frozenset(b) for b in fault_sets]
    pairs = list(combinations(quorums, 2)) + [(q, q) for q in quorums]
    for a, b in pairs:
        core = a & b
        for bad1 in fault_list:
            survivors = core - bad1
            if any(survivors <= bad2 for bad2 in fault_list):
                return False
    return all(quorum_availability(quorums, bad) for bad in fault_list)


def threshold_family(objects: Collection[ProcessId], quorum_size: int) -> list[FrozenSet[ProcessId]]:
    """All subsets of ``objects`` of exactly ``quorum_size`` (small S only)."""
    pool = sorted(objects)
    if not 0 < quorum_size <= len(pool):
        raise ConfigurationError(
            f"quorum size {quorum_size} out of range for {len(pool)} objects"
        )
    return [frozenset(combo) for combo in combinations(pool, quorum_size)]


def threshold_fault_sets(objects: Collection[ProcessId], t: int) -> list[FrozenSet[ProcessId]]:
    """All subsets of ``objects`` of size exactly ``t`` (small S only)."""
    pool = sorted(objects)
    if not 0 <= t <= len(pool):
        raise ConfigurationError(f"t={t} out of range for {len(pool)} objects")
    if t == 0:
        return [frozenset()]
    return [frozenset(combo) for combo in combinations(pool, t)]
