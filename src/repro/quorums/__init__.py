"""Quorum arithmetic for crash and Byzantine threshold systems.

Everything the protocols and the lower-bound constructions need to reason
about reply-set sizes lives here: resilience conditions, intersection
lemmas, certification thresholds, and the block-cardinality algebra used by
the write lower bound.
"""

from repro.quorums.threshold import (
    ByzantineThresholds,
    CrashThresholds,
    certification_threshold,
    max_tolerable_faults,
    optimal_resilience_objects,
)
from repro.quorums.analysis import (
    intersection_size,
    is_dissemination_system,
    is_masking_system,
    quorum_availability,
)

__all__ = [
    "CrashThresholds",
    "ByzantineThresholds",
    "optimal_resilience_objects",
    "max_tolerable_faults",
    "certification_threshold",
    "intersection_size",
    "quorum_availability",
    "is_masking_system",
    "is_dissemination_system",
]
