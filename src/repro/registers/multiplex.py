"""Multiplexing several logical registers over one set of physical objects.

The regular→atomic transformation of [4, 20] uses ``R + 1`` SWMR regular
registers; the SWMR→MWMR transformation stacks one atomic register per
writer on top of that.  All of these logical registers live on the *same*
``S`` storage objects, and — crucially for round counting — operations on
different logical registers proceed **in the same communication rounds**:
one physical message carries the per-register invocations side by side.

This module provides the two halves of that multiplexing:

* :class:`MultiplexObjectHandler` — object state is a dictionary of
  per-register substrate states; a ``MULTI`` message carries a bundle of
  inner calls, each dispatched to its register's state, and the reply
  bundles the inner replies.
* :func:`multiplex` — a generator combinator driving several substrate
  client generators in lockstep: each merged round sends every substrate's
  current-round message, terminates when *every* substrate's rule is
  satisfied on its projected replies, and feeds each substrate its projected
  outcome.  Nested multiplexing flattens (path-joined register names), which
  is how the MWMR transform reuses the SWMR transform unchanged.

Waiting for the slowest substrate's rule can only deliver *more* replies to
the faster ones, which never violates their quorum logic; the merged round
count equals the maximum of the substrates' round counts — exactly the
"reads of all registers proceed in parallel" accounting the paper's
Section 5 relies on.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ProtocolError
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, ReplySet, RoundOutcome, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId

MULTI = "MULTI"


class MultiplexObjectHandler(ObjectHandler):
    """Per-register substrate states behind a single object interface."""

    def __init__(self, inner: ObjectHandler) -> None:
        self.inner = inner

    def initial_state(self) -> dict[str, Any]:
        return {"registers": {}}

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag != MULTI:
            return {"error": f"expected {MULTI}, got {message.tag}"}
        calls = message.payload.get("calls")
        if not isinstance(calls, Mapping):
            return {"error": "malformed MULTI payload"}
        registers: dict[str, Any] = state.setdefault("registers", {})
        replies: dict[str, Mapping[str, Any]] = {}
        for name in sorted(calls):
            call = calls[name]
            register_state = registers.setdefault(name, self.inner.initial_state())
            inner_message = Message(
                src=message.src,
                dst=message.dst,
                op=message.op,
                round_no=message.round_no,
                tag=str(call["tag"]),
                payload=call["payload"],
            )
            replies[name] = self.inner.handle(register_state, inner_message)
        return {"calls": replies}


def _flatten_spec(prefix: str, spec: RoundSpec) -> dict[str, dict[str, Any]]:
    """Expand one substrate spec into flat ``name -> {tag, payload}`` calls."""
    if spec.per_object_payload is not None:
        raise ProtocolError("multiplexed substrates may not use per-object payloads")
    if spec.tag == MULTI:
        inner_calls = spec.payload["calls"]
        return {f"{prefix}/{name}": dict(call) for name, call in inner_calls.items()}
    return {prefix: {"tag": spec.tag, "payload": dict(spec.payload)}}


def _project(prefix: str, spec: RoundSpec, replies: ReplySet) -> ReplySet:
    """Rebuild the reply set one substrate would have seen on its own."""
    projected: ReplySet = {}
    for pid, payload in replies.items():
        calls = payload.get("calls") if isinstance(payload, Mapping) else None
        if not isinstance(calls, Mapping):
            continue  # malformed (Byzantine) reply: invisible to the substrate
        if spec.tag == MULTI:
            inner_names = list(spec.payload["calls"])
            picked = {}
            complete = True
            for name in inner_names:
                flat = f"{prefix}/{name}"
                if flat in calls:
                    picked[name] = calls[flat]
                else:
                    complete = False
            if complete:
                projected[pid] = {"calls": picked}
        elif prefix in calls:
            projected[pid] = calls[prefix]
    return projected


def multiplex(generators: Mapping[str, ProtocolGenerator]) -> ProtocolGenerator:
    """Drive substrate generators over shared rounds; returns their results.

    Yields merged :class:`RoundSpec` objects (tag ``MULTI``); the caller (the
    simulator or the scripted runner) treats them like any other round.  The
    return value maps each register name to its substrate's return value.
    """
    active: dict[str, ProtocolGenerator] = dict(generators)
    specs: dict[str, RoundSpec] = {}
    results: dict[str, Any] = {}
    sub_round: dict[str, int] = {name: 0 for name in active}

    for name, generator in list(active.items()):
        try:
            specs[name] = next(generator)
            sub_round[name] = 1
        except StopIteration as stop:  # a substrate with no rounds at all
            results[name] = stop.value
            del active[name]

    while active:
        merged_calls: dict[str, dict[str, Any]] = {}
        for name, spec in specs.items():
            merged_calls.update(_flatten_spec(name, spec))

        current_specs = dict(specs)

        def merged_predicate(replies: ReplySet) -> bool:
            for name, spec in current_specs.items():
                if not spec.rule.satisfied(_project(name, spec, replies)):
                    return False
            return True

        min_count = max(spec.rule.min_count for spec in specs.values())
        accept = all(spec.rule.accept_on_quiescence for spec in specs.values())
        outcome = yield RoundSpec(
            tag=MULTI,
            payload={"calls": merged_calls},
            rule=ReplyRule(
                min_count=min_count, predicate=merged_predicate, accept_on_quiescence=accept
            ),
        )

        next_specs: dict[str, RoundSpec] = {}
        for name, generator in list(active.items()):
            spec = specs[name]
            sub_outcome = RoundOutcome(
                round_no=sub_round[name],
                replies=_project(name, spec, outcome.replies),
                quiesced=outcome.quiesced,
                terminated_at=outcome.terminated_at,
            )
            try:
                next_specs[name] = generator.send(sub_outcome)
                sub_round[name] += 1
            except StopIteration as stop:
                results[name] = stop.value
                del active[name]
        specs = next_specs

    return results
