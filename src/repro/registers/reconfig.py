"""Reconfigurable register systems: membership epochs and online repair.

The paper's emulations run over a *fixed* set of base objects; this module
adds the seam a production store lives on — objects fail permanently and
are **replaced** while reads and writes keep flowing.  Membership advances
through explicit epochs: epoch 0 is ``s_1 .. s_S``; the k-th repair step
retires one member and activates the pre-provisioned spare ``s_{S+k}`` in
its place.  A repair is an ordinary client operation (role ``repair``,
process ``q_k``) built from two rounds:

1. **state-transfer read** — query ``xfer_quorum`` members of the epoch the
   repair started in (``RECONFIG_XFER_READ``; each object returns its full
   per-key state),
2. **install** — merge newest-per-key (by timestamp) and write the merged
   image into the replacement (``RECONFIG_XFER_INSTALL``), then flip the
   epoch.

With ``xfer_quorum = S − t`` (the default) the transfer intersects every
completed write's quorum, so the replacement joins holding everything any
read could have returned — the well-provisioned configuration the schedule
explorer certifies.  With a smaller quorum the transfer can miss the only
live copy of a completed write and the replacement joins stale: the
explorer refutes that variant with a minimized witness.

Client operations are *epoch-scoped per round*: every protocol round whose
destinations the protocol left implicit is pinned to the membership at the
moment that round starts, so an operation spanning a repair finishes its
in-flight round against the old epoch and directs its next round at the new
one.  Repair timing relative to client rounds is therefore an ordinary
explorer choice point: holding or releasing transfer messages shifts which
epoch each round observes.

State transfer goes through the PR-6 durability seam when enabled — the
install is persisted like any other state change, so a replacement that
crash-recovers after joining replays the transferred image from its own
journal.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.registers.base import (
    RegisterProtocol,
    RegisterSystem,
    ProtocolContext,
    _durable,
    resolve_reader,
)
from repro.sim.batched import resolve_engine
from repro.sim.network import DeliveryPolicy, Message
from repro.sim.process import FaultBehavior, ObjectHandler, ObjectServer
from repro.sim.simulator import ClientOperation, ProtocolGenerator
from repro.sim.rounds import ReplyRule, RoundSpec
from repro.sim.tracing import MessageTrace
from repro.spec.history import History, HistoryRecorder
from repro.storage import StorageRuntime
from repro.types import (
    BOTTOM,
    ProcessId,
    TaggedValue,
    object_id,
    object_ids,
    reader_ids,
    repair_id,
    writer_id,
)

#: Tag vocabulary of the repair protocol.
XFER_READ = "RECONFIG_XFER_READ"
XFER_INSTALL = "RECONFIG_XFER_INSTALL"


class ReconfigObjectHandler(ObjectHandler):
    """Protocol handler extended with the state-transfer vocabulary.

    ``RECONFIG_XFER_READ`` returns a copy of the object's full per-key
    state; ``RECONFIG_XFER_INSTALL`` merges an incoming image newest-per-key
    (strictly larger timestamp wins, so an install never regresses state the
    replacement already holds).  Every other tag is the wrapped protocol's
    business.
    """

    def __init__(self, inner: ObjectHandler) -> None:
        self.inner = inner

    def initial_state(self) -> dict[str, Any]:
        return self.inner.initial_state()

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == XFER_READ:
            return {"state": dict(state)}
        if message.tag == XFER_INSTALL:
            installed = 0
            for key, tv in message.payload["state"].items():
                current = state.get(key)
                if current is None or tv.ts > current.ts:
                    state[key] = tv
                    installed += 1
            return {"ack": True, "installed": installed}
        return self.inner.handle(state, message)


def _check_transferable(protocol: RegisterProtocol) -> None:
    """Reject protocols whose object state the transfer round cannot merge.

    The newest-per-key merge needs a flat ``{key: TaggedValue}`` state
    layout (the ABD family's); anything else would transfer opaquely and
    silently break the intersection argument.
    """
    state = protocol.object_handler().initial_state()
    bad = sorted(
        key for key, value in state.items() if not isinstance(value, TaggedValue)
    )
    if bad:
        raise ConfigurationError(
            f"protocol {protocol.name!r} is not reconfigurable: state keys "
            f"{', '.join(map(repr, bad))} are not timestamped values, so the "
            "newest-per-key state transfer cannot merge them (use an "
            "ABD-family protocol)"
        )


class ReconfigRegisterSystem:
    """A register protocol on a membership that advances through epochs.

    Args:
        protocol: the register protocol to run (must keep flat
            ``{key: TaggedValue}`` object state — see
            :func:`_check_transferable`).
        t: declared fault threshold *per epoch*.
        S: epoch size (defaults to the protocol's minimum for ``t``).
        n_readers: reader population.
        behaviors: fault behaviours keyed by object id; spares may carry
            behaviours too (they are addressable pool members).
        repairs: ``(member_index, at)`` pairs — replace ``s_member_index``
            starting at virtual time ``at``.  The k-th step activates spare
            ``s_{S+k}``.  Each member is replaced at most once.
        spares: pre-provisioned replacement objects (default: one per
            repair step).
        xfer_quorum: members of the old epoch the transfer must read
            (default ``S − t``, the safe intersection quorum; smaller
            values are accepted so the explorer can refute them).
    """

    def __init__(
        self,
        protocol: RegisterProtocol,
        t: int,
        S: int | None = None,
        n_readers: int = 2,
        behaviors: Mapping[ProcessId, FaultBehavior] | None = None,
        policy: DeliveryPolicy | None = None,
        allow_overfault: bool = False,
        engine: str = "event",
        durability: str = "none",
        repairs: tuple[tuple[int, int], ...] = (),
        spares: int | None = None,
        xfer_quorum: int | None = None,
    ) -> None:
        if S is None:
            S = RegisterSystem._default_size(protocol, t)
        protocol.validate_configuration(S, t)
        _check_transferable(protocol)
        repairs = tuple((int(member), int(at)) for member, at in repairs)
        for member, at in repairs:
            if not 1 <= member <= S:
                raise ConfigurationError(
                    f"repair member index {member} out of range 1..{S}"
                )
            if at < 0:
                raise ConfigurationError(f"repair time must be non-negative, got {at}")
        members_repaired = [member for member, _at in repairs]
        if len(set(members_repaired)) != len(members_repaired):
            raise ConfigurationError(
                f"each member may be replaced at most once; got {members_repaired}"
            )
        if spares is None:
            spares = len(repairs)
        if spares < len(repairs):
            raise ConfigurationError(
                f"{len(repairs)} repair steps need at least that many spares, got {spares}"
            )
        if xfer_quorum is None:
            xfer_quorum = S - t
        if not 1 <= xfer_quorum <= S:
            raise ConfigurationError(
                f"xfer_quorum must be in 1..{S}, got {xfer_quorum}"
            )
        behaviors = dict(behaviors or {})
        if len(behaviors) > t and not allow_overfault:
            raise ConfigurationError(
                f"{len(behaviors)} faulty objects exceed the threshold t={t}"
            )
        self.protocol = protocol
        self.ctx = ProtocolContext(S=S, t=t, objects=object_ids(S))
        self.repairs = repairs
        self.spares = spares
        self.xfer_quorum = xfer_quorum
        # The whole pool — epoch members plus spares — exists up front: the
        # simulator's object set is fixed, and "joining" is a protocol-level
        # event (the install round plus the epoch flip), not a topology one.
        self.pool = object_ids(S + spares)
        unknown = set(behaviors) - set(self.pool)
        if unknown:
            raise ConfigurationError(f"behaviours for unknown objects: {sorted(unknown)}")
        self.storage = StorageRuntime.create(durability)
        self.durability = durability
        self.servers = [
            ObjectServer(
                pid=pid,
                handler=_durable(
                    self.storage, pid, ReconfigObjectHandler(protocol.object_handler())
                ),
                behavior=behaviors.get(pid),
            )
            for pid in self.pool
        ]
        self.recorder = HistoryRecorder()
        self.trace = MessageTrace()
        self.engine = engine
        self.simulator = resolve_engine(engine)(
            self.servers, policy=policy, history=self.recorder, trace=self.trace
        )
        self.writer = writer_id()
        self.readers = reader_ids(n_readers)
        self._members: tuple[ProcessId, ...] = self.ctx.objects
        self.completed_repairs = 0
        self._armed = False

    # ------------------------------------------------------------------ #
    # Epoch machinery
    # ------------------------------------------------------------------ #

    @property
    def members(self) -> tuple[ProcessId, ...]:
        """The current epoch's membership (replacements in place)."""
        return self._members

    @property
    def epoch(self) -> int:
        """Completed epoch transitions so far."""
        return self.completed_repairs

    def _scoped(self, inner: ProtocolGenerator) -> ProtocolGenerator:
        """Pin each implicit-destination round to the epoch at round start.

        Rounds the protocol addressed explicitly (``destinations`` set) are
        passed through untouched; everything else goes to whichever
        membership is current when the round begins — an operation spanning
        a repair finishes its in-flight round against the old epoch and
        aims its next round at the new one.
        """
        try:
            spec = next(inner)
            while True:
                if spec.destinations is None:
                    spec.destinations = self._members
                outcome = yield spec
                spec = inner.send(outcome)
        except StopIteration as stop:
            return stop.value

    def _repair_generator(
        self, member: ProcessId, replacement: ProcessId
    ) -> ProtocolGenerator:
        # Membership is sampled lazily, at the repair's first round — the
        # "old epoch" is whatever is current when the repair *starts*, not
        # when it was scheduled.
        old_epoch = self._members
        outcome = yield RoundSpec(
            tag=XFER_READ,
            payload={},
            rule=ReplyRule(min_count=self.xfer_quorum, accept_on_quiescence=False),
            destinations=old_epoch,
        )
        merged: dict[str, TaggedValue] = {}
        # payloads() is sorted by object id, and the merge takes strictly
        # newer timestamps only, so ties resolve to the lowest object id —
        # deterministic on both engines.
        for payload in outcome.payloads():
            for key, tv in payload["state"].items():
                current = merged.get(key)
                if current is None or tv.ts > current.ts:
                    merged[key] = tv
        yield RoundSpec(
            tag=XFER_INSTALL,
            payload={"state": merged},
            rule=ReplyRule(min_count=1, accept_on_quiescence=False),
            destinations=(replacement,),
        )
        self._members = tuple(
            replacement if current == member else current for current in self._members
        )
        self.completed_repairs += 1
        return f"{member}->{replacement}"

    def _arm_repairs(self) -> None:
        """Schedule every configured repair step (idempotent).

        Armed at :meth:`run` time, *after* all client plans are scheduled,
        so plan operations keep the low serials schedule-explorer hold
        links address them by; repair k gets serial ``len(plans) + k`` on
        both engines.
        """
        if self._armed:
            return
        self._armed = True
        for step, (member, at) in enumerate(self.repairs, start=1):
            replacement = object_id(self.ctx.S + step)
            self.simulator.invoke(
                repair_id(step),
                "repair",
                self._repair_generator(object_id(member), replacement),
                at=at,
            )

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def write(self, value: Any, at: int = 0) -> ClientOperation:
        """Schedule a write of ``value`` at relative virtual time ``at``."""
        if value == BOTTOM:
            raise ConfigurationError("⊥ is reserved for the initial value and cannot be written")
        generator = self._scoped(self.protocol.write_generator(self.ctx, value))
        return self.simulator.invoke(self.writer, "write", generator, at=at, declared_value=value)

    def read(self, reader_index: int = 1, at: int = 0) -> ClientOperation:
        """Schedule a read by reader ``r_{reader_index}`` at time ``at``."""
        reader = resolve_reader(self.readers, reader_index)
        generator = self._scoped(self.protocol.read_generator(self.ctx, reader))
        return self.simulator.invoke(reader, "read", generator, at=at)

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Arm the repair steps, then run the simulation to quiescence."""
        self._arm_repairs()
        return self.simulator.run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def history(self) -> History:
        """The client-operation history — repair steps excluded.

        Repairs move state between machines; they are not reads or writes
        of the register, so consistency checks run on the client view.
        """
        combined = self.recorder.freeze()
        return History([r for r in combined.records if r.op_id.kind != "repair"])

    def full_history(self) -> History:
        """Every recorded operation, repair steps included (drill-down)."""
        return self.recorder.freeze()

    def server(self, pid: ProcessId) -> ObjectServer:
        """The pool object with identifier ``pid``."""
        return self.simulator.objects[pid]

    def max_rounds(self, kind: str) -> int:
        """Worst-case rounds used by completed operations of ``kind``."""
        return self.simulator.max_rounds_used(kind)
