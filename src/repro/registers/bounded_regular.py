"""AAB07-inspired bounded regular register: reads take up to ``t + 2`` rounds.

The related work of the paper describes the pre-[GV06] state of the art for
unauthenticated robust storage: reads either unbounded or ``Ω(t)`` rounds
([Aiyer–Alvisi–Bazzi 07]).  This protocol reproduces that regime:

* writes are the same two-phase pre-write/write scheme as
  :mod:`repro.registers.fast_regular`;
* a read keeps issuing query rounds, pooling vouchers across rounds per
  ``(object, value)`` pair, until some candidate is **certified** (``t + 1``
  distinct vouchers) *and* at most ``t`` pooled repliers report anything
  strictly newer — or until ``t + 2`` rounds have elapsed, after which the
  best certified (else best reported) candidate is returned.

The ``t + 2`` bound is what the latency-matrix benchmark (E6) contrasts with
the 2-round reads of the fast protocol: it is the cost of fabrication
resistance without either the GV06 machinery or secret tokens.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.quorums.threshold import ByzantineThresholds
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.registers.fast_regular import FastRegularObjectHandler, PRE_WRITE, READ_ONE, READ_TWO, WRITE
from repro.registers.timestamps import max_candidate, pooled_voucher_counts
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, ReplySet, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp


@register_protocol(
    "bounded-regular",
    model="byzantine",
    semantics="regular",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    scenarios=("fault-free", "silent", "fabricate"),
    read_round_bound=lambda t: t + 2,
    description="AAB07-style bounded regular register: reads pool vouchers, O(t) rounds",
)
class BoundedRegularProtocol(RegisterProtocol):
    """SWMR regular register with voucher-pooling bounded reads."""

    name = "bounded-regular"
    write_rounds = 2
    read_rounds = None  # t-dependent: t + 2

    def __init__(self) -> None:
        self._write_ts = Timestamp.zero()

    def validate_configuration(self, S: int, t: int) -> None:
        ByzantineThresholds(S=S, t=t)

    def object_handler(self) -> ObjectHandler:
        return FastRegularObjectHandler()

    def read_round_bound(self, t: int) -> int:
        """Worst-case read rounds for threshold ``t``."""
        return t + 2

    # ------------------------------------------------------------------ #
    # Write (identical two-phase scheme as the fast protocol)
    # ------------------------------------------------------------------ #

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        self._write_ts = self._write_ts.next_for()
        tv = TaggedValue(ts=self._write_ts, value=value)
        quorum = ctx.wait_quorum

        def generator() -> ProtocolGenerator:
            yield RoundSpec(tag=PRE_WRITE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            yield RoundSpec(tag=WRITE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            return value

        return generator()

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        tagged = self.read_tagged_generator(ctx, reader)

        def generator() -> ProtocolGenerator:
            result = yield from tagged
            return result.value

        return generator()

    def read_tagged_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = ctx.wait_quorum
        certify = ctx.certify
        max_rounds = self.read_round_bound(ctx.t)

        def certified_and_stable(pool: list[ReplySet]) -> TaggedValue | None:
            counts = pooled_voucher_counts(pool, fields=("pw", "w"))
            certified = [pair for pair, n in counts.items() if n >= certify]
            if not certified:
                return None
            best = max_candidate(certified)
            # Pool the *newest report per object* to bound how many distinct
            # objects claim to be ahead of the certified best.
            newest: dict[ProcessId, Timestamp] = {}
            for replies in pool:
                for pid, payload in replies.items():
                    for field in ("pw", "w"):
                        pair = payload.get(field)
                        if isinstance(pair, TaggedValue):
                            if pid not in newest or pair.ts > newest[pid]:
                                newest[pid] = pair.ts
            ahead = sum(1 for ts in newest.values() if ts > best.ts)
            if ahead <= ctx.t:
                return best
            return None

        def generator() -> ProtocolGenerator:
            pool: list[ReplySet] = []
            for round_index in range(max_rounds):
                tag = READ_ONE if round_index == 0 else READ_TWO
                payload: dict[str, Any] = {}
                if round_index > 0:
                    counts = pooled_voucher_counts(pool, fields=("pw", "w"))
                    payload["wb"] = max_candidate(counts.keys())
                outcome = yield RoundSpec(
                    tag=tag,
                    payload=payload,
                    rule=ReplyRule(min_count=quorum, accept_on_quiescence=True),
                )
                pool.append(outcome.replies)
                stable = certified_and_stable(pool)
                if stable is not None:
                    return stable
            # Round budget exhausted: best effort, certified first.
            counts = pooled_voucher_counts(pool, fields=("pw", "w"))
            certified = [pair for pair, n in counts.items() if n >= certify]
            if certified:
                return max_candidate(certified)
            return max_candidate(counts.keys())

        return generator()
