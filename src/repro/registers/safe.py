"""Byzantine *safe* register over masking quorums (Malkhi–Reiter style).

The weakest rung of Lamport's hierarchy, included because the related work
the paper builds on is partly stated for safe storage ([Abraham et al. 06]'s
``t + 1``-round bound for reads that do not write).  With ``S ≥ 4t + 1``
objects, one-round writes and one-round reads suffice for safeness: any
``S − t`` reply set intersects the write quorum in at least ``S − 3t ≥ t+1``
*correct* holders, so for a read not concurrent with any write the last
written pair is always certified.

This register is also a didactic foil: run it at ``S = 3t + 1`` (it refuses)
or check it for regularity/atomicity (it fails under concurrency) to see why
the stronger protocols need their extra machinery.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.registers.timestamps import max_candidate, voucher_counts
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp

SAFE_STORE = "SAFE_STORE"
SAFE_QUERY = "SAFE_QUERY"


class SafeObjectHandler(ObjectHandler):
    """Object state: a single monotone tagged value."""

    def initial_state(self) -> dict[str, Any]:
        return {"w": TaggedValue.initial()}

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == SAFE_STORE:
            incoming = message.payload["tv"]
            if incoming.ts > state["w"].ts:
                state["w"] = incoming
            return {"ack": True}
        if message.tag == SAFE_QUERY:
            return {"w": state["w"]}
        return {"error": f"unknown tag {message.tag}"}


@register_protocol(
    "byz-safe",
    model="byzantine-masking",
    semantics="safe",
    resilience="S ≥ 4t + 1",
    min_size=lambda t: 4 * t + 1,
    scenarios=("fault-free", "crash", "silent", "replay", "fabricate"),
    description="Malkhi–Reiter-style safe register over masking quorums",
)
class ByzantineSafeProtocol(RegisterProtocol):
    """SWMR safe register: 1-round writes, 1-round reads, ``S ≥ 4t + 1``."""

    name = "byz-safe"
    write_rounds = 1
    read_rounds = 1

    def __init__(self) -> None:
        self._write_ts = Timestamp.zero()

    def validate_configuration(self, S: int, t: int) -> None:
        if t < 0:
            raise ConfigurationError("t must be non-negative")
        if S < 4 * t + 1:
            raise ConfigurationError(
                f"masking-quorum safe storage needs S >= 4t + 1 (got S={S}, t={t})"
            )

    def object_handler(self) -> ObjectHandler:
        return SafeObjectHandler()

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        self._write_ts = self._write_ts.next_for()
        tv = TaggedValue(ts=self._write_ts, value=value)
        quorum = ctx.wait_quorum

        def generator() -> ProtocolGenerator:
            yield RoundSpec(tag=SAFE_STORE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            return value

        return generator()

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = ctx.wait_quorum
        certify = ctx.certify

        def generator() -> ProtocolGenerator:
            outcome = yield RoundSpec(tag=SAFE_QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            counts = voucher_counts(outcome.replies, fields=("w",))
            certified = [pair for pair, n in counts.items() if n >= certify]
            best = max_candidate(certified)
            return best.value

        return generator()
