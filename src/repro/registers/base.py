"""Protocol and system plumbing shared by every register implementation.

A :class:`RegisterProtocol` bundles the three protocol-specific pieces:

* the object-side handler (state layout + reply logic),
* the writer's operation generator,
* the readers' operation generator,

all expressed over the round abstraction of :mod:`repro.sim.rounds`.  The
:class:`RegisterSystem` convenience harness instantiates a protocol on a
simulator — objects, fault behaviours, history recording, tracing — so tests,
examples and benchmarks can say ``system.write(1); system.read(1);
system.run()`` and then check the resulting history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.batched import resolve_engine
from repro.sim.network import DeliveryPolicy
from repro.sim.process import FaultBehavior, ObjectHandler, ObjectServer
from repro.sim.simulator import ClientOperation, ProtocolGenerator, Simulator
from repro.sim.tracing import MessageTrace
from repro.spec.history import History, HistoryRecorder
from repro.storage import StorageRuntime
from repro.types import BOTTOM, ProcessId, object_ids, reader_id, reader_ids, writer_id


def _durable(
    storage: StorageRuntime | None, pid: ProcessId, handler: ObjectHandler
) -> ObjectHandler:
    """Wrap ``handler`` with the system's durability seam, if any.

    Shared by every register system (single-writer, multi-writer native,
    transformed, sharded) so the durability axis needs no per-system code.
    """
    if storage is None:
        return handler
    return storage.wrap(pid, handler)


def resolve_reader(readers: Sequence[ProcessId], reader_index: int) -> ProcessId:
    """The reader ``r_{reader_index}`` from ``readers``, or raise.

    Shared by :meth:`RegisterSystem.read` and the :mod:`repro.api` facade so
    reader-index validation stays in one place.
    """
    reader = reader_id(reader_index)
    if reader not in readers:
        raise ConfigurationError(f"{reader} is not one of the {len(readers)} readers")
    return reader


@dataclass(frozen=True, slots=True)
class ProtocolContext:
    """Static parameters every generator needs: sizes and identities."""

    S: int
    t: int
    objects: tuple[ProcessId, ...]

    @property
    def wait_quorum(self) -> int:
        """Replies a round can always safely wait for: ``S − t``."""
        return self.S - self.t

    @property
    def certify(self) -> int:
        """Reports guaranteeing at least one correct voucher: ``t + 1``."""
        return self.t + 1


class RegisterProtocol:
    """Abstract SWMR register protocol.

    Subclasses declare their resilience requirement via
    :meth:`validate_configuration` and their advertised worst-case round
    counts via :attr:`write_rounds` / :attr:`read_rounds` (used by the
    latency benchmarks and by the lower-bound engine to select applicable
    victims).
    """

    #: Human-readable protocol name for tables and traces.
    name: str = "abstract"
    #: Advertised worst-case communication rounds for a write.
    write_rounds: int = 0
    #: Advertised worst-case communication rounds for a read, or None when
    #: unbounded / configuration-dependent.
    read_rounds: int | None = None

    def validate_configuration(self, S: int, t: int) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` if ``(S, t)`` is unsupported."""
        raise NotImplementedError

    def object_handler(self) -> ObjectHandler:
        """Fresh object-side handler (one per storage object)."""
        raise NotImplementedError

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        """Generator implementing ``write(value)`` for the single writer."""
        raise NotImplementedError

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        """Generator implementing ``read()`` for ``reader``."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary used by benchmark tables."""
        reads = "unbounded" if self.read_rounds is None else str(self.read_rounds)
        return f"{self.name}: {self.write_rounds}-round writes, {reads}-round reads"


class RegisterSystem:
    """A protocol instantiated on a simulated storage system.

    Args:
        protocol: the register protocol to run.
        t: declared fault threshold.
        S: number of objects (defaults to the protocol's minimum for ``t``,
           i.e. ``3t + 1`` for Byzantine protocols, ``2t + 1`` for ABD).
        n_readers: how many reader clients exist.
        behaviors: fault behaviours keyed by object id; at most ``t`` entries
           unless ``allow_overfault`` is set (some experiments deliberately
           exceed the threshold to show where protocols break).
        policy: delivery policy (default unit-latency FIFO).
        engine: simulation engine — ``"event"`` (per-message event loop, the
           default) or ``"batched"`` (wave-stepped
           :class:`~repro.sim.batched.BatchedSimulator`, observably
           identical and faster).
        durability: the durability axis — ``"none"`` (in-memory objects,
           the paper's crash-stop model), ``"mem"`` (deterministic
           in-memory journals) or ``"dir"`` (append-only log files under a
           temp dir).  When enabled, every object handler is wrapped in a
           :class:`~repro.storage.DurableObjectHandler` and crash-recover
           fault behaviours become available.
    """

    def __init__(
        self,
        protocol: RegisterProtocol,
        t: int,
        S: int | None = None,
        n_readers: int = 2,
        behaviors: Mapping[ProcessId, FaultBehavior] | None = None,
        policy: DeliveryPolicy | None = None,
        allow_overfault: bool = False,
        engine: str = "event",
        durability: str = "none",
    ) -> None:
        if S is None:
            S = self._default_size(protocol, t)
        protocol.validate_configuration(S, t)
        behaviors = dict(behaviors or {})
        if len(behaviors) > t and not allow_overfault:
            raise ConfigurationError(
                f"{len(behaviors)} faulty objects exceed the threshold t={t}"
            )
        self.protocol = protocol
        self.ctx = ProtocolContext(S=S, t=t, objects=object_ids(S))
        unknown = set(behaviors) - set(self.ctx.objects)
        if unknown:
            raise ConfigurationError(f"behaviours for unknown objects: {sorted(unknown)}")
        self.storage = StorageRuntime.create(durability)
        self.durability = durability
        self.servers = [
            ObjectServer(
                pid=pid,
                handler=_durable(self.storage, pid, protocol.object_handler()),
                behavior=behaviors.get(pid),
            )
            for pid in self.ctx.objects
        ]
        self.recorder = HistoryRecorder()
        self.trace = MessageTrace()
        self.engine = engine
        self.simulator = resolve_engine(engine)(
            self.servers, policy=policy, history=self.recorder, trace=self.trace
        )
        self.writer = writer_id()
        self.readers = reader_ids(n_readers)

    @staticmethod
    def _default_size(protocol: RegisterProtocol, t: int) -> int:
        # Smallest standard threshold configuration the protocol accepts:
        # 2t+1 for crash protocols, 3t+1 Byzantine, 4t+1 masking.
        for size in sorted({1, t + 1, 2 * t + 1, 3 * t + 1, 4 * t + 1}):
            try:
                protocol.validate_configuration(size, t)
                return size
            except ConfigurationError:
                continue
        raise ConfigurationError(f"no default size found for {protocol.name} with t={t}")

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def write(self, value: Any, at: int = 0) -> ClientOperation:
        """Schedule a write of ``value`` at relative virtual time ``at``.

        The initial value ⊥ is reserved (paper §2.2: "not a valid input
        value for a write").
        """
        if value == BOTTOM:
            raise ConfigurationError("⊥ is reserved for the initial value and cannot be written")
        generator = self.protocol.write_generator(self.ctx, value)
        return self.simulator.invoke(self.writer, "write", generator, at=at, declared_value=value)

    def read(self, reader_index: int = 1, at: int = 0) -> ClientOperation:
        """Schedule a read by reader ``r_{reader_index}`` at time ``at``."""
        reader = resolve_reader(self.readers, reader_index)
        generator = self.protocol.read_generator(self.ctx, reader)
        return self.simulator.invoke(reader, "read", generator, at=at)

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Run the simulation to its quiescent fixed point.

        Returns the number of simulator events executed.  ``max_events``
        bounds the run (``None``: unbounded); exhausting the budget raises
        :class:`~repro.errors.SimulationError`.
        """
        return self.simulator.run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def history(self) -> History:
        """The operation history recorded so far."""
        return self.recorder.freeze()

    def server(self, pid: ProcessId) -> ObjectServer:
        """The object server with identifier ``pid``."""
        return self.simulator.objects[pid]

    def max_rounds(self, kind: str) -> int:
        """Worst-case rounds used by completed operations of ``kind``."""
        return self.simulator.max_rounds_used(kind)
