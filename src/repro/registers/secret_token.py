"""DMSS09-style regular register in the secret-token model: 1-round reads.

The paper's Section 5: in the *stronger authentication model that allows for
secret values [8]*, the 2-round regular-read lower bound of [15] is
circumvented and reads of the regular substrate complete in a single round,
which the transformation turns into the 3-round-read atomic storage that is
optimal in that model (by this paper's write lower bound).

Mechanism as modelled here (see DESIGN.md §2.2 for the substitution note):
the writer attaches a fresh *token* to every pre-write/write phase and
registers it with a :class:`TokenAuthority`.  The authority is the
unforgeability oracle standing in for the paper's secret values: a Byzantine
object may *replay* any ``(pair, token)`` it has actually been sent, but
cannot mint a token for a pair the writer never issued.  Readers verify
reports against the authority, so a single verified report is known genuine
— certification needs one voucher instead of ``t + 1``, and the standard
"any ``S − t`` reply set contains a correct holder of the last complete
write" argument makes the freshest verified report safe to return after one
round.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.quorums.threshold import ByzantineThresholds
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp

ST_PRE_WRITE = "ST_PRE_WRITE"
ST_WRITE = "ST_WRITE"
ST_READ = "ST_READ"


class TokenAuthority:
    """Registry of genuine ``(pair, token)`` bindings — the secrecy oracle.

    The simulator-level contract: fabricating behaviours may invent arbitrary
    *pairs* but have no way to produce a ``token`` such that
    :meth:`verify` accepts — exactly the power secret values deny the
    adversary in [DMSS09].
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._genuine: set[tuple[Timestamp, Any, str]] = set()

    def issue(self, tv: TaggedValue) -> str:
        """Mint and register a token binding ``tv`` to the writer."""
        token = f"tok-{next(self._counter)}"
        self._genuine.add((tv.ts, tv.value, token))
        return token

    def verify(self, tv: TaggedValue, token: str) -> bool:
        """True iff the writer really issued ``token`` for ``tv``."""
        return (tv.ts, tv.value, token) in self._genuine


class SecretTokenObjectHandler(ObjectHandler):
    """Object state: tokenized pre-written and written pairs."""

    def initial_state(self) -> dict[str, Any]:
        initial = TaggedValue.initial()
        return {"pw": initial, "pw_token": "", "w": initial, "w_token": ""}

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == ST_PRE_WRITE:
            incoming = message.payload["tv"]
            if incoming.ts > state["pw"].ts:
                state["pw"] = incoming
                state["pw_token"] = message.payload["token"]
            return {"ack": True}
        if message.tag == ST_WRITE:
            incoming = message.payload["tv"]
            if incoming.ts > state["w"].ts:
                state["w"] = incoming
                state["w_token"] = message.payload["token"]
            return {"ack": True}
        if message.tag == ST_READ:
            return {
                "pw": state["pw"],
                "pw_token": state["pw_token"],
                "w": state["w"],
                "w_token": state["w_token"],
            }
        return {"error": f"unknown tag {message.tag}"}


@register_protocol(
    "secret-token",
    model="secret-token",
    semantics="regular",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    scenarios=("fault-free", "silent", "replay", "fabricate"),
    description="DMSS09-style regular register with secret tokens: 1-round reads",
)
class SecretTokenProtocol(RegisterProtocol):
    """SWMR regular register, secret-token model: 2W / 1R rounds."""

    name = "secret-token"
    write_rounds = 2
    read_rounds = 1

    def __init__(self, authority: TokenAuthority | None = None) -> None:
        self.authority = authority or TokenAuthority()
        self._write_ts = Timestamp.zero()

    def validate_configuration(self, S: int, t: int) -> None:
        ByzantineThresholds(S=S, t=t)

    def object_handler(self) -> ObjectHandler:
        return SecretTokenObjectHandler()

    # ------------------------------------------------------------------ #
    # Write
    # ------------------------------------------------------------------ #

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        self._write_ts = self._write_ts.next_for()
        return self.write_generator_tagged(ctx, TaggedValue(ts=self._write_ts, value=value))

    def write_generator_tagged(self, ctx: ProtocolContext, tv: TaggedValue) -> ProtocolGenerator:
        """Write an explicit pair (used by the atomic transformation)."""
        quorum = ctx.wait_quorum
        token = self.authority.issue(tv)

        def generator() -> ProtocolGenerator:
            yield RoundSpec(
                tag=ST_PRE_WRITE,
                payload={"tv": tv, "token": token},
                rule=ReplyRule(min_count=quorum),
            )
            yield RoundSpec(
                tag=ST_WRITE,
                payload={"tv": tv, "token": token},
                rule=ReplyRule(min_count=quorum),
            )
            return tv.value

        return generator()

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        tagged = self.read_tagged_generator(ctx, reader)

        def generator() -> ProtocolGenerator:
            result = yield from tagged
            return result.value

        return generator()

    def read_tagged_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = ctx.wait_quorum
        authority = self.authority

        def generator() -> ProtocolGenerator:
            outcome = yield RoundSpec(tag=ST_READ, payload={}, rule=ReplyRule(min_count=quorum))
            best = TaggedValue.initial()
            for payload in outcome.replies.values():
                for field, token_field in (("pw", "pw_token"), ("w", "w_token")):
                    pair = payload.get(field)
                    token = payload.get(token_field, "")
                    if not isinstance(pair, TaggedValue):
                        continue
                    if pair.ts == Timestamp.zero():
                        continue  # the initial ⊥ needs no token
                    if authority.verify(pair, str(token)) and pair.ts > best.ts:
                        best = pair
            return best

        return generator()
