"""Lucky reads/writes: best-case fast, worst-case bounded ([GLV06]/[GV07] role).

The paper's related work contrasts its *worst-case* results with the
*best-case* line of work — "Lucky read/write access to robust atomic
storage" [14] and "Refined quorum systems" [16] — where operations complete
in a single round when the run is synchronous, fault-free and
contention-free, and gracefully degrade otherwise.  This protocol
reproduces that phenomenon on our substrate:

* **Writes** try a *fast path*: a single combined round that stores the
  pre-write and write records together; if **all** ``S`` objects ack in
  time, one round suffices (with every object acknowledging, every later
  reply set of size ``S − t`` contains ``t + 1`` correct holders, which is
  all the slow machinery ever needs).  If any ack is missing at
  quiescence, the writer falls back to the standard two-phase scheme.
* **Reads** try a fast path too: if **all** ``S`` replies are identical —
  same pre-write and write pairs everywhere — the read returns after one
  round.  Identical replies from all objects imply at least ``2t + 1``
  correct objects agree, so the value is genuine, complete (no pre-write
  ahead of a write anywhere) and fresh (a newer complete write would have
  ``t + 1`` correct holders contradicting the unanimity).  Any divergence,
  delay or silence forces the slow path: a second query round and a
  write-back round — three rounds in the worst case, matching the
  graceful-degradation shape of [16] (1 → 2 → 3 rounds as conditions
  worsen).

Like the best-case papers, the fast path requires *all* objects to answer,
so a single silent fault pushes every operation onto the slow path — the
benchmark E9 (bench_best_case) shows exactly that cliff.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.quorums.threshold import ByzantineThresholds
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.registers.fast_regular import (
    FastRegularObjectHandler,
    PRE_WRITE,
    READ_ONE,
    READ_TWO,
    WRITE,
)
from repro.registers.timestamps import max_candidate, pooled_voucher_counts
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, ReplySet, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp

LUCKY_STORE = "LUCKY_STORE"


class LuckyObjectHandler(FastRegularObjectHandler):
    """Fast-regular state plus the combined fast-path store."""

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == LUCKY_STORE:
            incoming = message.payload["tv"]
            if incoming.ts > state["pw"].ts:
                state["pw"] = incoming
            if incoming.ts > state["w"].ts:
                state["w"] = incoming
            return {"ack": True}
        return super().handle(state, message)


def _unanimous(replies: ReplySet, expected: int) -> bool:
    """All ``expected`` objects replied and every reply matches exactly."""
    if len(replies) < expected:
        return False
    snapshots = {
        (payload.get("pw"), payload.get("w")) for payload in replies.values()
    }
    return len(snapshots) == 1


@register_protocol(
    "lucky-atomic",
    model="byzantine",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    scenarios=("fault-free", "crash", "silent"),
    aliases=("lucky",),
    description="best-case-fast atomic register: 1-round lucky paths, 3-round worst case",
)
class LuckyAtomicProtocol(RegisterProtocol):
    """Best-case 1-round reads/writes, worst-case 2-round writes / 3-round reads.

    Semantics: atomic (the slow read path writes back).  The fast paths
    only fire on unanimous full-population evidence, which is exactly the
    "synchrony + no failures + no concurrency" luck of [14].
    """

    name = "lucky-atomic"
    write_rounds = 2   # worst case; best case 1
    read_rounds = 3    # worst case; best case 1

    def __init__(self) -> None:
        self._write_ts = Timestamp.zero()

    def validate_configuration(self, S: int, t: int) -> None:
        ByzantineThresholds(S=S, t=t)

    def object_handler(self) -> ObjectHandler:
        return LuckyObjectHandler()

    # ------------------------------------------------------------------ #
    # Write
    # ------------------------------------------------------------------ #

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        self._write_ts = self._write_ts.next_for()
        tv = TaggedValue(ts=self._write_ts, value=value)
        quorum = ctx.wait_quorum
        population = ctx.S

        def generator() -> ProtocolGenerator:
            fast = yield RoundSpec(
                tag=LUCKY_STORE,
                payload={"tv": tv},
                rule=ReplyRule(
                    min_count=quorum,
                    predicate=lambda replies: len(replies) >= population,
                    accept_on_quiescence=True,
                ),
            )
            if len(fast.replies) >= population:
                return value  # 1-round lucky write: everyone holds pw and w
            # Unlucky: finish the standard two-phase protocol.  The fast
            # round already planted pw+w at >= S−t objects, so one ordinary
            # WRITE round re-establishes the two-phase guarantees.
            yield RoundSpec(tag=WRITE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            return value

        return generator()

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        tagged = self.read_tagged_generator(ctx, reader)

        def generator() -> ProtocolGenerator:
            result = yield from tagged
            return result.value

        return generator()

    def read_tagged_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = ctx.wait_quorum
        certify = ctx.certify
        population = ctx.S

        def select(pool: list[ReplySet]) -> TaggedValue:
            counts = pooled_voucher_counts(pool, fields=("pw", "w"))
            certified = [pair for pair, n in counts.items() if n >= certify]
            if certified:
                return max_candidate(certified)
            return max_candidate(counts.keys())

        def generator() -> ProtocolGenerator:
            first = yield RoundSpec(
                tag=READ_ONE,
                payload={},
                rule=ReplyRule(
                    min_count=quorum,
                    predicate=lambda replies: _unanimous(replies, population),
                    accept_on_quiescence=True,
                ),
            )
            if _unanimous(first.replies, population):
                # 1-round lucky read: unanimity across the full population.
                sample = next(iter(first.replies.values()))
                return sample["w"]
            # Unlucky: one more query round, then write back the choice.
            second = yield RoundSpec(tag=READ_ONE, payload={}, rule=ReplyRule(min_count=quorum))
            candidate = select([first.replies, second.replies])
            yield RoundSpec(
                tag=READ_TWO, payload={"wb": candidate}, rule=ReplyRule(min_count=quorum)
            )
            return candidate

        return generator()
