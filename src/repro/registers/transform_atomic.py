"""The SWMR regular → SWMR atomic transformation of [4, 20].

This is the construction the paper's Section 5 uses to *close the gap* its
lower bounds open: take a robust SWMR **regular** register with 2-round
writes and 2-round reads [GV06] and apply the classical transformation —
``R + 1`` regular registers, one owned by the writer and one per reader,
with every read writing its result back into the reader's own register —
to obtain robust SWMR **atomic** storage with 2-round writes and 4-round
reads.  Over the secret-token substrate (1-round regular reads) the same
transformation yields 3-round atomic reads, optimal in that model.

Round accounting (the paper's footnote 6): a read first reads *all* R + 1
regular registers **in parallel** (the logical operations share physical
rounds via :mod:`repro.registers.multiplex`), then writes the maximum back
into its own register — ``read_rounds(substrate) + write_rounds(substrate)``
in total.  A write is one substrate write into the writer's register.

Why it is atomic (sketch): validity and freshness are inherited from the
substrate's regularity on the writer's register; read monotonicity (the
paper's property 4) holds because a read returning a pair ``(ts, v)``
completes a substrate write of that pair into its own register before
responding, so every later read's parallel pass sees some register whose
last complete write has timestamp at least ``ts``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.registers.multiplex import MultiplexObjectHandler, multiplex
from repro.registers.timestamps import max_candidate
from repro.sim.process import ObjectHandler
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, reader_ids

#: Name of the writer's logical register.
WRITER_REGISTER = "W"


def reader_register(reader: ProcessId) -> str:
    """Name of the logical register owned by ``reader``."""
    return f"R{reader.index}"


class RegularToAtomicProtocol(RegisterProtocol):
    """SWMR atomic register built from ``R + 1`` SWMR regular registers.

    Args:
        substrate_factory: zero-argument callable producing a fresh substrate
            protocol instance.  The substrate must provide
            ``write_generator_tagged`` and ``read_tagged_generator`` (both
            Byzantine regular protocols in this library do).
        n_readers: number of readers ``R`` (fixes the register family).
    """

    name = "atomic-from-regular"

    def __init__(
        self,
        substrate_factory: Callable[[], RegisterProtocol],
        n_readers: int,
    ) -> None:
        if n_readers < 1:
            raise ConfigurationError("the transformation needs at least one reader")
        self.n_readers = n_readers
        self._registers: dict[str, RegisterProtocol] = {WRITER_REGISTER: substrate_factory()}
        for reader in reader_ids(n_readers):
            self._registers[reader_register(reader)] = substrate_factory()
        sample = self._registers[WRITER_REGISTER]
        if sample.read_rounds is None:
            raise ConfigurationError("substrate must advertise a bounded read round count")
        self.substrate_name = sample.name
        self.write_rounds = sample.write_rounds
        self.read_rounds = sample.read_rounds + sample.write_rounds
        self.name = f"atomic-from[{sample.name}]"

    def validate_configuration(self, S: int, t: int) -> None:
        self._registers[WRITER_REGISTER].validate_configuration(S, t)

    def object_handler(self) -> ObjectHandler:
        return MultiplexObjectHandler(self._registers[WRITER_REGISTER].object_handler())

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        substrate = self._registers[WRITER_REGISTER]

        def generator() -> ProtocolGenerator:
            inner = substrate.write_generator(ctx, value)
            yield from multiplex({WRITER_REGISTER: inner})
            return value

        return generator()

    def write_tagged_generator(self, ctx: ProtocolContext, tv: TaggedValue) -> ProtocolGenerator:
        """Write an explicit pair into the writer's register (MWMR plumbing)."""
        substrate = self._registers[WRITER_REGISTER]

        def generator() -> ProtocolGenerator:
            inner = substrate.write_generator_tagged(ctx, tv)
            yield from multiplex({WRITER_REGISTER: inner})
            return tv.value

        return generator()

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        tagged = self.read_tagged_generator(ctx, reader)

        def generator() -> ProtocolGenerator:
            result = yield from tagged
            return result.value

        return generator()

    def read_tagged_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        own = reader_register(reader)
        if own not in self._registers:
            raise ConfigurationError(f"{reader} has no register; configured R={self.n_readers}")

        def generator() -> ProtocolGenerator:
            # Phase one: read every register in parallel (shared rounds).
            reads = {
                name: protocol.read_tagged_generator(ctx, reader)
                for name, protocol in sorted(self._registers.items())
            }
            observed: Mapping[str, TaggedValue] = yield from multiplex(reads)
            best = max_candidate(observed.values())
            # Phase two: write the chosen pair back into the reader's own
            # register — the step that buys read monotonicity.
            write_back = self._registers[own].write_generator_tagged(ctx, best)
            yield from multiplex({own: write_back})
            return best

        return generator()


def _atomic_over_fast_regular(n_readers: int = 2) -> RegularToAtomicProtocol:
    from repro.registers.fast_regular import FastRegularProtocol

    return RegularToAtomicProtocol(lambda: FastRegularProtocol("replay"), n_readers=n_readers)


def _atomic_over_secret_token(n_readers: int = 2) -> RegularToAtomicProtocol:
    from repro.registers.secret_token import SecretTokenProtocol

    return RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=n_readers)


register_protocol(
    "atomic-fast-regular",
    model="byzantine",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    write_rounds=2,
    read_rounds=4,
    scenarios=("fault-free", "crash", "silent", "replay"),
    needs_readers=True,
    aliases=("atomic(fast-regular)", "atomic-from[fast-regular]"),
    description=(
        "regular→atomic over the GV06-style substrate — "
        "the paper's time-optimal robust atomic storage (2W/4R)"
    ),
    factory=_atomic_over_fast_regular,
)

register_protocol(
    "atomic-secret-token",
    model="secret-token",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    write_rounds=2,
    read_rounds=3,
    scenarios=("fault-free", "silent", "replay", "fabricate"),
    needs_readers=True,
    aliases=("atomic(secret-token)", "atomic-from[secret-token]"),
    description="regular→atomic over secret tokens — optimal in that model (2W/3R)",
    factory=_atomic_over_secret_token,
)
