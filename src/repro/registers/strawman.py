"""Strawman protocols: concrete victims for the lower-bound constructions.

The paper's lower bounds are universal — they defeat *every* protocol in
their round/resilience class.  To make the proofs executable this module
supplies concrete members of those classes:

* :class:`TwoRoundReadProtocol` — the class of Proposition 1: an SWMR
  "atomic" register on ``S ≤ 4t`` objects whose writes take a configurable
  ``k`` rounds and whose reads take exactly two rounds (query, then
  write-back + confirm).  In benign and crash-only runs it passes every
  atomicity check; the read-lower-bound construction produces the schedule
  and forgery pattern under which it must fail.
* :class:`ThreeRoundReadProtocol` — the class of Lemma 1/Proposition 2:
  three-round reads (two query rounds, then write-back + confirm) with
  ``k``-round writes on ``3t + 1`` objects, defeated by the write-bound
  construction whenever ``k ≤ ⌊log(⌈(3t+1)/2⌉)⌋``.

Both protocols use the ABD-style selection — return the highest *reported*
pair and write it back — which is atomic in crash-only runs (quorum
intersection plus write-backs) and is what keeps the proofs' "by atomicity
the read returns 1" chain alive as write steps are deleted.  A
certified-first selection (``t + 1`` identical vouchers) would resist value
fabrication but returns *stale* values in exactly the partial runs the
constructions build, violating atomicity even earlier; the construction
handles such victims through its early-violation path, and the test suite
exercises both behaviours.

Writes repeat their store round ``k`` times.  Objects track, besides the
stored pair, the highest write phase they have seen — the per-phase states
``σ_0 … σ_k`` of the proofs are therefore pairwise distinct even though the
written value never changes, exactly as the constructions require.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.registers.timestamps import max_candidate, pooled_voucher_counts
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, ReplySet, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp

SM_STORE = "SM_STORE"
SM_QUERY = "SM_QUERY"
SM_WRITE_BACK = "SM_WRITE_BACK"


class StrawmanObjectHandler(ObjectHandler):
    """State: highest pair seen (write or write-back) plus write phase."""

    def initial_state(self) -> dict[str, Any]:
        return {"w": TaggedValue.initial(), "phase": 0, "wb": TaggedValue.initial()}

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == SM_STORE:
            incoming = message.payload["tv"]
            phase = int(message.payload["phase"])
            if incoming.ts > state["w"].ts:
                state["w"] = incoming
            if phase > state["phase"]:
                state["phase"] = phase
            return {"ack": True}
        if message.tag == SM_QUERY:
            return {"w": state["w"], "wb": state["wb"], "phase": state["phase"]}
        if message.tag == SM_WRITE_BACK:
            incoming = message.payload["tv"]
            if incoming.ts > state["wb"].ts:
                state["wb"] = incoming
            return {"w": state["w"], "wb": state["wb"], "phase": state["phase"]}
        return {"error": f"unknown tag {message.tag}"}


def _select(pool: list[ReplySet], certify: int) -> TaggedValue:
    """ABD-style selection: the highest pair reported in ``w``/``wb``.

    The ``certify`` parameter is accepted for signature stability (tests
    build certified-first variants to show the alternative failure mode)
    but deliberately unused here — see the module docstring.
    """
    counts = pooled_voucher_counts(pool, fields=("w", "wb"))
    return max_candidate(counts.keys())


class _StrawmanBase(RegisterProtocol):
    """Shared write path and configuration of the two strawmen."""

    def __init__(self, write_rounds: int = 2) -> None:
        if write_rounds < 1:
            raise ConfigurationError("writes need at least one round")
        self.write_rounds = write_rounds
        self._write_ts = Timestamp.zero()

    def object_handler(self) -> ObjectHandler:
        return StrawmanObjectHandler()

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        self._write_ts = self._write_ts.next_for()
        tv = TaggedValue(ts=self._write_ts, value=value)
        quorum = ctx.wait_quorum
        rounds = self.write_rounds

        def generator() -> ProtocolGenerator:
            for phase in range(1, rounds + 1):
                yield RoundSpec(
                    tag=SM_STORE,
                    payload={"tv": tv, "phase": phase},
                    rule=ReplyRule(min_count=quorum),
                )
            return value

        return generator()


@register_protocol(
    "strawman-2r",
    model="byzantine",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    scenarios=("fault-free", "silent"),
    write_rounds=2,
    aliases=("strawman-2r-read",),
    description="claims atomicity with 2-round reads — Proposition 1's victim",
)
class TwoRoundReadProtocol(_StrawmanBase):
    """Two-round reads on up to ``4t`` objects — Proposition 1's victim."""

    name = "strawman-2r-read"
    read_rounds = 2

    def validate_configuration(self, S: int, t: int) -> None:
        if t < 1:
            raise ConfigurationError("the Byzantine strawman needs t >= 1")
        if S < 3 * t + 1:
            raise ConfigurationError(f"needs S >= 3t + 1 (got S={S}, t={t})")

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = ctx.wait_quorum
        certify = ctx.certify

        def generator() -> ProtocolGenerator:
            first = yield RoundSpec(tag=SM_QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            candidate = _select([first.replies], certify)
            second = yield RoundSpec(
                tag=SM_WRITE_BACK,
                payload={"tv": candidate},
                rule=ReplyRule(min_count=quorum),
            )
            return _select([first.replies, second.replies], certify).value

        return generator()


@register_protocol(
    "strawman-3r",
    model="byzantine",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    scenarios=("fault-free", "silent"),
    write_rounds=2,
    aliases=("strawman-3r-read",),
    description="claims atomicity with 3-round reads — Lemma 1's victim",
)
class ThreeRoundReadProtocol(_StrawmanBase):
    """Three-round reads on ``3t + 1`` objects — Lemma 1's victim."""

    name = "strawman-3r-read"
    read_rounds = 3

    def validate_configuration(self, S: int, t: int) -> None:
        if t < 1:
            raise ConfigurationError("the Byzantine strawman needs t >= 1")
        if S < 3 * t + 1:
            raise ConfigurationError(f"needs S >= 3t + 1 (got S={S}, t={t})")

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = ctx.wait_quorum
        certify = ctx.certify

        def generator() -> ProtocolGenerator:
            first = yield RoundSpec(tag=SM_QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            second = yield RoundSpec(tag=SM_QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            candidate = _select([first.replies, second.replies], certify)
            third = yield RoundSpec(
                tag=SM_WRITE_BACK,
                payload={"tv": candidate},
                rule=ReplyRule(min_count=quorum),
            )
            return _select([first.replies, second.replies, third.replies], certify).value

        return generator()
