"""GV06-style robust regular register: 2-round writes, 2-round reads.

This is the regular substrate the paper's Section 5 plugs into the
regular→atomic transformation to obtain the time-optimal 2-round-write /
4-round-read robust atomic storage.  Structure (see DESIGN.md §2.2 for the
reconstruction notes):

* **Writes** take two phases, *pre-write* then *write*, each awaiting
  ``S − t`` acks.  The pre-write round is what lets readers distinguish "a
  write reached some objects" from Byzantine fabrication: any value that
  completed its pre-write phase is stored by at least ``t + 1`` correct
  objects.
* **Reads** take two rounds.  Round one queries all objects; round two
  queries again *and writes back* the reader's current best candidate (the
  "readers must write" phenomenon of [Fan–Lynch 03]).  Selection pools the
  replies of both rounds.

Two trust modes cover the two adversary regimes this library exercises
(single-mode coverage of both at exactly two rounds is the standalone
contribution of [GV06] which we do not re-derive — see DESIGN.md):

* ``trust_model="replay"`` — Byzantine objects may replay any *genuine*
  protocol state (the exact adversary of the paper's lower-bound proofs) but
  cannot fabricate never-written values.  Selection returns the
  maximum-timestamp *reported* pair; freshness holds because any ``S − t``
  reply set contains at least one correct holder of the last complete write.
* ``trust_model="unauthenticated"`` — objects may fabricate arbitrary
  states.  Selection returns the maximum-timestamp *certified* pair (``t+1``
  identical reports), with round two accepting at network quiescence so that
  under schedules delivering all correct replies the last complete write is
  always certified.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.quorums.threshold import ByzantineThresholds
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.registers.timestamps import max_candidate, pooled_voucher_counts
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp

PRE_WRITE = "FR_PRE_WRITE"
WRITE = "FR_WRITE"
READ_ONE = "FR_READ1"
READ_TWO = "FR_READ2"

_TRUST_MODELS = ("replay", "unauthenticated")


class FastRegularObjectHandler(ObjectHandler):
    """Object state: pre-written and written pairs, plus reader write-backs."""

    def initial_state(self) -> dict[str, Any]:
        initial = TaggedValue.initial()
        return {"pw": initial, "w": initial, "rb": {}}

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == PRE_WRITE:
            incoming = message.payload["tv"]
            if incoming.ts > state["pw"].ts:
                state["pw"] = incoming
            return {"ack": True}
        if message.tag == WRITE:
            incoming = message.payload["tv"]
            if incoming.ts > state["w"].ts:
                state["w"] = incoming
            return {"ack": True}
        if message.tag == READ_ONE:
            return {"pw": state["pw"], "w": state["w"]}
        if message.tag == READ_TWO:
            write_back = message.payload.get("wb")
            if isinstance(write_back, TaggedValue):
                previous = state["rb"].get(str(message.src), TaggedValue.initial())
                if write_back.ts > previous.ts:
                    state["rb"][str(message.src)] = write_back
            return {"pw": state["pw"], "w": state["w"]}
        return {"error": f"unknown tag {message.tag}"}


@register_protocol(
    "fast-regular",
    model="byzantine",
    semantics="regular",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    scenarios=("fault-free", "crash", "silent", "replay"),
    description="GV06-style robust regular register: 2-round writes, 2-round reads",
)
class FastRegularProtocol(RegisterProtocol):
    """SWMR regular register, Byzantine model, optimal resilience."""

    name = "fast-regular"
    write_rounds = 2
    read_rounds = 2

    def __init__(self, trust_model: str = "replay") -> None:
        if trust_model not in _TRUST_MODELS:
            raise ConfigurationError(
                f"trust_model must be one of {_TRUST_MODELS}, got {trust_model!r}"
            )
        self.trust_model = trust_model
        self._write_ts = Timestamp.zero()
        self.name = f"fast-regular[{trust_model}]"

    def validate_configuration(self, S: int, t: int) -> None:
        ByzantineThresholds(S=S, t=t)  # raises unless S >= 3t + 1

    def object_handler(self) -> ObjectHandler:
        return FastRegularObjectHandler()

    # ------------------------------------------------------------------ #
    # Write
    # ------------------------------------------------------------------ #

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        self._write_ts = self._write_ts.next_for()
        return self.write_generator_tagged(ctx, TaggedValue(ts=self._write_ts, value=value))

    def write_generator_tagged(self, ctx: ProtocolContext, tv: TaggedValue) -> ProtocolGenerator:
        """Write an explicit ``(ts, value)`` pair (used by the transforms)."""
        quorum = ctx.wait_quorum

        def generator() -> ProtocolGenerator:
            yield RoundSpec(tag=PRE_WRITE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            yield RoundSpec(tag=WRITE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            return tv.value

        return generator()

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        tagged = self.read_tagged_generator(ctx, reader)

        def generator() -> ProtocolGenerator:
            result = yield from tagged
            return result.value

        return generator()

    def read_tagged_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        """Read returning the full ``(ts, value)`` pair (used by transforms)."""
        quorum = ctx.wait_quorum
        certify = ctx.certify
        trust_model = self.trust_model

        def select(reply_sets: list[dict]) -> TaggedValue:
            counts = pooled_voucher_counts(reply_sets, fields=("pw", "w"))
            if trust_model == "replay":
                # Every report is genuine: freshest report wins.
                return max_candidate(counts.keys())
            certified = [pair for pair, n in counts.items() if n >= certify]
            if certified:
                return max_candidate(certified)
            # Fallback, reachable only under fabrication combined with
            # withheld correct replies *and* write concurrency: best effort.
            return max_candidate(counts.keys())

        def generator() -> ProtocolGenerator:
            first = yield RoundSpec(tag=READ_ONE, payload={}, rule=ReplyRule(min_count=quorum))
            candidate = select([first.replies])

            def certified_fresh(replies: dict) -> bool:
                counts = pooled_voucher_counts([first.replies, replies], fields=("pw", "w"))
                return any(n >= certify for n in counts.values())

            second = yield RoundSpec(
                tag=READ_TWO,
                payload={"wb": candidate},
                rule=ReplyRule(
                    min_count=quorum,
                    predicate=None if trust_model == "replay" else certified_fresh,
                    accept_on_quiescence=True,
                ),
            )
            return select([first.replies, second.replies])

        return generator()
