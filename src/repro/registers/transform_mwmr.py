"""SWMR → MWMR transformation (the paper's closing remark of Section 5).

The classical construction: each of the ``n`` writers owns one SWMR atomic
register (here: the regular→atomic transform of
:mod:`repro.registers.transform_atomic`, so the whole stack is built from
Byzantine-robust regular registers).  A multi-writer write first reads all
``n`` registers in parallel to learn the highest timestamp, then writes
``(max.seq + 1, writer_index, value)`` into its own register; a multi-writer
read reads all ``n`` registers in parallel and returns the maximum pair.

Round accounting over a substrate with ``r`` read rounds and ``w`` write
rounds: MWMR reads cost ``r + w`` rounds (all SWMR atomic reads share
physical rounds), MWMR writes cost ``(r + w) + w``.  With the GV06 substrate
that is 4-round reads and 6-round writes — the price of multi-writer
on top of the paper's time-optimal SWMR storage.

Because every logical register is flattened onto the same physical objects
by :mod:`repro.registers.multiplex`, the object side is a single
:class:`~repro.registers.multiplex.MultiplexObjectHandler` over the
substrate handler, regardless of nesting depth.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.registers.base import (
    ProtocolContext,
    RegisterProtocol,
    RegisterSystem,
    _durable,
    resolve_reader,
)
from repro.registers.multiplex import MultiplexObjectHandler, multiplex
from repro.registers.timestamps import max_candidate
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.sim.batched import resolve_engine
from repro.sim.network import DeliveryPolicy
from repro.sim.process import FaultBehavior, ObjectServer
from repro.sim.simulator import ClientOperation, ProtocolGenerator, Simulator
from repro.sim.tracing import MessageTrace
from repro.spec.history import History, HistoryRecorder
from repro.storage import StorageRuntime
from repro.types import (
    BOTTOM,
    ProcessId,
    TaggedValue,
    Timestamp,
    object_ids,
    reader_id,
    reader_ids,
    writer_id,
)


class MultiWriterRegisterSystem:
    """A complete MWMR atomic storage system on simulated Byzantine objects.

    Unlike :class:`~repro.registers.base.RegisterSystem` (single writer),
    this harness owns the whole writer family.  Histories it produces have
    multiple writers and are checked with the general linearizability
    checker rather than the SWMR atomicity checker.

    Args:
        substrate_factory: produces fresh regular-register substrate
            instances (e.g. ``lambda: FastRegularProtocol()``).
        t: fault threshold; ``S`` defaults to ``3t + 1``.
        n_writers / n_readers: the MWMR client population.
    """

    def __init__(
        self,
        substrate_factory: Callable[[], RegisterProtocol],
        t: int,
        S: int | None = None,
        n_writers: int = 2,
        n_readers: int = 2,
        behaviors: Mapping[ProcessId, FaultBehavior] | None = None,
        policy: DeliveryPolicy | None = None,
        allow_overfault: bool = False,
        engine: str = "event",
        durability: str = "none",
    ) -> None:
        if n_writers < 1:
            raise ConfigurationError("need at least one writer")
        if S is None:
            S = 3 * t + 1
        probe = substrate_factory()
        probe.validate_configuration(S, t)
        self.ctx = ProtocolContext(S=S, t=t, objects=object_ids(S))
        self.n_writers = n_writers
        self.n_readers = n_readers
        total_personas = n_writers + n_readers
        # One SWMR atomic register per writer; every client is a potential
        # reader of every register, so each transform carries all personas.
        self._registers: dict[int, RegularToAtomicProtocol] = {
            j: RegularToAtomicProtocol(substrate_factory, n_readers=total_personas)
            for j in range(1, n_writers + 1)
        }
        behaviors = dict(behaviors or {})
        if len(behaviors) > t and not allow_overfault:
            raise ConfigurationError(f"{len(behaviors)} faulty objects exceed t={t}")
        handler_source = substrate_factory()
        self.storage = StorageRuntime.create(durability)
        self.durability = durability
        self.servers = [
            ObjectServer(
                pid=pid,
                handler=_durable(
                    self.storage,
                    pid,
                    MultiplexObjectHandler(handler_source.object_handler()),
                ),
                behavior=behaviors.get(pid),
            )
            for pid in self.ctx.objects
        ]
        self.recorder = HistoryRecorder()
        self.trace = MessageTrace()
        self.engine = engine
        self.simulator = resolve_engine(engine)(
            self.servers, policy=policy, history=self.recorder, trace=self.trace
        )
        sample = self._registers[1]
        self.read_rounds = sample.read_rounds
        self.write_rounds = sample.read_rounds + sample.write_rounds

    # ------------------------------------------------------------------ #
    # Personas
    # ------------------------------------------------------------------ #

    def _writer_pid(self, writer_index: int) -> ProcessId:
        if not 1 <= writer_index <= self.n_writers:
            raise ConfigurationError(f"writer index {writer_index} out of range")
        return ProcessId("writer", writer_index)

    def _writer_persona(self, writer_index: int) -> ProcessId:
        """Reader persona a writer uses when scanning registers."""
        return reader_id(writer_index)

    def _reader_persona(self, reader_index: int) -> ProcessId:
        if not 1 <= reader_index <= self.n_readers:
            raise ConfigurationError(f"reader index {reader_index} out of range")
        return reader_id(self.n_writers + reader_index)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def _scan_generator(self, persona: ProcessId) -> ProtocolGenerator:
        """Read all writer registers in parallel; return the max pair."""
        reads = {
            f"w{j}": self._registers[j].read_tagged_generator(self.ctx, persona)
            for j in sorted(self._registers)
        }

        def generator() -> ProtocolGenerator:
            observed: Mapping[str, TaggedValue] = yield from multiplex(reads)
            return max_candidate(observed.values())

        return generator()

    def write(self, writer_index: int, value: Any, at: int = 0) -> ClientOperation:
        """Schedule a multi-writer write of ``value`` by writer ``writer_index``."""
        if value == BOTTOM:
            raise ConfigurationError("⊥ is reserved for the initial value and cannot be written")
        writer_pid = self._writer_pid(writer_index)  # validates the index
        persona = self._writer_persona(writer_index)
        scan = self._scan_generator(persona)
        register = self._registers[writer_index]
        ctx = self.ctx

        def generator() -> ProtocolGenerator:
            best: TaggedValue = yield from scan
            ts = Timestamp(best.ts.seq + 1, writer_index)
            store = register.write_tagged_generator(ctx, TaggedValue(ts=ts, value=value))
            yield from multiplex({f"w{writer_index}": store})
            return value

        return self.simulator.invoke(
            writer_pid, "write", generator(), at=at, declared_value=value
        )

    def read(self, reader_index: int, at: int = 0) -> ClientOperation:
        """Schedule a multi-writer read by reader ``reader_index``."""
        persona = self._reader_persona(reader_index)
        scan = self._scan_generator(persona)

        def generator() -> ProtocolGenerator:
            best: TaggedValue = yield from scan
            return best.value

        return self.simulator.invoke(reader_id(1000 + reader_index), "read", generator(), at=at)

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Run the simulation to quiescence; returns the event count."""
        return self.simulator.run(max_events=max_events)

    def history(self) -> History:
        """The recorded multi-writer history (check with ``is_linearizable``)."""
        return self.recorder.freeze()


class NativeMultiWriterSystem:
    """Multi-writer harness over a *natively* MWMR register protocol.

    Some protocols (classical multi-writer ABD) are multi-writer by
    construction: one shared object state, per-writer operation generators
    exposed as ``write_generator_for(ctx, writer_index, value)``.  This
    harness gives them the same writer-family surface as
    :class:`MultiWriterRegisterSystem` so the multi-writer backend can run
    either kind interchangeably.
    """

    def __init__(
        self,
        protocol: RegisterProtocol,
        t: int,
        S: int | None = None,
        n_writers: int = 2,
        n_readers: int = 2,
        behaviors: Mapping[ProcessId, FaultBehavior] | None = None,
        policy: DeliveryPolicy | None = None,
        allow_overfault: bool = False,
        engine: str = "event",
        durability: str = "none",
    ) -> None:
        if n_writers < 1:
            raise ConfigurationError("need at least one writer")
        if not hasattr(protocol, "write_generator_for"):
            raise ConfigurationError(
                f"{protocol.name} is not a native multi-writer protocol "
                "(no write_generator_for)"
            )
        if S is None:
            S = RegisterSystem._default_size(protocol, t)
        protocol.validate_configuration(S, t)
        behaviors = dict(behaviors or {})
        if len(behaviors) > t and not allow_overfault:
            raise ConfigurationError(f"{len(behaviors)} faulty objects exceed t={t}")
        self.protocol = protocol
        self.ctx = ProtocolContext(S=S, t=t, objects=object_ids(S))
        unknown = set(behaviors) - set(self.ctx.objects)
        if unknown:
            raise ConfigurationError(f"behaviours for unknown objects: {sorted(unknown)}")
        self.n_writers = n_writers
        self.n_readers = n_readers
        self.storage = StorageRuntime.create(durability)
        self.durability = durability
        self.servers = [
            ObjectServer(
                pid=pid,
                handler=_durable(self.storage, pid, protocol.object_handler()),
                behavior=behaviors.get(pid),
            )
            for pid in self.ctx.objects
        ]
        self.recorder = HistoryRecorder()
        self.trace = MessageTrace()
        self.engine = engine
        self.simulator = resolve_engine(engine)(
            self.servers, policy=policy, history=self.recorder, trace=self.trace
        )
        self.readers = reader_ids(n_readers)
        self.write_rounds = protocol.write_rounds
        self.read_rounds = protocol.read_rounds

    def write(self, writer_index: int, value: Any, at: int = 0) -> ClientOperation:
        """Schedule a write of ``value`` by writer ``writer_index``."""
        if value == BOTTOM:
            raise ConfigurationError("⊥ is reserved for the initial value and cannot be written")
        if not 1 <= writer_index <= self.n_writers:
            raise ConfigurationError(f"writer index {writer_index} out of range")
        generator = self.protocol.write_generator_for(self.ctx, writer_index, value)
        return self.simulator.invoke(
            ProcessId("writer", writer_index), "write", generator, at=at, declared_value=value
        )

    def read(self, reader_index: int = 1, at: int = 0) -> ClientOperation:
        """Schedule a read by reader ``r_{reader_index}``."""
        reader = resolve_reader(self.readers, reader_index)
        generator = self.protocol.read_generator(self.ctx, reader)
        return self.simulator.invoke(reader, "read", generator, at=at)

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Run the simulation to quiescence; returns the event count."""
        return self.simulator.run(max_events=max_events)

    def history(self) -> History:
        """The recorded multi-writer history."""
        return self.recorder.freeze()


# --------------------------------------------------------------------- #
# Registry face of the transformation
# --------------------------------------------------------------------- #


class MultiWriterStackProtocol(RegisterProtocol):
    """Registry entry for the SWMR→MWMR stack: metadata plus the substrate.

    The transformation is a whole *system* (one SWMR atomic register per
    writer, a shared writer family), not a drop-in
    :class:`~repro.registers.base.RegisterProtocol` — so this class carries
    the substrate factory and the round accounting for the registry and the
    multi-writer backend, and refuses to produce single-register generators:
    running it requires ``backend="multi-writer"``.
    """

    def __init__(self, name: str, substrate_factory: Callable[[], RegisterProtocol]) -> None:
        self.name = name
        self.substrate_factory = substrate_factory
        sample = RegularToAtomicProtocol(substrate_factory, n_readers=1)
        # Section 5 accounting over a substrate with r-round reads and
        # w-round writes: MWMR reads cost r + w, MWMR writes (r + w) + w.
        self.read_rounds = sample.read_rounds
        self.write_rounds = sample.read_rounds + sample.write_rounds

    def validate_configuration(self, S: int, t: int) -> None:
        self.substrate_factory().validate_configuration(S, t)

    def _not_single_register(self) -> ConfigurationError:
        return ConfigurationError(
            f"{self.name} is a multi-writer stack; run it through the "
            "multi-writer backend (Cluster resolves it automatically)"
        )

    def object_handler(self):
        raise self._not_single_register()

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        raise self._not_single_register()

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        raise self._not_single_register()


def _mwmr_over_fast_regular() -> MultiWriterStackProtocol:
    from repro.registers.fast_regular import FastRegularProtocol

    return MultiWriterStackProtocol(
        "mwmr-fast-regular", lambda: FastRegularProtocol("replay")
    )


def _mwmr_over_secret_token() -> MultiWriterStackProtocol:
    from repro.registers.secret_token import SecretTokenProtocol

    return MultiWriterStackProtocol("mwmr-secret-token", lambda: SecretTokenProtocol())


register_protocol(
    "mwmr-fast-regular",
    model="byzantine",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    write_rounds=6,  # (r + w) + w = (2 + 2) + 2 over the GV06 substrate
    read_rounds=4,  # r + w = 2 + 2
    scenarios=("fault-free", "crash", "silent", "replay"),
    backend="multi-writer",
    aliases=("mwmr(fast-regular)",),
    description=(
        "SWMR→MWMR over atomic-fast-regular — the paper's closing stack "
        "(4-round reads, 6-round writes)"
    ),
    factory=_mwmr_over_fast_regular,
)

register_protocol(
    "mwmr-secret-token",
    model="secret-token",
    semantics="atomic",
    resilience="S ≥ 3t + 1",
    min_size=lambda t: 3 * t + 1,
    write_rounds=5,  # (r + w) + w = (1 + 2) + 2 over the token substrate
    read_rounds=3,  # r + w = 1 + 2
    scenarios=("fault-free", "silent", "replay", "fabricate"),
    backend="multi-writer",
    aliases=("mwmr(secret-token)",),
    description="SWMR→MWMR over atomic-secret-token (3-round reads, 5-round writes)",
    factory=_mwmr_over_secret_token,
)
