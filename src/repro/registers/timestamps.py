"""Timestamp/candidate selection helpers shared by the Byzantine protocols.

Reply payloads of the Byzantine protocols carry one or more
:class:`~repro.types.TaggedValue` fields (``pw`` — pre-written, ``w`` —
written).  This module centralizes the selection arithmetic: extracting
candidates, counting vouchers, certification at the ``t + 1`` threshold, and
the freshness maxima the correctness arguments lean on.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping

from repro.sim.rounds import ReplySet
from repro.types import ProcessId, TaggedValue


def reported_pairs(payload: Mapping[str, Any], fields: Iterable[str]) -> list[TaggedValue]:
    """The tagged values a single reply vouches for."""
    pairs = []
    for name in fields:
        value = payload.get(name)
        if isinstance(value, TaggedValue):
            pairs.append(value)
    return pairs


def voucher_counts(replies: ReplySet, fields: Iterable[str] = ("pw", "w")) -> Counter:
    """How many distinct objects vouch for each tagged value.

    An object vouches for every tagged value appearing in any of the given
    payload fields of its reply; it counts once per value even when the value
    appears in both fields.
    """
    fields = tuple(fields)
    counts: Counter = Counter()
    for payload in replies.values():
        for pair in set(reported_pairs(payload, fields)):
            counts[pair] += 1
    return counts


def pooled_voucher_counts(
    reply_sets: Iterable[ReplySet], fields: Iterable[str] = ("pw", "w")
) -> Counter:
    """Voucher counts pooled across several rounds.

    An object vouching for a value in *any* round counts once: pooling per
    ``(object, value)`` pair, as the bounded-read protocol requires (each
    additional round can only add new distinct vouchers).
    """
    fields = tuple(fields)
    seen: set[tuple[ProcessId, TaggedValue]] = set()
    counts: Counter = Counter()
    for replies in reply_sets:
        for pid, payload in replies.items():
            for pair in set(reported_pairs(payload, fields)):
                if (pid, pair) not in seen:
                    seen.add((pid, pair))
                    counts[pair] += 1
    return counts


def certified_candidates(counts: Counter, threshold: int) -> list[TaggedValue]:
    """Values vouched for by at least ``threshold`` distinct objects."""
    return [pair for pair, n in counts.items() if n >= threshold]


def max_candidate(candidates: Iterable[TaggedValue]) -> TaggedValue:
    """Highest-timestamp candidate; ``(0, ⊥)`` when the pool is empty."""
    best = TaggedValue.initial()
    for pair in candidates:
        if pair.ts > best.ts:
            best = pair
    return best


def max_certified(replies: ReplySet, threshold: int, fields: Iterable[str] = ("pw", "w")) -> TaggedValue:
    """Highest certified candidate in one reply set."""
    counts = voucher_counts(replies, fields)
    return max_candidate(certified_candidates(counts, threshold))


def newer_reporters(replies: ReplySet, than: TaggedValue, fields: Iterable[str] = ("pw", "w")) -> int:
    """Objects reporting any pair strictly newer than ``than``."""
    fields = tuple(fields)
    count = 0
    for payload in replies.values():
        if any(pair.ts > than.ts for pair in reported_pairs(payload, fields)):
            count += 1
    return count
