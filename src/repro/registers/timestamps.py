"""Timestamp/candidate selection helpers shared by the Byzantine protocols.

Reply payloads of the Byzantine protocols carry one or more
:class:`~repro.types.TaggedValue` fields (``pw`` — pre-written, ``w`` —
written).  This module centralizes the selection arithmetic: extracting
candidates, counting vouchers, certification at the ``t + 1`` threshold, and
the freshness maxima the correctness arguments lean on.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping

from repro.sim.rounds import ReplySet
from repro.types import ProcessId, TaggedValue


def reported_pairs(payload: Mapping[str, Any], fields: Iterable[str]) -> list[TaggedValue]:
    """The tagged values a single reply vouches for."""
    pairs = []
    for name in fields:
        value = payload.get(name)
        if isinstance(value, TaggedValue):
            pairs.append(value)
    return pairs


def voucher_counts(replies: ReplySet, fields: Iterable[str] = ("pw", "w")) -> Counter:
    """How many distinct objects vouch for each tagged value.

    An object vouches for every tagged value appearing in any of the given
    payload fields of its reply; it counts once per value even when the value
    appears in both fields.
    """
    fields = tuple(fields)
    if 1 <= len(fields) <= 2:
        # Every caller passes at most two fields; counting them directly
        # skips the per-payload list and set allocations of the general
        # path (this helper runs once per terminated round on read-heavy
        # workloads, inside round predicates on some).  Tallying goes
        # through a plain dict — ``Counter.__missing__`` costs a Python
        # call per new key — and is wrapped as a Counter at the end.
        first_field = fields[0]
        second_field = fields[1] if len(fields) == 2 else None
        tally: dict[TaggedValue, int] = {}
        for payload in replies.values():
            first = payload.get(first_field)
            if not isinstance(first, TaggedValue):
                first = None
            else:
                tally[first] = tally.get(first, 0) + 1
            if second_field is not None:
                second = payload.get(second_field)
                if isinstance(second, TaggedValue) and second != first:
                    tally[second] = tally.get(second, 0) + 1
        return Counter(tally)
    counts: Counter = Counter()
    for payload in replies.values():
        for pair in set(reported_pairs(payload, fields)):
            counts[pair] += 1
    return counts


def pooled_voucher_counts(
    reply_sets: Iterable[ReplySet], fields: Iterable[str] = ("pw", "w")
) -> Counter:
    """Voucher counts pooled across several rounds.

    An object vouching for a value in *any* round counts once: pooling per
    ``(object, value)`` pair, as the bounded-read protocol requires (each
    additional round can only add new distinct vouchers).
    """
    fields = tuple(fields)
    if len(fields) == 2:
        # Two-field fast path, same reasoning as :func:`voucher_counts`.
        # Pooling state is a short per-object list instead of a set of
        # (object, pair) tuples: objects report only a handful of distinct
        # pairs per read, and the membership scan costs two cheap equality
        # checks instead of a tuple allocation plus a deep nested hash.
        first_field, second_field = fields
        seen_by_pid: dict[ProcessId, list[TaggedValue]] = {}
        tally: dict[TaggedValue, int] = {}
        for replies in reply_sets:
            for pid, payload in replies.items():
                pairs = seen_by_pid.get(pid)
                first = payload.get(first_field)
                if not isinstance(first, TaggedValue):
                    first = None
                else:
                    if pairs is None:
                        seen_by_pid[pid] = pairs = []
                    if first not in pairs:
                        pairs.append(first)
                        tally[first] = tally.get(first, 0) + 1
                second = payload.get(second_field)
                if isinstance(second, TaggedValue) and second != first:
                    if pairs is None:
                        seen_by_pid[pid] = pairs = []
                    if second not in pairs:
                        pairs.append(second)
                        tally[second] = tally.get(second, 0) + 1
        return Counter(tally)
    counts: Counter = Counter()
    seen: set[tuple[ProcessId, TaggedValue]] = set()
    for replies in reply_sets:
        for pid, payload in replies.items():
            for pair in set(reported_pairs(payload, fields)):
                if (pid, pair) not in seen:
                    seen.add((pid, pair))
                    counts[pair] += 1
    return counts


def certified_candidates(counts: Counter, threshold: int) -> list[TaggedValue]:
    """Values vouched for by at least ``threshold`` distinct objects."""
    return [pair for pair, n in counts.items() if n >= threshold]


def max_candidate(candidates: Iterable[TaggedValue]) -> TaggedValue:
    """Highest-timestamp candidate; ``(0, ⊥)`` when the pool is empty."""
    best = TaggedValue.initial()
    for pair in candidates:
        if pair.ts > best.ts:
            best = pair
    return best


def max_certified(replies: ReplySet, threshold: int, fields: Iterable[str] = ("pw", "w")) -> TaggedValue:
    """Highest certified candidate in one reply set."""
    counts = voucher_counts(replies, fields)
    return max_candidate(certified_candidates(counts, threshold))


def newer_reporters(replies: ReplySet, than: TaggedValue, fields: Iterable[str] = ("pw", "w")) -> int:
    """Objects reporting any pair strictly newer than ``than``."""
    fields = tuple(fields)
    count = 0
    for payload in replies.values():
        if any(pair.ts > than.ts for pair in reported_pairs(payload, fields)):
            count += 1
    return count
