"""Register protocol suite.

Implements the storage emulations the paper discusses:

* :mod:`repro.registers.abd` — crash-tolerant ABD (1-round writes, 2-round
  reads) and its multi-writer variant, the classical baseline;
* :mod:`repro.registers.safe` — a Byzantine safe register, the weakest rung;
* :mod:`repro.registers.fast_regular` — GV06-style robust regular register
  (2-round writes, 2-round reads, readers write);
* :mod:`repro.registers.bounded_regular` — AAB07-style bounded reads
  (voucher pooling across rounds, ``O(t)`` worst case);
* :mod:`repro.registers.secret_token` — DMSS09-style regular register in the
  secret-token model (1-round reads absent contention);
* :mod:`repro.registers.lucky` — best-case-fast atomic register in the
  spirit of [14]/[16] (1-round lucky paths, graceful degradation);
* :mod:`repro.registers.transform_atomic` — the SWMR regular → SWMR atomic
  transformation of [4, 20] that closes the paper's gap (2-round writes,
  4-round reads; 3-round reads over the token substrate);
* :mod:`repro.registers.transform_mwmr` — SWMR → MWMR transformation (and
  its registry face, the ``mwmr-*`` stacks the multi-writer backend runs);
* :mod:`repro.registers.sharded` — keyspace-sharded composite: one SWMR
  register per key multiplexed over the shared physical objects;
* :mod:`repro.registers.strawman` — deliberately scalable-but-doomed
  protocols (2-round and 3-round reads) used as concrete victims of the
  lower-bound constructions.

The registry
------------

Every protocol here registers itself with
:func:`repro.api.registry.register_protocol` — a class decorator (or, for
the composite transformations, an explicit factory registration) attaching
the metadata the facade reports: fault model, semantics rung, resilience
class (both as a formula and an executable ``min_size(t)``), advertised
round counts, and the named scenarios its guarantees cover.  That makes
every protocol addressable as data::

    from repro.api import available_protocols, get_protocol, get_spec

    available_protocols()              # ('abd', 'atomic-fast-regular', ...)
    get_protocol("fast-regular")       # a fresh FastRegularProtocol
    get_spec("abd").resilience         # 'S ≥ 2t + 1'

Importing this package runs the decorators, so the registry is always
complete once :mod:`repro.registers` is loaded (the facade does this
lazily on first lookup).  New protocols only need the decorator — the CLI
(``python -m repro list-protocols`` / ``run``), the benchmarks and the
:class:`repro.api.Cluster` builder pick them up automatically.
"""

from repro.registers.base import ProtocolContext, RegisterProtocol, RegisterSystem
from repro.registers.abd import AbdProtocol, MultiWriterAbdProtocol
from repro.registers.safe import ByzantineSafeProtocol
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.bounded_regular import BoundedRegularProtocol
from repro.registers.secret_token import SecretTokenProtocol, TokenAuthority
from repro.registers.lucky import LuckyAtomicProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.registers.transform_mwmr import (
    MultiWriterRegisterSystem,
    MultiWriterStackProtocol,
    NativeMultiWriterSystem,
)
from repro.registers.sharded import ShardedRegisterSystem
from repro.registers.strawman import ThreeRoundReadProtocol, TwoRoundReadProtocol

__all__ = [
    "ProtocolContext",
    "RegisterProtocol",
    "RegisterSystem",
    "AbdProtocol",
    "MultiWriterAbdProtocol",
    "ByzantineSafeProtocol",
    "FastRegularProtocol",
    "BoundedRegularProtocol",
    "SecretTokenProtocol",
    "TokenAuthority",
    "LuckyAtomicProtocol",
    "RegularToAtomicProtocol",
    "MultiWriterRegisterSystem",
    "MultiWriterStackProtocol",
    "NativeMultiWriterSystem",
    "ShardedRegisterSystem",
    "TwoRoundReadProtocol",
    "ThreeRoundReadProtocol",
]
