"""Keyspace-sharded clusters: many named registers on one set of objects.

The multiplex machinery of :mod:`repro.registers.multiplex` already lets any
number of logical registers share the same ``S`` physical storage objects —
the regular→atomic and SWMR→MWMR transformations rely on it.  This module
turns that capability into a *workload* dimension: a
:class:`ShardedRegisterSystem` hosts one independent SWMR register per key
("shard"), each with its own protocol instance and its own writer, all
flattened onto the shared physical objects through
:class:`~repro.registers.multiplex.MultiplexObjectHandler`.

Per-key semantics are exactly the underlying protocol's semantics: a fault
threshold ``t`` is a property of the *physical* objects, so one Byzantine
object is Byzantine for every shard at once — which is what makes sharded
runs interesting as robustness experiments, not just as throughput ones.
Consistency is therefore checked **per key** (each shard's history is an
ordinary SWMR history) and aggregated by the harness.

Round accounting is unchanged: each operation addresses one shard and uses
exactly the substrate protocol's advertised rounds; shards add capacity,
never latency.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.registers.base import (
    ProtocolContext,
    RegisterProtocol,
    RegisterSystem,
    _durable,
    resolve_reader,
)
from repro.registers.multiplex import MultiplexObjectHandler, multiplex
from repro.sim.batched import resolve_engine
from repro.sim.network import DeliveryPolicy
from repro.sim.process import FaultBehavior, ObjectServer
from repro.sim.simulator import ClientOperation, ProtocolGenerator, Simulator
from repro.sim.tracing import MessageTrace
from repro.spec.history import History, HistoryRecorder
from repro.storage import StorageRuntime
from repro.types import BOTTOM, OperationId, ProcessId, object_ids, reader_ids


class ShardedRegisterSystem:
    """One SWMR register per key, multiplexed over shared physical objects.

    Args:
        protocol_factory: produces a fresh substrate protocol per key
            (protocols are stateful — never shared between shards).
        keys: shard names; each gets its own register and its own writer
            (``ProcessId("writer", i)`` for the i-th key).
        t: fault threshold of the *physical* objects (shared by all shards).
        S: object count (defaults to the protocol's minimum for ``t``).
        n_readers: reader population, shared across all shards.
        behaviors: fault behaviours keyed by object id (see
            :class:`~repro.registers.base.RegisterSystem`).
    """

    def __init__(
        self,
        protocol_factory: Callable[[], RegisterProtocol],
        keys: Sequence[str],
        t: int,
        S: int | None = None,
        n_readers: int = 2,
        behaviors: Mapping[ProcessId, FaultBehavior] | None = None,
        policy: DeliveryPolicy | None = None,
        allow_overfault: bool = False,
        engine: str = "event",
        durability: str = "none",
    ) -> None:
        keys = tuple(keys)
        if not keys:
            raise ConfigurationError("a sharded system needs at least one key")
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate shard keys: {sorted(keys)}")
        for key in keys:
            if not key or "/" in key:
                raise ConfigurationError(f"invalid shard key {key!r} (empty or contains '/')")
        self.keys = keys
        self._protocols: dict[str, RegisterProtocol] = {
            key: protocol_factory() for key in keys
        }
        sample = self._protocols[keys[0]]
        if S is None:
            S = RegisterSystem._default_size(sample, t)
        sample.validate_configuration(S, t)
        behaviors = dict(behaviors or {})
        if len(behaviors) > t and not allow_overfault:
            raise ConfigurationError(
                f"{len(behaviors)} faulty objects exceed the threshold t={t}"
            )
        self.protocol = sample  # the substrate face: name + advertised rounds
        self.ctx = ProtocolContext(S=S, t=t, objects=object_ids(S))
        unknown = set(behaviors) - set(self.ctx.objects)
        if unknown:
            raise ConfigurationError(f"behaviours for unknown objects: {sorted(unknown)}")
        # Object state is per *flattened* register name, so the handler to
        # multiplex is the innermost one: composite substrates (the
        # regular→atomic transform) already wrap theirs in a
        # MultiplexObjectHandler, and the generator-side flattening
        # path-joins nested names — unwrap rather than double-wrap.
        handler_source = protocol_factory()
        inner = handler_source.object_handler()
        if isinstance(inner, MultiplexObjectHandler):
            inner = inner.inner
        self.storage = StorageRuntime.create(durability)
        self.durability = durability
        self.servers = [
            ObjectServer(
                pid=pid,
                handler=_durable(self.storage, pid, MultiplexObjectHandler(inner)),
                behavior=behaviors.get(pid),
            )
            for pid in self.ctx.objects
        ]
        self.recorder = HistoryRecorder()
        self.trace = MessageTrace()
        self.engine = engine
        self.simulator = resolve_engine(engine)(
            self.servers, policy=policy, history=self.recorder, trace=self.trace
        )
        self.writers: dict[str, ProcessId] = {
            key: ProcessId("writer", index) for index, key in enumerate(keys, start=1)
        }
        self.readers = reader_ids(n_readers)
        self._op_keys: dict[OperationId, str] = {}

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def _protocol_for(self, key: str) -> RegisterProtocol:
        try:
            return self._protocols[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown shard key {key!r}; configured keys: {', '.join(self.keys)}"
            ) from None

    def write(self, key: str, value: Any, at: int = 0) -> ClientOperation:
        """Schedule a write of ``value`` into shard ``key`` by its writer."""
        protocol = self._protocol_for(key)
        if value == BOTTOM:
            raise ConfigurationError("⊥ is reserved for the initial value and cannot be written")
        inner = protocol.write_generator(self.ctx, value)

        def generator() -> ProtocolGenerator:
            results = yield from multiplex({key: inner})
            return results[key]

        operation = self.simulator.invoke(
            self.writers[key], "write", generator(), at=at, declared_value=value
        )
        self._op_keys[operation.op_id] = key
        return operation

    def read(self, key: str, reader_index: int = 1, at: int = 0) -> ClientOperation:
        """Schedule a read of shard ``key`` by reader ``r_{reader_index}``."""
        protocol = self._protocol_for(key)
        reader = resolve_reader(self.readers, reader_index)
        inner = protocol.read_generator(self.ctx, reader)

        def generator() -> ProtocolGenerator:
            results = yield from multiplex({key: inner})
            return results[key]

        operation = self.simulator.invoke(reader, "read", generator(), at=at)
        self._op_keys[operation.op_id] = key
        return operation

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Run the simulation to quiescence; returns the event count."""
        return self.simulator.run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def key_of(self, op_id: OperationId) -> str:
        """The shard an operation addressed."""
        return self._op_keys[op_id]

    def history(self) -> History:
        """The combined cross-shard history (drill-down view)."""
        return self.recorder.freeze()

    def histories(self) -> dict[str, History]:
        """One per-key history; each is an ordinary SWMR history."""
        combined = self.recorder.freeze()
        per_key: dict[str, list] = {key: [] for key in self.keys}
        for record in combined.records:
            per_key[self._op_keys[record.op_id]].append(record)
        return {key: History(records) for key, records in per_key.items()}

    def max_rounds(self, kind: str) -> int:
        """Worst-case rounds used by completed operations of ``kind``."""
        return self.simulator.max_rounds_used(kind)
