"""The ABD register emulation (Attiya, Bar-Noy, Dolev 1995).

The seminal crash-tolerant robust atomic SWMR register the paper's related
work opens with: majority quorums over ``S ≥ 2t + 1`` objects, **one-round
writes** and **two-round reads** (query + write-back).  Included both as the
classical baseline of the latency matrix (experiment E6) and as the
foundation of the strawman protocols the lower-bound constructions defeat
(crash-style quorum logic is exactly what becomes unsound under Byzantine
objects).

Also provides the standard multi-writer variant (two-round writes: query the
highest timestamp, then store with a larger one), which the paper's related
work cites as the classical MWMR round-complexity reference point.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.registry import register_protocol
from repro.errors import ConfigurationError
from repro.quorums.threshold import CrashThresholds
from repro.registers.base import ProtocolContext, RegisterProtocol
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.sim.rounds import ReplyRule, RoundSpec
from repro.sim.simulator import ProtocolGenerator
from repro.types import ProcessId, TaggedValue, Timestamp

#: Payload/tag vocabulary of the ABD family.
QUERY = "ABD_QUERY"
STORE = "ABD_STORE"


class AbdObjectHandler(ObjectHandler):
    """Object state: the highest-timestamped value seen so far."""

    def initial_state(self) -> dict[str, Any]:
        return {"tv": TaggedValue.initial()}

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        if message.tag == STORE:
            incoming = message.payload["tv"]
            if incoming.ts > state["tv"].ts:
                state["tv"] = incoming
            return {"ack": True, "tv": state["tv"]}
        if message.tag == QUERY:
            return {"tv": state["tv"]}
        return {"error": f"unknown tag {message.tag}"}


@register_protocol(
    "abd",
    model="crash",
    semantics="atomic",
    resilience="S ≥ 2t + 1",
    min_size=lambda t: 2 * t + 1,
    scenarios=("fault-free", "crash", "silent"),
    description="classical crash-tolerant ABD: majority quorums, read write-backs",
)
class AbdProtocol(RegisterProtocol):
    """SWMR ABD: 1-round writes, 2-round reads, crash faults only."""

    name = "abd"
    write_rounds = 1
    read_rounds = 2

    def __init__(self) -> None:
        self._write_ts = Timestamp.zero()

    def validate_configuration(self, S: int, t: int) -> None:
        # Raises ConfigurationError unless S >= 2t + 1.
        CrashThresholds(S=S, t=t)

    def object_handler(self) -> ObjectHandler:
        return AbdObjectHandler()

    def _quorum(self, ctx: ProtocolContext) -> int:
        return CrashThresholds(S=ctx.S, t=ctx.t).quorum

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        quorum = self._quorum(ctx)
        self._write_ts = self._write_ts.next_for()
        tv = TaggedValue(ts=self._write_ts, value=value)

        def generator() -> ProtocolGenerator:
            yield RoundSpec(tag=STORE, payload={"tv": tv}, rule=ReplyRule(min_count=quorum))
            return value

        return generator()

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = self._quorum(ctx)

        def generator() -> ProtocolGenerator:
            outcome = yield RoundSpec(tag=QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            best = TaggedValue.initial()
            for payload in outcome.replies.values():
                candidate = payload["tv"]
                if candidate.ts > best.ts:
                    best = candidate
            # Write-back: the step that upgrades regular to atomic — a later
            # read is guaranteed to meet a quorum that stores `best`.
            yield RoundSpec(tag=STORE, payload={"tv": best}, rule=ReplyRule(min_count=quorum))
            return best.value

        return generator()


@register_protocol(
    "mw-abd",
    model="crash",
    semantics="atomic",
    resilience="S ≥ 2t + 1",
    min_size=lambda t: 2 * t + 1,
    scenarios=("fault-free", "crash", "silent"),
    description="multi-writer ABD: query-then-store two-round writes",
)
class MultiWriterAbdProtocol(RegisterProtocol):
    """MWMR ABD: both writes and reads take two rounds.

    Writers first query a majority for the highest timestamp, then store
    with a strictly larger one (ties broken by writer index) — the classical
    scheme the paper's related work contrasts with fast SWMR reads.
    """

    name = "mw-abd"
    write_rounds = 2
    read_rounds = 2

    def validate_configuration(self, S: int, t: int) -> None:
        CrashThresholds(S=S, t=t)

    def object_handler(self) -> ObjectHandler:
        return AbdObjectHandler()

    def _quorum(self, ctx: ProtocolContext) -> int:
        return CrashThresholds(S=ctx.S, t=ctx.t).quorum

    def write_generator_for(
        self, ctx: ProtocolContext, writer_index: int, value: Any
    ) -> ProtocolGenerator:
        """Write by the client with index ``writer_index``."""
        quorum = self._quorum(ctx)

        def generator() -> ProtocolGenerator:
            outcome = yield RoundSpec(tag=QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            highest = Timestamp.zero()
            for payload in outcome.replies.values():
                if payload["tv"].ts > highest:
                    highest = payload["tv"].ts
            ts = Timestamp(highest.seq + 1, writer_index)
            yield RoundSpec(
                tag=STORE,
                payload={"tv": TaggedValue(ts=ts, value=value)},
                rule=ReplyRule(min_count=quorum),
            )
            return value

        return generator()

    def write_generator(self, ctx: ProtocolContext, value: Any) -> ProtocolGenerator:
        return self.write_generator_for(ctx, writer_index=0, value=value)

    def read_generator(self, ctx: ProtocolContext, reader: ProcessId) -> ProtocolGenerator:
        quorum = self._quorum(ctx)

        def generator() -> ProtocolGenerator:
            outcome = yield RoundSpec(tag=QUERY, payload={}, rule=ReplyRule(min_count=quorum))
            best = TaggedValue.initial()
            for payload in outcome.replies.values():
                if payload["tv"].ts > best.ts:
                    best = payload["tv"]
            yield RoundSpec(tag=STORE, payload={"tv": best}, rule=ReplyRule(min_count=quorum))
            return best.value

        return generator()
