"""Cloud cost model for the paper's Introduction motivation."""

from repro.cost.model import CloudCostModel, CostEstimate

__all__ = ["CloudCostModel", "CostEstimate"]
