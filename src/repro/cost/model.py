"""Monetary and latency cost of storage round-trips.

The paper's Introduction argues that with storage outsourced to clouds,
"the number of interactions with the remote cloud storage … maps to our
latency metric and is often directly associated with the monetary cost".
This module makes that argument quantitative for the benchmark E8: every
round is one request to each of the ``S`` storage objects, each request is
billed per-operation (S3-style per-request pricing) and costs one wide-area
round-trip time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class CostEstimate:
    """Cost of one logical storage operation."""

    rounds: int
    requests: int
    dollars: float
    latency_ms: float

    def row(self) -> dict[str, str]:
        return {
            "rounds": str(self.rounds),
            "requests": str(self.requests),
            "cost ($/Mop)": f"{self.dollars * 1e6:.2f}",
            "latency (ms)": f"{self.latency_ms:.1f}",
        }


@dataclass(frozen=True, slots=True)
class CloudCostModel:
    """Per-request pricing plus wide-area RTT.

    Defaults are deliberately round numbers of the right magnitude
    (per-request pricing in the $0.4–5 per million range, WAN RTTs of tens
    of milliseconds); the benchmark's point is the *ratio* between
    protocols, which is exact, not the absolute dollar figures.
    """

    S: int
    price_per_request: float = 0.4e-6  # dollars; ~S3 GET pricing magnitude
    rtt_ms: float = 30.0

    def __post_init__(self) -> None:
        if self.S < 1:
            raise ConfigurationError("need at least one object")
        if self.price_per_request < 0 or self.rtt_ms < 0:
            raise ConfigurationError("prices and RTTs must be non-negative")

    def operation(self, rounds: int) -> CostEstimate:
        """Cost of one operation taking ``rounds`` round-trips."""
        if rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        requests = rounds * self.S
        return CostEstimate(
            rounds=rounds,
            requests=requests,
            dollars=requests * self.price_per_request,
            latency_ms=rounds * self.rtt_ms,
        )

    def workload(self, reads: int, read_rounds: int, writes: int, write_rounds: int) -> float:
        """Total dollars for a read/write mix."""
        read_cost = reads * self.operation(read_rounds).dollars
        write_cost = writes * self.operation(write_rounds).dollars
        return read_cost + write_cost
