"""Protocol registry: every register protocol addressable by name.

Protocols in :mod:`repro.registers` declare themselves with the
:func:`register_protocol` decorator, attaching the metadata the facade
needs to build, validate and report on them without hand-wiring:

* a **factory** (the decorated class, or an explicit ``factory=`` for
  composite protocols such as the regular→atomic transformation),
* the **fault model** (``crash`` / ``byzantine`` / ``byzantine-masking`` /
  ``secret-token``) and **semantics** rung (``atomic`` / ``regular`` /
  ``safe``),
* the **resilience class** as both a human-readable formula and an
  executable ``min_size(t)`` callable,
* the **advertised round counts** (taken from the class attributes the
  latency benchmarks already rely on), and
* the named **scenarios** (see :mod:`repro.workloads.scenarios`) whose
  adversaries the protocol's guarantees cover.

Lookup is lazy: the first call to :func:`get_protocol` /
:func:`available_protocols` imports :mod:`repro.registers`, which runs the
decorators.  The registry module itself therefore must never import the
protocol modules at import time (that would be circular).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError

#: Sentinel distinguishing "metadata not supplied" from an explicit None.
_UNSET: Any = object()

#: semantics → the consistency check the protocol advertises it satisfies.
_SEMANTICS_CHECKS = {"atomic": "atomicity", "regular": "regularity", "safe": "safety"}


@dataclass(frozen=True, slots=True)
class ProtocolSpec:
    """Registry entry: factory plus the metadata the facade reports.

    ``min_size`` maps the fault threshold ``t`` to the smallest object
    count the protocol accepts (its resilience class, executable);
    ``resilience`` is the same fact as a formula for tables.
    ``read_rounds`` is ``None`` for t-dependent bounds, in which case
    ``read_round_bound`` gives the bound as a function of ``t``.
    ``scenarios`` names the :mod:`repro.workloads.scenarios` regimes the
    protocol's guarantees cover (what the latency sweep exercises).
    """

    name: str
    factory: Callable[..., Any]
    model: str
    semantics: str
    resilience: str
    min_size: Callable[[int], int]
    write_rounds: int
    read_rounds: int | None
    scenarios: tuple[str, ...] = ("fault-free",)
    read_round_bound: Callable[[int], int] | None = None
    needs_readers: bool = False
    aliases: tuple[str, ...] = ()
    description: str = ""
    #: The system backend that runs this protocol when ``Cluster`` is not
    #: given one explicitly (see :mod:`repro.api.backends`).
    backend: str = "single"

    def build(self, n_readers: int = 2, **kwargs: Any) -> Any:
        """A fresh protocol instance (protocols are stateful — never share)."""
        if self.needs_readers:
            kwargs.setdefault("n_readers", n_readers)
        return self.factory(**kwargs)

    def default_check(self) -> str:
        """The consistency check this protocol advertises (by semantics)."""
        return _SEMANTICS_CHECKS[self.semantics]

    def reads_description(self, t: int | None = None) -> str:
        """Advertised read rounds, resolving t-dependent bounds when possible."""
        if self.read_rounds is not None:
            return str(self.read_rounds)
        if self.read_round_bound is not None and t is not None:
            return f"{self.read_round_bound(t)} (t={t})"
        return "O(t)"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly metadata (factories and callables omitted)."""
        return {
            "name": self.name,
            "model": self.model,
            "semantics": self.semantics,
            "resilience": self.resilience,
            "write_rounds": self.write_rounds,
            "read_rounds": self.read_rounds,
            "scenarios": list(self.scenarios),
            "aliases": list(self.aliases),
            "description": self.description,
            "backend": self.backend,
        }


_PROTOCOLS: dict[str, ProtocolSpec] = {}
_ALIASES: dict[str, str] = {}


def _ensure_registered() -> None:
    # Importing the package runs every @register_protocol decorator.
    import repro.registers  # noqa: F401


def register_protocol(
    name: str,
    *,
    model: str,
    semantics: str,
    resilience: str,
    min_size: Callable[[int], int],
    scenarios: tuple[str, ...] = ("fault-free",),
    write_rounds: int | None = None,
    read_rounds: Any = _UNSET,
    read_round_bound: Callable[[int], int] | None = None,
    needs_readers: bool = False,
    aliases: tuple[str, ...] = (),
    description: str = "",
    backend: str = "single",
    factory: Callable[..., Any] | None = None,
) -> Callable[[Any], Any]:
    """Register a protocol under ``name``; usable as a class decorator.

    As a decorator the class itself is the factory and the advertised round
    counts default to its ``write_rounds`` / ``read_rounds`` attributes::

        @register_protocol("abd", model="crash", semantics="atomic", ...)
        class AbdProtocol(RegisterProtocol): ...

    Composite protocols pass an explicit ``factory`` and call the returned
    registrar immediately (see :mod:`repro.registers.transform_atomic`).
    """
    if semantics not in _SEMANTICS_CHECKS:
        raise ConfigurationError(
            f"semantics must be one of {sorted(_SEMANTICS_CHECKS)}, got {semantics!r}"
        )

    def _register(obj: Any) -> Any:
        actual_factory = factory if factory is not None else obj
        wr = write_rounds if write_rounds is not None else getattr(obj, "write_rounds", 0)
        rr = read_rounds if read_rounds is not _UNSET else getattr(obj, "read_rounds", None)
        spec = ProtocolSpec(
            name=name,
            factory=actual_factory,
            model=model,
            semantics=semantics,
            resilience=resilience,
            min_size=min_size,
            write_rounds=wr,
            read_rounds=rr,
            scenarios=tuple(scenarios),
            read_round_bound=read_round_bound,
            needs_readers=needs_readers,
            aliases=tuple(aliases),
            description=description,
            backend=backend,
        )
        for key in (name, *spec.aliases):
            if key in _PROTOCOLS or key in _ALIASES:
                raise ConfigurationError(f"protocol name {key!r} registered twice")
        _PROTOCOLS[name] = spec
        for alias in spec.aliases:
            _ALIASES[alias] = name
        return obj

    if factory is not None:
        _register(factory)
        return lambda obj: obj
    return _register


def get_spec(name: str) -> ProtocolSpec:
    """The :class:`ProtocolSpec` registered under ``name`` (or an alias)."""
    _ensure_registered()
    canonical = _ALIASES.get(name, name)
    try:
        return _PROTOCOLS[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        ) from None


def get_protocol(name: str, n_readers: int = 2, **kwargs: Any) -> Any:
    """A fresh instance of the protocol registered under ``name``."""
    return get_spec(name).build(n_readers=n_readers, **kwargs)


def available_protocols() -> tuple[str, ...]:
    """All registered protocol names, sorted."""
    _ensure_registered()
    return tuple(sorted(_PROTOCOLS))


def protocol_specs() -> tuple[ProtocolSpec, ...]:
    """All registered specs, sorted by name."""
    _ensure_registered()
    return tuple(_PROTOCOLS[name] for name in sorted(_PROTOCOLS))
