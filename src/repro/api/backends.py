"""System backends: one harness API over single, multi-writer and sharded clusters.

A **backend** is the piece of the facade that turns a protocol registry
entry into a *running storage system* and back into histories and round
accounting.  The :class:`Cluster` builder, the trial engine, the CLI and
the benchmarks all talk to systems exclusively through this interface, so
a new cluster shape (a batched simulator, a k-atomic store, …) slots in by
registering one :class:`BackendSpec` — no consumer changes.

Three backends ship built in:

* ``single`` — today's :class:`~repro.registers.base.RegisterSystem`
  (one SWMR register, one writer).  The default; behaviour and structured
  results are byte-identical to the pre-backend facade.
* ``multi-writer`` — the SWMR→MWMR transformation
  (:class:`~repro.registers.transform_mwmr.MultiWriterRegisterSystem`) for
  registered :class:`MultiWriterStackProtocol` stacks, or
  :class:`~repro.registers.transform_mwmr.NativeMultiWriterSystem` for
  natively multi-writer protocols such as ``mw-abd``.
* ``sharded`` — a keyspace-sharding composite
  (:class:`~repro.registers.sharded.ShardedRegisterSystem`): one register
  per key, one protocol instance each, every shard multiplexed onto the
  same physical objects; consistency is checked per key.

The lifecycle is build → :meth:`SystemBackend.schedule` (one call per
:class:`~repro.workloads.generator.OperationPlan`) → :meth:`run` →
:meth:`histories` (one per key) with rounds accounted by
:func:`repro.analysis.metrics.measure_backend_latency` against the shared
simulator and wire trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.api.registry import ProtocolSpec
from repro.errors import ConfigurationError
from repro.sim.network import DeliveryPolicy
from repro.spec.history import History
from repro.types import ProcessId
from repro.workloads.generator import OperationPlan

#: The key name single-register backends report their one history under.
DEFAULT_KEY = "default"

#: Key layout a sharded cluster gets when none is configured.
DEFAULT_SHARD_KEYS = ("k1", "k2")


@dataclass(frozen=True, slots=True)
class BackendRequest:
    """Picklable description of the system one trial needs.

    Everything here is plain data so :class:`~repro.api.cluster.TrialSpec`
    can carry it across process boundaries; the stateful pieces (fault
    behaviours, protocol instances) are created fresh per build.
    """

    t: int = 1
    S: int | None = None
    n_readers: int = 2
    n_writers: int = 2
    keys: tuple[str, ...] = ()
    allow_overfault: bool = False
    protocol_kwargs: tuple[tuple[str, Any], ...] = ()
    #: Simulation engine every backend builds its system on
    #: (see :data:`repro.sim.batched.ENGINES`).
    engine: str = "event"
    #: Durability seam every backend wraps its object handlers in
    #: (see :data:`repro.storage.DURABILITIES`).
    durability: str = "none"
    #: Membership-repair steps for the ``reconfig`` backend: ``(member_index,
    #: at)`` pairs, each replacing one epoch member with a fresh spare.
    repairs: tuple[tuple[int, int], ...] = ()
    #: Pre-provisioned spare objects (``None``: one per repair step).
    spares: int | None = None
    #: State-transfer read quorum (``None``: the safe default ``S − t``).
    xfer_quorum: int | None = None
    #: Consistency model served to clients — ``"atomic"`` (the default) or
    #: ``"k-atomic(N)"``, the bounded-lag read view of the ``k-atomic``
    #: backend (see :mod:`repro.consistency`).
    consistency: str = "atomic"
    #: Observability: when set, :meth:`BackendSpec.build` arms the virtual
    #: clock on every fault behaviour and stable store so recovery windows
    #: and journal syncs are logged for span derivation (see
    #: :mod:`repro.obs`).  Off by default — the off-state adds nothing to
    #: the hot path and keeps structured results byte-identical.
    observe: bool = False


class SystemBackend(ABC):
    """A built storage system behind the harness API.

    Concrete backends wrap one simulated system and expose the uniform
    surface the trial engine drives: ``schedule`` routes one operation
    plan, ``run`` executes to quiescence, ``histories`` returns one
    recorded history per key, and ``simulator``/``trace`` feed the shared
    round accounting.  ``system`` is the wrapped harness — the low-level
    escape hatch ``Cluster.build_system()`` hands out.
    """

    #: Logical register names this backend hosts (one entry for
    #: single-register backends).
    keys: tuple[str, ...] = (DEFAULT_KEY,)

    def __init__(self, system: Any) -> None:
        self.system = system
        self.simulator = system.simulator
        self.trace = system.trace
        self.ctx = system.ctx

    @property
    def S(self) -> int:
        """Physical object count of the wrapped system."""
        return self.ctx.S

    @property
    def label(self) -> str:
        """Protocol label for latency reports."""
        return self.system.protocol.name

    @abstractmethod
    def schedule(self, plan: OperationPlan) -> None:
        """Route one operation plan into the wrapped system."""

    def run(self, max_events: int | None = 1_000_000) -> int:
        """Run to quiescence; returns the simulator event count.

        ``max_events`` bounds the run (the schedule explorer's per-schedule
        budget); an exhausted budget raises
        :class:`~repro.errors.SimulationError`.
        """
        return self.system.run(max_events=max_events)

    def history(self) -> History:
        """The combined history across all keys (drill-down view)."""
        return self.system.history()

    @abstractmethod
    def histories(self) -> dict[str, History]:
        """One recorded history per key, for per-key consistency checks."""


class SingleRegisterBackend(SystemBackend):
    """The default backend: one SWMR register on a ``RegisterSystem``."""

    def schedule(self, plan: OperationPlan) -> None:
        if plan.key is not None:
            raise ConfigurationError(
                "the single backend holds one register — keyed plans need backend='sharded'"
            )
        if plan.kind == "write":
            self.system.write(plan.value, at=plan.at)
        else:
            self.system.read(plan.client_index, at=plan.at)

    def histories(self) -> dict[str, History]:
        return {DEFAULT_KEY: self.system.history()}


class ReconfigBackend(SystemBackend):
    """One SWMR register on a membership that advances through epochs.

    Plan routing matches the single backend; the repair steps carried by
    the build request are armed by the wrapped system at ``run`` time, so
    they ride behind the client plans in serial order.
    """

    def schedule(self, plan: OperationPlan) -> None:
        if plan.key is not None:
            raise ConfigurationError(
                "the reconfig backend holds one register — keyed plans need "
                "backend='sharded'"
            )
        if plan.kind == "write":
            self.system.write(plan.value, at=plan.at)
        else:
            self.system.read(plan.client_index, at=plan.at)

    def histories(self) -> dict[str, History]:
        return {DEFAULT_KEY: self.system.history()}


class MultiWriterBackend(SystemBackend):
    """One MWMR register; write plans route by writer index."""

    @property
    def label(self) -> str:
        return self._label

    def __init__(self, system: Any, label: str) -> None:
        super().__init__(system)
        self._label = label

    def schedule(self, plan: OperationPlan) -> None:
        if plan.key is not None:
            raise ConfigurationError(
                "the multi-writer backend holds one register — keyed plans "
                "need backend='sharded'"
            )
        if plan.kind == "write":
            self.system.write(plan.client_index, plan.value, at=plan.at)
        else:
            self.system.read(plan.client_index, at=plan.at)

    def histories(self) -> dict[str, History]:
        return {DEFAULT_KEY: self.system.history()}


class ShardedBackend(SystemBackend):
    """Many named registers; plans route by key."""

    def __init__(self, system: Any) -> None:
        super().__init__(system)
        self.keys = system.keys

    def schedule(self, plan: OperationPlan) -> None:
        if plan.key is None:
            raise ConfigurationError(
                "the sharded backend needs a key on every plan — generate the "
                "workload with keys= or give explicit plans a key"
            )
        if plan.kind == "write":
            self.system.write(plan.key, plan.value, at=plan.at)
        else:
            self.system.read(plan.key, plan.client_index, at=plan.at)

    def histories(self) -> dict[str, History]:
        return self.system.histories()


class KAtomicBackend(SystemBackend):
    """Bounded-stale reads: an atomic inner system behind a k-lag view.

    Wraps the single or sharded backend (chosen by the key layout) and
    serves its recorded histories through
    :func:`repro.consistency.bounded.bounded_stale_view`: every complete
    read is rewritten to the value ``bound − 1`` writes older than the one
    the inner register returned — the observable behaviour of a replica
    lagging the primary by a fixed window.  The view is a pure function of
    the inner history, so rounds, traces, and transformed histories are
    byte-identical across simulation engines and serial/parallel execution
    exactly like the inner backend's.
    """

    def __init__(self, inner: SystemBackend, bound: int) -> None:
        super().__init__(inner.system)
        self.inner = inner
        self.bound = bound
        self.keys = inner.keys

    @property
    def label(self) -> str:
        return self.inner.label

    def schedule(self, plan: OperationPlan) -> None:
        self.inner.schedule(plan)

    def history(self) -> History:
        from repro.consistency.bounded import bounded_stale_view

        if len(self.keys) <= 1:
            return bounded_stale_view(self.inner.history(), self.bound)
        # Keyed layouts lag each key's register independently; the combined
        # drill-down view merges the per-key transforms back in step order.
        records = [r for h in self.histories().values() for r in h.records]
        records.sort(key=lambda record: record.invocation_step)
        return History(records)

    def histories(self) -> dict[str, History]:
        from repro.consistency.bounded import bounded_stale_view

        return {
            key: bounded_stale_view(history, self.bound)
            for key, history in self.inner.histories().items()
        }


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class BackendSpec:
    """Registry entry: a backend builder plus the metadata the facade reports.

    ``keyed`` backends accept multi-key layouts (``Cluster(keys=...)``);
    ``multi_writer`` backends drive a writer family (``n_writers``).
    Builders take ``(protocol_spec, request, behaviors, policy)`` — the
    trailing delivery policy is ``None`` for the default FIFO fabric and an
    adversarial :class:`~repro.sim.network.DeliveryPolicy` when the trial
    carries a schedule (``Cluster.with_schedule``, scenario policies, the
    schedule explorer's :class:`~repro.explore.controlled.ControlledDelivery`).
    """

    name: str
    builder: Callable[
        [ProtocolSpec, BackendRequest, Mapping[ProcessId, Any], DeliveryPolicy | None],
        SystemBackend,
    ]
    description: str
    keyed: bool = False
    multi_writer: bool = False
    aliases: tuple[str, ...] = ()

    def build(
        self,
        protocol_spec: ProtocolSpec,
        request: BackendRequest,
        behaviors: Mapping[ProcessId, Any],
        policy: DeliveryPolicy | None = None,
    ) -> SystemBackend:
        """A fresh backend system for one trial (systems are stateful)."""
        backend = self.builder(protocol_spec, request, behaviors, policy)
        if request.observe:
            _arm_observability(backend)
        return backend

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly metadata (the builder callable omitted)."""
        return {
            "name": self.name,
            "description": self.description,
            "keyed": self.keyed,
            "multi_writer": self.multi_writer,
            "aliases": list(self.aliases),
        }


def _arm_observability(backend: SystemBackend) -> None:
    """Arm the virtual clock on every behaviour and store of ``backend``.

    Both engines keep ``queue.now`` current while dispatching (the batched
    engine pins it per delivery wave), so the same closure reads identical
    virtual times on either — the byte-parity the span layer relies on.
    """
    simulator = backend.simulator
    queue = simulator.queue

    def clock(_queue: Any = queue) -> int:
        return _queue.now

    for server in simulator.objects.values():
        behavior = server.behavior
        if behavior is not None:
            # Wrapper chains (timed faults) share one log per server, so
            # the wrapper's "fired" marker and the inner behaviour's own
            # phases interleave on a single timeline.
            shared_log: list[tuple[int, str]] = []
            link = behavior
            while link is not None:
                link.clock = clock
                link.phase_log = shared_log
                link = getattr(link, "inner", None)
        store = getattr(server.handler, "store", None)
        if store is not None:
            store.clock = clock


_BACKENDS: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register ``spec`` under its name and aliases."""
    for key in (spec.name, *spec.aliases):
        if key in _BACKENDS or key in _ALIASES:
            raise ConfigurationError(f"backend name {key!r} registered twice")
    _BACKENDS[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def get_backend_spec(name: str) -> BackendSpec:
    """The :class:`BackendSpec` registered under ``name`` (or an alias)."""
    canonical = _ALIASES.get(name, name)
    try:
        return _BACKENDS[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def backend_specs() -> tuple[BackendSpec, ...]:
    """All registered specs, sorted by name."""
    return tuple(_BACKENDS[name] for name in sorted(_BACKENDS))


# --------------------------------------------------------------------- #
# Built-in builders
# --------------------------------------------------------------------- #


def _build_protocol(protocol_spec: ProtocolSpec, request: BackendRequest) -> Any:
    return protocol_spec.build(
        n_readers=request.n_readers, **dict(request.protocol_kwargs)
    )


def _reject_stack(protocol: Any, protocol_spec: ProtocolSpec, backend: str) -> None:
    from repro.registers.transform_mwmr import MultiWriterStackProtocol

    if isinstance(protocol, MultiWriterStackProtocol):
        raise ConfigurationError(
            f"protocol {protocol_spec.name!r} is a multi-writer stack and cannot "
            f"run on the {backend!r} backend; use backend='multi-writer'"
        )


def _build_single(
    protocol_spec: ProtocolSpec,
    request: BackendRequest,
    behaviors: Mapping[ProcessId, Any],
    policy: DeliveryPolicy | None = None,
) -> SystemBackend:
    from repro.registers.base import RegisterSystem

    protocol = _build_protocol(protocol_spec, request)
    _reject_stack(protocol, protocol_spec, "single")
    system = RegisterSystem(
        protocol,
        t=request.t,
        S=request.S,
        n_readers=request.n_readers,
        behaviors=behaviors,
        policy=policy,
        allow_overfault=request.allow_overfault,
        engine=request.engine,
        durability=request.durability,
    )
    return SingleRegisterBackend(system)


def _build_multi_writer(
    protocol_spec: ProtocolSpec,
    request: BackendRequest,
    behaviors: Mapping[ProcessId, Any],
    policy: DeliveryPolicy | None = None,
) -> SystemBackend:
    from repro.registers.transform_mwmr import (
        MultiWriterRegisterSystem,
        MultiWriterStackProtocol,
        NativeMultiWriterSystem,
    )

    protocol = _build_protocol(protocol_spec, request)
    if isinstance(protocol, MultiWriterStackProtocol):
        system: Any = MultiWriterRegisterSystem(
            protocol.substrate_factory,
            t=request.t,
            S=request.S,
            n_writers=request.n_writers,
            n_readers=request.n_readers,
            behaviors=behaviors,
            policy=policy,
            allow_overfault=request.allow_overfault,
            engine=request.engine,
        durability=request.durability,
        )
    elif hasattr(protocol, "write_generator_for"):
        system = NativeMultiWriterSystem(
            protocol,
            t=request.t,
            S=request.S,
            n_writers=request.n_writers,
            n_readers=request.n_readers,
            behaviors=behaviors,
            policy=policy,
            allow_overfault=request.allow_overfault,
            engine=request.engine,
        durability=request.durability,
        )
    else:
        raise ConfigurationError(
            f"protocol {protocol_spec.name!r} is single-writer only; the "
            "multi-writer backend needs an MWMR stack (mwmr-*) or a native "
            "multi-writer protocol (write_generator_for)"
        )
    return MultiWriterBackend(system, label=protocol.name)


def _build_sharded(
    protocol_spec: ProtocolSpec,
    request: BackendRequest,
    behaviors: Mapping[ProcessId, Any],
    policy: DeliveryPolicy | None = None,
) -> SystemBackend:
    from repro.registers.sharded import ShardedRegisterSystem

    probe = _build_protocol(protocol_spec, request)
    _reject_stack(probe, protocol_spec, "sharded")
    system = ShardedRegisterSystem(
        lambda: _build_protocol(protocol_spec, request),
        keys=request.keys or DEFAULT_SHARD_KEYS,
        t=request.t,
        S=request.S,
        n_readers=request.n_readers,
        behaviors=behaviors,
        policy=policy,
        allow_overfault=request.allow_overfault,
        engine=request.engine,
        durability=request.durability,
    )
    return ShardedBackend(system)


def _build_reconfig(
    protocol_spec: ProtocolSpec,
    request: BackendRequest,
    behaviors: Mapping[ProcessId, Any],
    policy: DeliveryPolicy | None = None,
) -> SystemBackend:
    from repro.registers.reconfig import ReconfigRegisterSystem

    protocol = _build_protocol(protocol_spec, request)
    _reject_stack(protocol, protocol_spec, "reconfig")
    system = ReconfigRegisterSystem(
        protocol,
        t=request.t,
        S=request.S,
        n_readers=request.n_readers,
        behaviors=behaviors,
        policy=policy,
        allow_overfault=request.allow_overfault,
        engine=request.engine,
        durability=request.durability,
        repairs=request.repairs,
        spares=request.spares,
        xfer_quorum=request.xfer_quorum,
    )
    return ReconfigBackend(system)


def _build_k_atomic(
    protocol_spec: ProtocolSpec,
    request: BackendRequest,
    behaviors: Mapping[ProcessId, Any],
    policy: DeliveryPolicy | None = None,
) -> SystemBackend:
    from repro.consistency.models import DEFAULT_K, consistency_bound

    bound = (
        # Backend selected directly without a model string: default lag window.
        DEFAULT_K
        if request.consistency == "atomic"
        else consistency_bound(request.consistency)
    )
    inner_builder = _build_sharded if request.keys else _build_single
    return KAtomicBackend(inner_builder(protocol_spec, request, behaviors, policy), bound)


register_backend(BackendSpec(
    name="single",
    builder=_build_single,
    description="one SWMR register on a RegisterSystem (the default)",
    aliases=("swmr",),
))

register_backend(BackendSpec(
    name="multi-writer",
    builder=_build_multi_writer,
    description="one MWMR register: the SWMR→MWMR stack or a native MWMR protocol",
    multi_writer=True,
    aliases=("mwmr", "mw"),
))

register_backend(BackendSpec(
    name="sharded",
    builder=_build_sharded,
    description="keyspace-sharded cluster: one register per key on shared objects",
    keyed=True,
))

register_backend(BackendSpec(
    name="reconfig",
    builder=_build_reconfig,
    description="reconfigurable register: membership epochs, online state-transfer repair",
    aliases=("epoch",),
))

register_backend(BackendSpec(
    name="k-atomic",
    builder=_build_k_atomic,
    description="bounded-stale reads: an atomic inner register behind a k-lag view",
    keyed=True,
    aliases=("bounded-stale",),
))
