"""Unified experiment facade: registries plus the declarative builder.

This package is the high-level entry point of the library — everything an
experiment needs, addressable as data:

* :mod:`repro.api.registry` — the **protocol registry**: every protocol in
  :mod:`repro.registers` registers itself by name with metadata (fault
  model, semantics, resilience class, advertised rounds, covered
  scenarios).  ``get_protocol("abd")`` replaces hand-wired imports.
* :mod:`repro.api.faults` — the **fault-behaviour registry** for the
  adversary layer (``crash``, ``silent``, ``stale-echo``, ``fabricating``,
  ``flaky``).
* :mod:`repro.api.cluster` — the declarative :class:`Cluster` builder and
  the structured :class:`RunResult` / :class:`SweepResult` it produces,
  plus :func:`sweep` for protocol × scenario grids.  Trials compile to
  picklable :class:`TrialSpec` values executed by the pure
  :func:`run_trial` function, so ``Cluster.run(..., parallel=True)`` and
  ``sweep(..., parallel=True)`` fan trials over a process pool with
  results byte-identical to serial execution.

Quickstart::

    from repro.api import Cluster, available_protocols

    print(available_protocols())
    result = (
        Cluster("atomic-fast-regular", t=1)
        .with_faults("stale-echo", count=1)
        .check("atomicity")
        .run(trials=5, seed=7)
    )
    assert result.ok and result.worst_read == 4
"""

from repro.api.registry import (
    ProtocolSpec,
    available_protocols,
    get_protocol,
    get_spec,
    protocol_specs,
    register_protocol,
)
from repro.api.faults import (
    FaultSpec,
    available_faults,
    fault_spec,
    fault_specs,
    get_fault,
    register_fault,
)
from repro.api.backends import (
    BackendRequest,
    BackendSpec,
    SystemBackend,
    available_backends,
    backend_specs,
    get_backend_spec,
    register_backend,
)
from repro.sim.batched import ENGINES, available_engines
from repro.api.cluster import (
    CheckVerdict,
    Cluster,
    FaultInventory,
    RunResult,
    SweepResult,
    TrialResult,
    TrialSpec,
    available_checks,
    run_check,
    run_trial,
    sweep,
)
from repro.consistency import CheckerSpec, checker_specs

__all__ = [
    # protocol registry
    "ProtocolSpec",
    "register_protocol",
    "get_protocol",
    "get_spec",
    "available_protocols",
    "protocol_specs",
    # fault registry
    "FaultSpec",
    "register_fault",
    "get_fault",
    "fault_spec",
    "fault_specs",
    "available_faults",
    # backend registry
    "BackendRequest",
    "BackendSpec",
    "SystemBackend",
    "register_backend",
    "get_backend_spec",
    "available_backends",
    "backend_specs",
    # simulation engines
    "ENGINES",
    "available_engines",
    # checker registry (repro.consistency)
    "CheckerSpec",
    "checker_specs",
    # builder + results
    "Cluster",
    "run_check",
    "CheckVerdict",
    "FaultInventory",
    "TrialResult",
    "TrialSpec",
    "RunResult",
    "SweepResult",
    "available_checks",
    "run_trial",
    "sweep",
]
