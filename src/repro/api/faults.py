"""Fault-behaviour registry: the adversary layer addressable by name.

Mirrors :mod:`repro.api.registry` for :mod:`repro.faults`: each named entry
is a **maker** producing a fresh :class:`~repro.sim.process.FaultBehavior`
per object (behaviours can be stateful, so instances are never shared).

The built-in catalogue covers the behaviours the paper's adversary uses —
``crash``, ``silent``, ``stale-echo`` (the replay adversary of the proofs)
and ``fabricating`` (the unauthenticated worst case) — plus the ``flaky``
omission behaviour used by the chaos tests.  Registration is lazy (first
lookup imports :mod:`repro.faults`) so this module stays import-cycle-free.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Registry entry: behaviour maker plus reporting metadata."""

    name: str
    maker: Callable[..., Any]
    model: str  # "benign" | "byzantine" | "wrapper"
    aliases: tuple[str, ...] = ()
    description: str = ""
    #: Maker parameters that schedule *when* the behaviour fires (e.g.
    #: ``survive_messages``).  The ``timed`` wrapper forces these to zero
    #: and owns the trigger point itself, so facade-scheduled timing and
    #: explorer-swept timing can never contradict each other.  Empty for
    #: behaviours that are active from their first delivery.
    timing: tuple[str, ...] = ()

    def build(self, **kwargs: Any) -> Any:
        """A fresh behaviour instance."""
        return self.maker(**kwargs)

    def params(self) -> dict[str, Any] | None:
        """Accepted keyword parameters mapped to their defaults.

        Introspected from the maker's signature so ``repro list-faults``
        and parent-side ``--fault-arg`` validation stay in lockstep with
        what :meth:`build` actually accepts.  Returns ``None`` when the
        maker takes ``**kwargs`` (its parameter set is open-ended and
        cannot be validated up front).
        """
        params: dict[str, Any] = {}
        for param in inspect.signature(self.maker).parameters.values():
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                return None
            if param.kind is inspect.Parameter.VAR_POSITIONAL:
                continue
            params[param.name] = (
                None if param.default is inspect.Parameter.empty else param.default
            )
        return params

    def validate_kwargs(self, kwargs: dict[str, Any]) -> None:
        """Reject keyword arguments :meth:`build` would choke on.

        Raised parent-side (before any worker pool spins up) so a typo'd
        ``--fault-arg`` fails with the accepted parameter names instead of
        a ``TypeError`` inside a worker process.
        """
        params = self.params()
        if params is None:
            return
        unknown = sorted(set(kwargs) - set(params))
        if unknown:
            accepted = ", ".join(sorted(params)) if params else "none"
            raise ConfigurationError(
                f"fault {self.name!r} got unknown argument(s) "
                f"{', '.join(repr(k) for k in unknown)}; accepted: {accepted}"
            )

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "name": self.name,
            "model": self.model,
            "aliases": list(self.aliases),
            "description": self.description,
            "params": self.params(),
        }
        if self.timing:
            payload["timing"] = list(self.timing)
        return payload


_FAULTS: dict[str, FaultSpec] = {}
_ALIASES: dict[str, str] = {}
_BOOTSTRAPPED = False


def register_fault(
    name: str,
    maker: Callable[..., Any],
    *,
    model: str,
    aliases: tuple[str, ...] = (),
    description: str = "",
    timing: tuple[str, ...] = (),
) -> FaultSpec:
    """Register ``maker`` as the fault behaviour named ``name``."""
    spec = FaultSpec(
        name=name, maker=maker, model=model, aliases=tuple(aliases),
        description=description, timing=tuple(timing),
    )
    for key in (name, *spec.aliases):
        if key in _FAULTS or key in _ALIASES:
            raise ConfigurationError(f"fault behaviour name {key!r} registered twice")
    _FAULTS[name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = name
    return spec


def _ensure_registered() -> None:
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from repro.faults.adversary import CrashAt, SilentBehavior, flaky_behavior
    from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
    from repro.faults.churn import Flap, PermanentCrash, RollingReplace
    from repro.faults.recovery import CrashRecoverAt, FsyncLag, TornWrite

    register_fault(
        "crash",
        lambda survive_messages=3: CrashAt(survive_messages=survive_messages),
        model="benign",
        description="behave correctly for a few messages, then stop replying",
        timing=('survive_messages',),
    )
    register_fault(
        "silent",
        lambda: SilentBehavior(),
        model="benign",
        description="never reply (crashed before the run started)",
    )
    register_fault(
        "stale-echo",
        lambda: StaleEchoBehavior(frozen_state={}),
        model="byzantine",
        aliases=("replay",),
        description="forever echo a stale genuine state (the proofs' adversary)",
    )
    register_fault(
        "fabricating",
        lambda fabricate=None: FabricatingBehavior(fabricate),
        model="byzantine",
        aliases=("fabricate",),
        description="reply with fabricated inflated-timestamp states",
    )
    register_fault(
        "flaky",
        lambda p_reply=0.5, seed=0: flaky_behavior(p_reply=p_reply, seed=seed),
        model="benign",
        description="reply honestly with probability p, else stay silent",
    )
    register_fault(
        "crash-recover",
        lambda survive_messages=3, rejoin_after=2: CrashRecoverAt(
            survive_messages=survive_messages, rejoin_after=rejoin_after
        ),
        model="benign",
        description="go dark mid-run, later rejoin from the durable journal",
        timing=('survive_messages',),
    )
    register_fault(
        "fsync-lag",
        lambda survive_messages=3, rejoin_after=2, lag=1: FsyncLag(
            survive_messages=survive_messages, rejoin_after=rejoin_after, lag=lag
        ),
        model="benign",
        description="crash loses the acknowledged-but-unsynced journal suffix",
        timing=('survive_messages',),
    )
    register_fault(
        "torn-write",
        lambda survive_messages=3, rejoin_after=2: TornWrite(
            survive_messages=survive_messages, rejoin_after=rejoin_after
        ),
        model="benign",
        description="crash tears the last journal record; recovery discards it",
        timing=('survive_messages',),
    )
    register_fault(
        "perm-crash",
        lambda survive_messages=3: PermanentCrash(survive_messages=survive_messages),
        model="benign",
        aliases=("permanent-crash",),
        description="fail for good mid-run: dark forever, nothing to recover",
        timing=('survive_messages',),
    )
    register_fault(
        "flap",
        lambda survive_messages=2, rejoin_after=1, cycles=2: Flap(
            survive_messages=survive_messages, rejoin_after=rejoin_after, cycles=cycles
        ),
        model="benign",
        description="repeated crash-recover cycles before finally stabilising",
        timing=('survive_messages',),
    )
    register_fault(
        "rolling-replace",
        lambda base=3, stagger=6: RollingReplace(base=base, stagger=stagger),
        model="benign",
        description="staggered permanent crashes: s1 dies, then s2, then s3",
        timing=('base', 'stagger'),
    )

    from repro.faults.timing import timed_fault

    # The wrapped fault's name travels as ``inner=`` (not ``fault=``) so it
    # never collides with the facade's own ``with_faults(fault, ...)``
    # parameter.
    register_fault(
        "timed",
        lambda inner="silent", at=0, **kwargs: timed_fault(inner, at=at, **kwargs),
        model="wrapper",
        description="defer any registered fault (inner=, default silent — "
                    "a crash at the trigger) to an explicit per-object "
                    "trigger point (at= handled messages)",
        timing=("at",),
    )


def fault_spec(name: str) -> FaultSpec:
    """The :class:`FaultSpec` registered under ``name`` (or an alias)."""
    _ensure_registered()
    canonical = _ALIASES.get(name, name)
    try:
        return _FAULTS[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault behaviour {name!r}; available: {', '.join(available_faults())}"
        ) from None


def get_fault(name: str, **kwargs: Any) -> Any:
    """A fresh behaviour instance of the fault registered under ``name``."""
    return fault_spec(name).build(**kwargs)


def available_faults() -> tuple[str, ...]:
    """All registered fault-behaviour names, sorted."""
    _ensure_registered()
    return tuple(sorted(_FAULTS))


def fault_specs() -> tuple[FaultSpec, ...]:
    """All registered fault specs, sorted by name."""
    _ensure_registered()
    return tuple(_FAULTS[name] for name in sorted(_FAULTS))
