"""Declarative experiment builder: protocol × adversary × workload × checks.

:class:`Cluster` is the facade every entry point (CLI, benchmarks, examples,
tests) composes experiments through::

    from repro.api import Cluster

    result = (
        Cluster("fast-regular", t=2)
        .with_faults("stale-echo", count=2)
        .with_workload(reads=0.6, spacing=25, operations=12)
        .check("atomicity", "regularity")
        .run(trials=20, seed=7)
    )
    assert result.trials[0].checks["regularity"].ok
    print(result.render())

Builder methods return **new** ``Cluster`` instances (fluent, immutable), so
partial configurations can be reused as templates across sweeps.  ``run``
builds one fresh system per trial through a named **backend**
(:mod:`repro.api.backends`: ``single`` SWMR registers, ``multi-writer``
MWMR systems, ``sharded`` keyspace composites — protocols advertise their
default, so ``Cluster("mwmr-fast-regular")`` just works), replays a seeded
workload through :func:`repro.analysis.metrics.measure_backend_latency`,
runs the requested spec checkers per key on the recorded histories, and
returns a structured :class:`RunResult` — per-trial latencies, round
counts, check verdicts and the materialized fault inventory.

Execution is factored through a picklable :class:`TrialSpec` and the pure
module-level :func:`run_trial` function, so trials can run either in-process
or on a :class:`concurrent.futures.ProcessPoolExecutor`: pass
``parallel=True`` (and optionally ``max_workers=``) to :meth:`Cluster.run`
or :func:`sweep`.  Both paths execute the *same* ``run_trial`` code on the
same specs, so for identical seeds the serial and parallel results are
byte-identical under :meth:`RunResult.to_dict` — configurations that cannot
cross a process boundary (explicit schedules closing over live objects,
protocols not resolvable through the registry) fall back to serial with a
:class:`RuntimeWarning`.

:func:`sweep` fans a protocol × scenario grid into a :class:`SweepResult`
(the shape the latency-matrix benchmark renders); with ``parallel=True`` the
whole grid's trials are flattened into one process pool.
"""

from __future__ import annotations

import copy
import pickle
import statistics
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.metrics import measure_backend_latency
from repro.analysis.tables import format_table
from repro.api.backends import (
    DEFAULT_SHARD_KEYS,
    BackendRequest,
    BackendSpec,
    SystemBackend,
    get_backend_spec,
)
from repro.api.faults import fault_spec
from repro.api.registry import ProtocolSpec, available_protocols, get_spec
from repro.consistency.models import (  # re-exported: the registry moved to repro.consistency
    CHECKS,
    CheckVerdict,
    available_checks,
    canonical_check_name,
    parse_consistency,
    run_check,
)
from repro.consistency.staleness import read_staleness, staleness_distribution
from repro.errors import ConfigurationError
from repro.faults.schedules import PlannedSchedulePolicy, PlannedSkip
from repro.registers.base import resolve_reader
from repro.sim.batched import resolve_engine
from repro.sim.network import DeliveryPolicy
from repro.spec.history import History
from repro.sim.process import FaultBehavior
from repro.storage import SpaceMeter, resolve_durability
from repro.types import ProcessId, object_id, reader_ids, scoped_operation_serials
from repro.workloads.generator import OperationPlan, WorkloadGenerator, normalize_keys
from repro.workloads.scenarios import Scenario, get_scenario


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class FaultInventory:
    """What the adversary actually got: requested vs effective faults.

    ``effective`` may be below ``requested`` when a non-strict plan clamps
    to the threshold ``t`` (the clamp is always recorded here so sweeps
    cannot silently under-fault).
    """

    requested: int
    effective: int
    assignments: Mapping[str, str]  # object id → behaviour description

    def to_dict(self) -> dict[str, Any]:
        return {
            "requested": self.requested,
            "effective": self.effective,
            "assignments": dict(self.assignments),
        }

    def describe(self) -> str:
        if not self.assignments:
            return "fault-free"
        parts = [f"{pid}:{how}" for pid, how in sorted(self.assignments.items())]
        note = "" if self.effective == self.requested else f" (requested {self.requested})"
        return ", ".join(parts) + note


@dataclass(slots=True)
class TrialResult:
    """One trial: latencies, completion and check verdicts.

    ``history`` keeps the recorded operation history for drill-down (not
    serialized by :meth:`to_dict` — it is a live object graph).
    """

    trial: int
    seed: int | None
    write_rounds: list[int]
    read_rounds: list[int]
    incomplete: int
    checks: dict[str, CheckVerdict]
    history: History | None = None
    #: The trial's wire trace when the spec asked for it (``--trace``);
    #: like ``history`` it is a live object graph, excluded from to_dict.
    trace: Any | None = None
    #: Space-meter report of the trial's durable journals (``None`` when
    #: the trial ran with ``durability="none"``) — plain data, serialized.
    storage: dict[str, Any] | None = None
    #: Rounds used by membership-repair steps (reconfig backend only;
    #: empty elsewhere, and omitted from to_dict when empty so existing
    #: stored payloads stay byte-stable).
    repair_rounds: list[int] = field(default_factory=list)
    #: Measured staleness distribution of the trial's served reads
    #: (``None`` unless the trial ran under a non-atomic consistency
    #: model) — plain data, serialized when present.
    staleness: dict[str, Any] | None = None
    #: Observability payload (``None`` unless the trial ran with
    #: ``observe=True``): ``spans``/``metrics`` are deterministic plain
    #: data (see :mod:`repro.obs`), ``events``/``elapsed_s`` surface the
    #: executed-event count and wall-clock duration in to_dict.
    obs: dict[str, Any] | None = None

    @property
    def worst_write(self) -> int:
        return max(self.write_rounds, default=0)

    @property
    def worst_read(self) -> int:
        return max(self.read_rounds, default=0)

    @property
    def mean_write(self) -> float:
        return statistics.fmean(self.write_rounds) if self.write_rounds else 0.0

    @property
    def mean_read(self) -> float:
        return statistics.fmean(self.read_rounds) if self.read_rounds else 0.0

    @property
    def ok(self) -> bool:
        """All requested checks passed and every operation completed."""
        return self.incomplete == 0 and all(v.ok for v in self.checks.values())

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "trial": self.trial,
            "seed": self.seed,
            "write_rounds": list(self.write_rounds),
            "read_rounds": list(self.read_rounds),
            "incomplete": self.incomplete,
            "checks": {name: verdict.to_dict() for name, verdict in self.checks.items()},
        }
        if self.storage is not None:
            payload["storage"] = self.storage
        if self.repair_rounds:
            payload["repair_rounds"] = list(self.repair_rounds)
        if self.staleness is not None:
            payload["staleness"] = self.staleness
        if self.obs is not None:
            # New keys, only present for observed runs: old JSONL files
            # (and every unobserved run) keep the exact pre-observability
            # payload, and `repro compare` ignores unknown trial keys.
            payload["events"] = self.obs["events"]
            payload["elapsed_s"] = self.obs["elapsed_s"]
        return payload


@dataclass(slots=True)
class RunResult:
    """Structured outcome of :meth:`Cluster.run` across all trials."""

    protocol: str
    semantics: str
    t: int
    S: int
    n_readers: int
    scenario: str
    faults: FaultInventory
    checks: tuple[str, ...]
    trials: list[TrialResult] = field(default_factory=list)
    backend: str = "single"
    key_count: int = 1
    n_writers: int = 1
    engine: str = "event"
    durability: str = "none"
    consistency: str = "atomic"
    #: Robustness-frontier payload (``None`` unless a frontier was
    #: attached, e.g. by ``sweep(frontier=True)``): the
    #: :meth:`~repro.robustness.FrontierResult.to_dict` of the
    #: configuration's certified model spectrum.
    robustness: dict[str, Any] | None = None

    @property
    def worst_write(self) -> int:
        return max((trial.worst_write for trial in self.trials), default=0)

    @property
    def worst_read(self) -> int:
        return max((trial.worst_read for trial in self.trials), default=0)

    @property
    def mean_write(self) -> float:
        rounds = [r for trial in self.trials for r in trial.write_rounds]
        return statistics.fmean(rounds) if rounds else 0.0

    @property
    def mean_read(self) -> float:
        rounds = [r for trial in self.trials for r in trial.read_rounds]
        return statistics.fmean(rounds) if rounds else 0.0

    @property
    def incomplete(self) -> int:
        return sum(trial.incomplete for trial in self.trials)

    @property
    def ok(self) -> bool:
        """Every trial completed all operations and passed all checks."""
        return all(trial.ok for trial in self.trials)

    def failures(self) -> list[tuple[int, CheckVerdict]]:
        """Every failed (trial index, verdict) pair, for diagnostics."""
        return [
            (trial.trial, verdict)
            for trial in self.trials
            for verdict in trial.checks.values()
            if not verdict.ok
        ]

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "protocol": self.protocol,
            "semantics": self.semantics,
            "t": self.t,
            "S": self.S,
            "n_readers": self.n_readers,
            "scenario": self.scenario,
            "faults": self.faults.to_dict(),
            "checks": list(self.checks),
            "trials": [trial.to_dict() for trial in self.trials],
            "worst_write": self.worst_write,
            "worst_read": self.worst_read,
            "incomplete": self.incomplete,
            "ok": self.ok,
        }
        if self.backend != "single":
            # Backend + key layout metadata so stored rows from different
            # backends are never compared as like-for-like (`repro compare`
            # keys on these; absent fields mean the default single backend,
            # keeping old JSONL files comparable).
            payload["backend"] = self.backend
            payload["keys"] = self.key_count
            payload["writers"] = self.n_writers
        if self.engine != "event":
            # The engine tag is metadata about *how* the run executed, not
            # what it produced: a batched run's payload is byte-identical to
            # the event engine's apart from this one key (absent = event, so
            # pre-engine JSONL files stay comparable).
            payload["engine"] = self.engine
        if self.durability != "none":
            # The durability axis *does* change what a run can observe
            # (crash-recover faults, per-trial storage reports), so stored
            # rows only compare like-for-like within one durability mode;
            # absent means the paper's crash-stop objects, keeping old
            # JSONL files comparable.
            payload["durability"] = self.durability
        if self.consistency != "atomic":
            # The consistency model changes what reads return, so stored
            # rows only compare like-for-like within one model; absent
            # means the paper's atomic semantics, keeping old JSONL files
            # comparable.
            payload["consistency"] = self.consistency
        if self.robustness is not None:
            # New key, only when a frontier was computed for this run:
            # frontier-free payloads stay byte-identical.
            payload["robustness"] = self.robustness
        return payload

    def row(self) -> dict[str, str]:
        """One aggregate table row (the latency-matrix shape)."""
        checks = ",".join(
            f"{name}:{'ok' if all(t.checks[name].ok for t in self.trials) else 'FAIL'}"
            for name in self.checks
        ) or "-"
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "writes (worst/mean)": f"{self.worst_write}/{self.mean_write:.2f}",
            "reads (worst/mean)": f"{self.worst_read}/{self.mean_read:.2f}",
            "incomplete": str(self.incomplete),
            "checks": checks,
        }

    def render(self) -> str:
        """Per-trial table plus the fault inventory, ready to print."""
        rows = []
        for trial in self.trials:
            rows.append({
                "trial": str(trial.trial),
                "seed": "-" if trial.seed is None else str(trial.seed),
                "writes (worst/mean)": f"{trial.worst_write}/{trial.mean_write:.2f}",
                "reads (worst/mean)": f"{trial.worst_read}/{trial.mean_read:.2f}",
                "incomplete": str(trial.incomplete),
                "checks": ",".join(
                    f"{name}:{'ok' if verdict.ok else 'FAIL'}"
                    for name, verdict in trial.checks.items()
                ) or "-",
            })
        shape = ""
        if self.backend != "single":
            shape = f", backend={self.backend} ({self.key_count} key(s), {self.n_writers} writer(s))"
        if self.engine != "event":
            shape += f", engine={self.engine}"
        if self.durability != "none":
            shape += f", durability={self.durability}"
        if self.consistency != "atomic":
            shape += f", consistency={self.consistency}"
        title = (
            f"{self.protocol} [{self.semantics}] — t={self.t}, S={self.S}, "
            f"{self.n_readers} readers{shape}, faults: {self.faults.describe()}"
        )
        return format_table(
            title,
            ("trial", "seed", "writes (worst/mean)", "reads (worst/mean)", "incomplete", "checks"),
            rows,
        )


@dataclass(slots=True)
class SweepResult:
    """Results of a protocol × scenario sweep, renderable as one table."""

    runs: list[RunResult] = field(default_factory=list)

    def protocols(self) -> tuple[str, ...]:
        """Protocol names in first-seen order."""
        seen: dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.protocol, None)
        return tuple(seen)

    def for_protocol(self, name: str) -> list[RunResult]:
        return [run for run in self.runs if run.protocol == name]

    def worst_rounds(self, name: str) -> tuple[int, int]:
        """(worst write, worst read) for ``name`` across its scenarios."""
        runs = self.for_protocol(name)
        if not runs:
            raise ConfigurationError(f"no runs recorded for protocol {name!r}")
        return (max(r.worst_write for r in runs), max(r.worst_read for r in runs))

    def to_dict(self) -> dict[str, Any]:
        return {"runs": [run.to_dict() for run in self.runs]}

    def table(self, title: str = "protocol × scenario sweep") -> str:
        columns = ("protocol", "scenario", "writes (worst/mean)", "reads (worst/mean)",
                   "incomplete", "checks")
        return format_table(title, columns, [run.row() for run in self.runs])


# --------------------------------------------------------------------- #
# The builder
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class _FaultGroup:
    """One ``with_faults`` request before materialization."""

    fault: str
    count: int
    strict: bool
    kwargs: tuple[tuple[str, Any], ...]


def _group_label(group: _FaultGroup) -> str:
    """Scenario-label fragment for one fault group.

    Timed groups carry their inner fault and trigger point in the label
    (``timed(stale-echo@2)×1``) — the timing *is* the configuration.
    Every other group keeps the historical ``fault×count`` form, so stored
    scenario labels stay byte-stable.
    """
    if group.fault == "timed":
        kwargs = dict(group.kwargs)
        inner = kwargs.pop("inner", "?")
        at = kwargs.pop("at", 0)
        return f"timed({inner}@{at})×{group.count}"
    return f"{group.fault}×{group.count}"


# --------------------------------------------------------------------- #
# Trial execution engine
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class TrialSpec:
    """Everything one trial needs, as plain data.

    A spec is the picklable boundary between configuration and execution:
    :meth:`Cluster.run` compiles one spec per trial and hands them to
    :func:`run_trial` — in-process for serial runs, on a process pool for
    ``parallel=True``.  Protocols and scenarios are referenced by *registry
    name* (live objects don't cross process boundaries); fault groups,
    workload shape, and explicit schedules are carried verbatim.

    ``workload_seed`` is the seed the generator actually uses for this trial
    (``seed + trial``); ``recorded_seed`` is what lands in
    :attr:`TrialResult.seed` (None for explicit schedules, which replay the
    same plan every trial).

    ``backend`` names the system backend (registry of
    :mod:`repro.api.backends`); ``keys``/``n_writers``/``key_skew`` describe
    the key layout and writer family — all plain data, so sharded and
    multi-writer trials pickle and parallelize exactly like single ones.

    ``schedule`` carries plan-addressed adversarial skip rules
    (:class:`~repro.faults.schedules.PlannedSkip`, from
    :meth:`Cluster.with_schedule`) — again plain data, compiled to a
    delivery policy only inside the trial.
    """

    protocol: str
    protocol_kwargs: tuple[tuple[str, Any], ...]
    t: int
    S: int | None
    n_readers: int
    allow_overfault: bool
    scenario: str | None
    scenario_label: str
    fault_groups: tuple[_FaultGroup, ...]
    read_fraction: float
    spacing: int
    operations: int
    explicit_plans: tuple[OperationPlan, ...] | None
    checks: tuple[str, ...]
    trial: int
    workload_seed: int
    recorded_seed: int | None
    keep_history: bool
    backend: str = "single"
    keys: tuple[str, ...] = ()
    n_writers: int = 1
    key_skew: float = 0.0
    schedule: tuple[PlannedSkip, ...] = ()
    keep_trace: bool = False
    engine: str = "event"
    durability: str = "none"
    repairs: tuple[tuple[int, int], ...] = ()
    spares: int | None = None
    xfer_quorum: int | None = None
    consistency: str = "atomic"
    observe: bool = False

    def backend_request(self) -> BackendRequest:
        """The build parameters the backend needs, as plain data."""
        return BackendRequest(
            t=self.t,
            S=self.S,
            n_readers=self.n_readers,
            n_writers=self.n_writers,
            keys=self.keys,
            allow_overfault=self.allow_overfault,
            protocol_kwargs=self.protocol_kwargs,
            engine=self.engine,
            durability=self.durability,
            repairs=self.repairs,
            spares=self.spares,
            xfer_quorum=self.xfer_quorum,
            consistency=self.consistency,
            observe=self.observe,
        )

    def plans(self) -> list[OperationPlan]:
        """The operation schedule this trial replays."""
        if self.explicit_plans is not None:
            return list(self.explicit_plans)
        generator = WorkloadGenerator(
            seed=self.workload_seed,
            n_readers=self.n_readers,
            n_writers=self.n_writers,
            read_fraction=self.read_fraction,
            spacing=self.spacing,
            keys=self.keys or None,
            key_skew=self.key_skew,
        )
        return generator.plan(self.operations)


def _materialize_behaviors(
    scenario: str | None,
    fault_groups: tuple[_FaultGroup, ...],
    t: int,
    allow_overfault: bool,
) -> dict[ProcessId, FaultBehavior]:
    """Fresh fault behaviours for one trial (behaviours are stateful)."""
    if scenario is not None:
        return dict(get_scenario(scenario, t).fault_plan.behaviors(t))
    requested = sum(group.count for group in fault_groups)
    budget = requested if allow_overfault else t
    if requested > budget and any(g.strict for g in fault_groups):
        raise ConfigurationError(
            f"strict fault plan requests {requested} faulty objects "
            f"but the threshold is t={t}"
        )
    behaviors: dict[ProcessId, FaultBehavior] = {}
    index = 1
    remaining = min(requested, budget)
    for group in fault_groups:
        spec = fault_spec(group.fault)
        for _ in range(min(group.count, remaining)):
            behaviors[object_id(index)] = spec.build(**dict(group.kwargs))
            index += 1
        remaining -= min(group.count, remaining)
    return behaviors


def resolve_trial_policy(
    scenario: str | None,
    t: int,
    schedule: tuple[PlannedSkip, ...],
) -> DeliveryPolicy | None:
    """The delivery policy a trial runs under, or None for default FIFO.

    A scenario's :attr:`~repro.workloads.scenarios.Scenario.policy_factory`
    supplies the base fabric; plan-addressed skip rules from
    :meth:`Cluster.with_schedule` stack on top of it.  Policies are stateful,
    so a fresh one is built per trial.
    """
    base: DeliveryPolicy | None = None
    if scenario is not None:
        factory = get_scenario(scenario, t).policy_factory
        if factory is not None:
            base = factory()
    if schedule:
        return PlannedSchedulePolicy(schedule, base=base)
    return base


def _run_trial_with(spec: TrialSpec, protocol_spec: ProtocolSpec) -> TrialResult:
    """Execute one trial against an already-resolved protocol spec."""
    # Operation serials restart at 1 inside the scope, so the recorded
    # history — including the operation ids surfaced in check explanations —
    # is a pure function of the spec, identical in-process and on a worker;
    # on exit the outer count resumes past its watermark, so any system live
    # outside the trial keeps allocating fresh ids.  (The restart is also
    # what makes plan-addressed schedules well-defined: plan k ⇒ serial k.)
    with scoped_operation_serials():
        behaviors = _materialize_behaviors(
            spec.scenario, spec.fault_groups, spec.t, spec.allow_overfault
        )
        backend = get_backend_spec(spec.backend).build(
            protocol_spec,
            spec.backend_request(),
            behaviors,
            resolve_trial_policy(spec.scenario, spec.t, spec.schedule),
        )
        report = measure_backend_latency(backend, spec.plans(), scenario=spec.scenario_label)
        histories = backend.histories()
        verdicts = {name: run_check(name, histories) for name in spec.checks}
        storage = None
        if spec.durability != "none":
            # Meter the durable journals once the trial is quiescent; the
            # report is plain data, a pure function of the delivered message
            # sequence, so it is byte-identical across engines and across
            # serial/parallel execution like everything else in the result.
            storage = SpaceMeter(backend.system.storage).measure()
        staleness = None
        if spec.consistency != "atomic":
            # Measure the lag the served reads actually exhibited.  A pure
            # function of the recorded histories, so it shares their
            # engine/parallel byte-identity.
            staleness = staleness_distribution(histories)
        obs = None
        if spec.observe:
            # Derive spans and metrics from the engine's bookkeeping, after
            # the run.  Everything except elapsed_s is a pure function of
            # the spec — byte-identical across engines and serial/parallel
            # execution — and elapsed_s never enters byte-compared dumps.
            from repro.obs import derive_metrics, derive_spans

            spans = derive_spans(backend.simulator, backend.trace)
            lag_samples: list[int] = []
            if spec.consistency != "atomic":
                lag_samples = [
                    s for s in read_staleness(backend.history()) if s is not None
                ]
            obs = {
                "spans": spans,
                "metrics": derive_metrics(
                    spans,
                    backend.trace,
                    events=report.events,
                    staleness=lag_samples,
                ),
                "events": report.events,
                "elapsed_s": round(report.elapsed_s, 6),
            }
        return TrialResult(
            trial=spec.trial,
            seed=spec.recorded_seed,
            write_rounds=list(report.write_rounds),
            read_rounds=list(report.read_rounds),
            incomplete=report.incomplete,
            checks=verdicts,
            history=backend.history() if spec.keep_history else None,
            trace=backend.trace if spec.keep_trace else None,
            storage=storage,
            repair_rounds=list(report.repair_rounds),
            staleness=staleness,
            obs=obs,
        )


def run_trial(spec: TrialSpec) -> TrialResult:
    """Execute one trial described by ``spec`` and return its result.

    Pure with respect to the spec: same spec ⇒ same result, whether called
    in-process or by a pool worker.  The protocol is resolved through the
    registry, so the function itself is picklable by reference.
    """
    return _run_trial_with(spec, get_spec(spec.protocol))


def _parallel_obstacle(specs: Sequence[TrialSpec], protocol_spec: ProtocolSpec) -> str | None:
    """Why ``specs`` cannot run on a process pool, or None if they can."""
    if get_spec(specs[0].protocol) is not protocol_spec:
        return (
            f"protocol {specs[0].protocol!r} does not resolve to this spec "
            "through the registry"
        )
    try:
        pickle.dumps(tuple(specs))
    except Exception as error:  # noqa: BLE001 — any pickling failure disqualifies
        return f"trial specs are not picklable ({error})"
    return None


def _pool_map(
    specs: Sequence[Any],
    max_workers: int | None,
    fn: Callable[[Any], Any] = None,  # default run_trial, bound below
) -> list[Any] | None:
    """Run ``fn`` over ``specs`` on a process pool, preserving order.

    Returns ``None`` (after a :class:`RuntimeWarning`) when the pool cannot
    do the job, so the caller reruns serially.  Two known causes, both
    specific to the ``spawn``/``forkserver`` start methods: a worker's
    freshly imported registry lacks protocols/scenarios that were only
    registered at runtime in this process (a :class:`ConfigurationError`
    the parent already ruled out during :meth:`Cluster._prepare_run`), and
    a ``__main__`` that cannot be re-imported at all (interactive sessions
    — :class:`BrokenProcessPool`).
    """
    if fn is None:
        fn = run_trial
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            chunksize = max(1, len(specs) // (pool._max_workers * 4))
            return list(pool.map(fn, specs, chunksize=chunksize))
    except (ConfigurationError, BrokenProcessPool) as error:
        warnings.warn(
            f"parallel workers could not run the trials ({error}); "
            "rerunning serially — register custom protocols/scenarios at "
            "import time (and run from an importable script) to use a pool",
            RuntimeWarning,
            stacklevel=4,
        )
        return None


def _execute_trials(
    specs: Sequence[TrialSpec],
    protocol_spec: ProtocolSpec,
    parallel: bool,
    max_workers: int | None,
) -> list[TrialResult]:
    """Run every spec, in-process or on a process pool, preserving order."""
    if parallel and len(specs) > 1:
        obstacle = _parallel_obstacle(specs, protocol_spec)
        if obstacle is None:
            results = _pool_map(specs, max_workers)
            if results is not None:
                return results
        else:
            warnings.warn(
                f"parallel execution unavailable, falling back to serial: {obstacle}",
                RuntimeWarning,
                stacklevel=3,
            )
    return [_run_trial_with(spec, protocol_spec) for spec in specs]


class Cluster:
    """Fluent experiment builder over a registered protocol name.

    Args:
        protocol: a registry name/alias (see :func:`available_protocols`)
            or a :class:`~repro.api.registry.ProtocolSpec`.
        t: declared fault threshold.
        S: object count (defaults to the protocol's minimum for ``t``).
        n_readers: reader population.
        allow_overfault: permit more than ``t`` faulty objects (demolition
            experiments).
        backend: system backend name (see
            :func:`repro.api.backends.available_backends`); defaults to the
            protocol's own advertised backend, so single-register protocols
            run exactly as before and ``mwmr-*`` stacks resolve to the
            multi-writer backend automatically.
        keys: key layout for keyed backends — a count or explicit names.
        n_writers: writer family size for multi-writer backends.
        engine: simulation engine every trial runs on — ``"event"`` (the
            per-message event loop, default) or ``"batched"`` (the
            wave-stepped engine, observably identical and faster; see
            :mod:`repro.sim.batched`).
        durability: durability seam every trial's objects persist through —
            ``"none"`` (crash-stop objects, the default), ``"mem"``
            (deterministic in-memory journals) or ``"dir"`` (append-only
            log files; see :mod:`repro.storage`).  Required for the
            crash-recover fault family.
        consistency: consistency model the cluster serves — ``"atomic"``
            (the default) or ``"k-atomic(N)"`` (bounded-stale reads; see
            :mod:`repro.consistency`).  A non-atomic model routes
            single/sharded layouts onto the ``k-atomic`` backend
            automatically; conversely ``backend="k-atomic"`` without a
            model defaults to ``"k-atomic(2)"``.
        observe: enable the observability layer (:mod:`repro.obs`): every
            trial carries derived span/metric records plus its executed
            event count and duration.  Off by default; the off-state
            produces byte-identical results to today.
        protocol_kwargs: forwarded to the protocol factory per trial.
    """

    def __init__(
        self,
        protocol: str | ProtocolSpec,
        t: int = 1,
        S: int | None = None,
        n_readers: int = 2,
        allow_overfault: bool = False,
        backend: str | None = None,
        keys: int | Sequence[str] | None = None,
        n_writers: int | None = None,
        engine: str = "event",
        durability: str = "none",
        consistency: str = "atomic",
        observe: bool = False,
        **protocol_kwargs: Any,
    ) -> None:
        self._spec = protocol if isinstance(protocol, ProtocolSpec) else get_spec(protocol)
        if t < 0:
            raise ConfigurationError("t must be non-negative")
        if n_readers < 1:
            raise ConfigurationError("need at least one reader")
        self._t = t
        self._S = S
        self._n_readers = n_readers
        self._allow_overfault = allow_overfault
        self._protocol_kwargs = dict(protocol_kwargs)
        self._fault_groups: tuple[_FaultGroup, ...] = ()
        self._scenario: Scenario | None = None
        self._read_fraction = 0.6
        self._spacing = 25
        self._operations = 10
        self._explicit_plans: tuple[OperationPlan, ...] | None = None
        self._checks: tuple[str, ...] = ()
        self._backend: str | None = None
        self._keys: tuple[str, ...] | None = None
        self._n_writers: int | None = None
        self._key_skew = 0.0
        self._schedule: tuple[PlannedSkip, ...] = ()
        self._engine = self._validate_engine(engine)
        self._durability = resolve_durability(durability)
        self._repairs: tuple[tuple[int, int], ...] = ()
        self._spares: int | None = None
        self._xfer_quorum: int | None = None
        self._observe = bool(observe)
        self._consistency = parse_consistency(consistency)
        if backend is None and self._consistency != "atomic":
            # A bound implies the bounded-stale wrapper whenever the
            # protocol's own backend is one it can wrap; anything else
            # (multi-writer stacks, reconfig) fails in _apply_consistency.
            if self._spec.backend in ("single", "sharded"):
                backend = "k-atomic"
        self._configure_backend(backend, keys, n_writers)
        self._apply_consistency()

    @staticmethod
    def _validate_engine(engine: str) -> str:
        resolve_engine(engine)  # one source of truth for names + errors
        return engine

    @property
    def spec(self) -> ProtocolSpec:
        """The protocol registry entry this cluster is built on."""
        return self._spec

    def _clone(self) -> "Cluster":
        return copy.copy(self)

    # ------------------------------------------------------------------ #
    # Backend resolution
    # ------------------------------------------------------------------ #

    def _configure_backend(
        self,
        backend: str | None,
        keys: int | Sequence[str] | None,
        n_writers: int | None,
    ) -> None:
        if backend is not None:
            self._backend = get_backend_spec(backend).name  # canonical, validated
        spec = self.backend_spec
        if keys is not None:
            if not spec.keyed:
                raise ConfigurationError(
                    f"backend {spec.name!r} holds a single register and takes no "
                    "key layout; use backend='sharded' for keyed workloads"
                )
            self._keys = normalize_keys(keys)
        if n_writers is not None:
            if not spec.multi_writer:
                raise ConfigurationError(
                    f"backend {spec.name!r} drives a single writer; "
                    "n_writers needs backend='multi-writer'"
                )
            if n_writers < 1:
                raise ConfigurationError("need at least one writer")
            self._n_writers = n_writers

    def _apply_consistency(self) -> None:
        """Reconcile the consistency model with the resolved backend.

        A non-atomic model needs the ``k-atomic`` backend: single/sharded
        layouts route onto it (the wrapper builds the same inner system),
        other backends reject the combination.  The ``k-atomic`` backend
        without a model adopts the default bound, so results always name
        the model they were served under.
        """
        name = self.backend_spec.name
        if self._consistency == "atomic":
            if name == "k-atomic":
                self._consistency = parse_consistency("k-atomic")
            return
        if name in ("single", "sharded"):
            self._backend = "k-atomic"
            return
        if name != "k-atomic":
            raise ConfigurationError(
                f"consistency {self._consistency!r} needs the k-atomic backend "
                f"(or a single/sharded layout it can wrap); backend {name!r} "
                "serves atomic reads only"
            )

    @property
    def backend_spec(self) -> BackendSpec:
        """The backend registry entry this cluster resolves to."""
        return get_backend_spec(self._backend or self._spec.backend)

    def _key_names(self) -> tuple[str, ...]:
        """The key layout handed to the backend ('' tuple: single register)."""
        if not self.backend_spec.keyed:
            return ()
        if self._keys is not None:
            return self._keys
        # The k-atomic wrapper accepts keys but defaults to one register
        # (its inner system is the single backend unless keys are given);
        # only the sharded backend defaults to a multi-key layout.
        return DEFAULT_SHARD_KEYS if self.backend_spec.name == "sharded" else ()

    def _writer_count(self) -> int:
        """Writer family size (1 for single-writer backends)."""
        if not self.backend_spec.multi_writer:
            return 1
        return self._n_writers if self._n_writers is not None else 2

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #

    def with_faults(
        self, fault: str, count: int = 1, strict: bool = False, **kwargs: Any
    ) -> "Cluster":
        """Give ``count`` objects the registered behaviour ``fault``.

        Multiple calls stack (objects are assigned in order).  The total is
        clamped to ``t`` unless ``allow_overfault`` was set; with
        ``strict=True`` the clamp raises instead, so sweeps cannot silently
        under-fault.  ``kwargs`` go to the behaviour maker (e.g.
        ``with_faults("crash", survive_messages=5)``).
        """
        spec = fault_spec(fault)  # validates the name early
        if count < 0:
            raise ConfigurationError("fault count must be non-negative")
        # Reject unknown maker arguments here, parent-side, so a typo'd
        # --fault-arg fails with the accepted names instead of a TypeError
        # inside a pool worker.
        spec.validate_kwargs(kwargs)
        clone = self._clone()
        clone._scenario = None
        clone._fault_groups = self._fault_groups + (
            _FaultGroup(fault=spec.name, count=count, strict=strict,
                        kwargs=tuple(sorted(kwargs.items()))),
        )
        return clone

    def with_backend(
        self,
        backend: str | None = None,
        *,
        keys: int | Sequence[str] | None = None,
        n_writers: int | None = None,
    ) -> "Cluster":
        """Select the system backend and its layout (keys, writer family).

        ``with_backend("sharded", keys=8)`` turns the cluster into eight
        named registers on the same physical objects;
        ``with_backend("multi-writer", n_writers=3)`` drives a writer
        family.  Omitting ``backend`` keeps the current one and adjusts
        only the layout.
        """
        clone = self._clone()
        clone._configure_backend(backend, keys, n_writers)
        return clone

    def with_engine(self, engine: str) -> "Cluster":
        """Select the simulation engine trials execute on.

        ``"event"`` is the per-message event loop; ``"batched"`` is the
        wave-stepped :class:`~repro.sim.batched.BatchedSimulator` — same
        observable results (byte-identical :meth:`RunResult.to_dict` apart
        from the ``engine`` metadata tag), faster execution.
        """
        clone = self._clone()
        clone._engine = self._validate_engine(engine)
        return clone

    def with_durability(self, durability: str) -> "Cluster":
        """Select the durability seam every trial's objects persist through.

        ``"mem"`` journals state into deterministic in-memory logs,
        ``"dir"`` into append-only files under a per-trial temp dir; both
        wrap every handler in a
        :class:`~repro.storage.DurableObjectHandler`, enable the
        crash-recover fault family, and attach a per-trial
        :class:`~repro.storage.SpaceMeter` report to the results.
        """
        clone = self._clone()
        clone._durability = resolve_durability(durability)
        return clone

    def with_consistency(self, consistency: str) -> "Cluster":
        """Select the consistency model the cluster serves.

        ``"k-atomic(N)"`` (or bare ``"k-atomic"``, bound
        :data:`~repro.consistency.models.DEFAULT_K`) routes single/sharded
        layouts onto the ``k-atomic`` backend, whose reads lag at most
        ``N − 1`` completed writes behind the freshest value; trial
        results then carry the measured staleness distribution.
        ``"atomic"`` on a cluster already built on the ``k-atomic``
        backend keeps that backend's default bound — drop the backend via
        ``with_backend("single")`` first to serve atomic reads again.
        """
        clone = self._clone()
        clone._consistency = parse_consistency(consistency)
        clone._apply_consistency()
        return clone

    def with_observe(self, observe: bool = True) -> "Cluster":
        """Enable the observability layer (see :mod:`repro.obs`).

        Observed trials carry a per-trial ``obs`` payload: span and metric
        records derived from the engine's bookkeeping (byte-identical
        across engines and serial/parallel execution), plus the executed
        event count and wall-clock duration surfaced in
        :meth:`TrialResult.to_dict`.  Off (the default), results are
        byte-identical to an unobserved cluster's.
        """
        clone = self._clone()
        clone._observe = bool(observe)
        return clone

    def with_schedule(self, *steps: PlannedSkip | tuple) -> "Cluster":
        """Install plan-addressed adversarial skip rules (stacking).

        Each step is a :class:`~repro.faults.schedules.PlannedSkip` or a
        shorthand tuple ``(op_index, objects)`` / ``(op_index, objects,
        round_no)``: operation ``op_index`` (1-based position in the
        trial's schedule) never delivers its round-``round_no`` invocations
        (every round when omitted) to the 1-based object indices in
        ``objects`` — the proofs' *"round rnd of op skips block B"*, as
        declarative data.  The rules ride inside :class:`TrialSpec`, so
        scheduled trials pickle and parallelize like any others::

            Cluster("fast-regular", t=1).with_schedule(
                (1, (1, 2, 3)),                      # op 1 skips {s1,s2,s3}
                PlannedSkip(op=3, objects=(4,), withhold_replies=True),
            )
        """
        compiled: list[PlannedSkip] = []
        for step in steps:
            if not isinstance(step, PlannedSkip):
                if not isinstance(step, tuple) or not 2 <= len(step) <= 3:
                    raise ConfigurationError(
                        "schedule shorthand is (op_index, objects) or "
                        f"(op_index, objects, round_no), got {step!r}"
                    )
                op_index, objects, *rest = step
                try:
                    objects = tuple(objects)
                except TypeError:
                    raise ConfigurationError(
                        f"schedule step objects must be a collection of "
                        f"object indices, got {step!r}"
                    ) from None
                step = PlannedSkip(
                    op=op_index,
                    objects=objects,
                    round_no=rest[0] if rest else None,
                )
            if step.op < 1 or any(index < 1 for index in step.objects):
                raise ConfigurationError(
                    f"schedule steps use 1-based op/object indices, got {step!r}"
                )
            if not step.objects:
                raise ConfigurationError(f"schedule step {step!r} skips no objects")
            compiled.append(step)
        clone = self._clone()
        clone._schedule = self._schedule + tuple(compiled)
        return clone

    def with_scenario(self, name: str) -> "Cluster":
        """Adopt a named scenario: its fault plan *and* workload shape."""
        scenario = get_scenario(name, self._t)
        clone = self._clone()
        clone._scenario = scenario
        clone._fault_groups = ()
        clone._read_fraction = scenario.read_fraction
        clone._spacing = scenario.spacing
        if scenario.fault_plan.overfault:
            # Fleet-wide plans (rolling restarts) deliberately exceed t —
            # the scenario opts in so the behaviour budget isn't clamped.
            clone._allow_overfault = True
        return clone

    def with_repairs(
        self,
        *steps: tuple[int, int],
        spares: int | None = None,
        xfer_quorum: int | None = None,
    ) -> "Cluster":
        """Schedule membership-repair steps (reconfig backend only).

        Each step is ``(member_index, at)``: replace epoch member
        ``s_member_index`` starting at virtual time ``at``; the k-th step
        activates the pre-provisioned spare ``s_{S+k}``.  ``spares``
        overrides the spare-pool size (default: one per step);
        ``xfer_quorum`` overrides the state-transfer read quorum (default
        ``S − t``, the safe intersection quorum — smaller values are the
        misconfiguration the schedule explorer refutes).
        """
        if self.backend_spec.name != "reconfig":
            raise ConfigurationError(
                f"repairs need the reconfig backend, not {self.backend_spec.name!r}; "
                "build the cluster with backend='reconfig'"
            )
        compiled: list[tuple[int, int]] = []
        for step in steps:
            if not isinstance(step, tuple) or len(step) != 2:
                raise ConfigurationError(
                    f"repair steps are (member_index, at) pairs, got {step!r}"
                )
            member, at = step
            if member < 1:
                raise ConfigurationError(
                    f"repair member indices are 1-based, got {member}"
                )
            if at < 0:
                raise ConfigurationError(f"repair time must be non-negative, got {at}")
            compiled.append((int(member), int(at)))
        if spares is not None and spares < 0:
            raise ConfigurationError("spares must be non-negative")
        if xfer_quorum is not None and xfer_quorum < 1:
            raise ConfigurationError("xfer_quorum must be at least 1")
        clone = self._clone()
        clone._repairs = self._repairs + tuple(compiled)
        if spares is not None:
            clone._spares = spares
        if xfer_quorum is not None:
            clone._xfer_quorum = xfer_quorum
        return clone

    def with_workload(
        self,
        reads: float | None = None,
        spacing: int | None = None,
        operations: int | None = None,
        key_skew: float | None = None,
    ) -> "Cluster":
        """Shape the generated workload (read fraction, spacing, length, skew).

        ``key_skew`` only matters for keyed backends: 0.0 spreads
        operations uniformly over the keys, larger values concentrate them
        on the first keys (hot shards).
        """
        clone = self._clone()
        if reads is not None:
            if not 0.0 <= reads <= 1.0:
                raise ConfigurationError("reads must be a probability")
            clone._read_fraction = reads
        if spacing is not None:
            if spacing < 0:
                raise ConfigurationError("spacing must be non-negative")
            clone._spacing = spacing
        if operations is not None:
            if operations < 1:
                raise ConfigurationError("need at least one operation")
            clone._operations = operations
        if key_skew is not None:
            if key_skew < 0:
                raise ConfigurationError("key_skew must be non-negative")
            clone._key_skew = key_skew
        clone._explicit_plans = None
        return clone

    def with_operations(
        self, operations: Iterable[OperationPlan | tuple[Any, ...]]
    ) -> "Cluster":
        """Use an explicit schedule instead of a generated workload.

        Accepts :class:`OperationPlan` entries or shorthand tuples:
        ``("write", value, at)`` and ``("read", reader_index, at)``, each
        with an optional trailing key for keyed backends —
        ``("write", value, at, "k3")``.  The same schedule is replayed in
        every trial.
        """
        plans: list[OperationPlan] = []
        readers = reader_ids(self._n_readers)
        for entry in operations:
            if not isinstance(entry, OperationPlan):
                kind, arg, at, *rest = entry
                if len(rest) > 1:
                    raise ConfigurationError(
                        f"operation shorthand takes at most 4 elements, got {entry!r}"
                    )
                key = rest[0] if rest else None
                if kind == "write":
                    entry = OperationPlan(kind="write", client_index=1, value=arg, at=at, key=key)
                elif kind == "read":
                    entry = OperationPlan(kind="read", client_index=arg, value=None, at=at, key=key)
                else:
                    raise ConfigurationError(f"operation kind must be read/write, got {kind!r}")
            if entry.kind == "read":
                resolve_reader(readers, entry.client_index)
            plans.append(entry)
        clone = self._clone()
        clone._explicit_plans = tuple(plans)
        return clone

    def check(self, *names: str, k: int | None = None) -> "Cluster":
        """Run the named consistency checks on every trial's history.

        Names resolve through the checker registry
        (:mod:`repro.consistency.models`): canonical names
        (``"atomicity"``), model shorthands (``"atomic"``), and the
        parametric family — ``check("k-atomic", k=2)`` or the inline
        ``check("k-atomic(2)")`` both record a ``k-atomic(2)`` verdict.
        """
        canonical = tuple(canonical_check_name(name, k=k) for name in names)
        if k is not None and not any(name.startswith("k-atomic") for name in canonical):
            raise ConfigurationError(
                "k= only parameterizes the k-atomic check; "
                f"none of {list(names)} takes a bound"
            )
        clone = self._clone()
        clone._checks = self._checks + canonical
        return clone

    def with_checks(self, *names: str, k: int | None = None) -> "Cluster":
        """Like :meth:`check`, but *replacing* any checks added so far.

        The robustness frontier walks one configuration down the model
        ladder, re-probing it under each checker in turn — appending (what
        :meth:`check` does) would accumulate the whole ladder onto every
        probe.
        """
        clone = self._clone()
        clone._checks = ()
        return clone.check(*names, k=k) if names else clone

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #

    def _materialize_faults(self) -> tuple[dict[ProcessId, Any], FaultInventory]:
        behaviors = _materialize_behaviors(
            self._scenario.name if self._scenario is not None else None,
            self._fault_groups,
            self._t,
            self._allow_overfault,
        )
        if self._scenario is not None:
            plan = self._scenario.fault_plan
            requested = plan.count if plan.maker is not None else 0
        else:
            requested = sum(group.count for group in self._fault_groups)
        inventory = FaultInventory(
            requested=requested,
            effective=len(behaviors),
            assignments={str(pid): b.describe() for pid, b in sorted(behaviors.items())},
        )
        return behaviors, inventory

    def _scenario_label(self) -> str:
        if self._scenario is not None:
            return self._scenario.name
        if not self._fault_groups:
            return "fault-free"
        return "+".join(_group_label(g) for g in self._fault_groups)

    def _plans(self, seed: int) -> list[OperationPlan]:
        if self._explicit_plans is not None:
            return list(self._explicit_plans)
        generator = WorkloadGenerator(
            seed=seed,
            n_readers=self._n_readers,
            n_writers=self._writer_count(),
            read_fraction=self._read_fraction,
            spacing=self._spacing,
            keys=self._key_names() or None,
            key_skew=self._key_skew,
        )
        return generator.plan(self._operations)

    def _backend_request(self) -> BackendRequest:
        return BackendRequest(
            t=self._t,
            S=self._S,
            n_readers=self._n_readers,
            n_writers=self._writer_count(),
            keys=self._key_names(),
            allow_overfault=self._allow_overfault,
            protocol_kwargs=tuple(sorted(self._protocol_kwargs.items())),
            engine=self._engine,
            durability=self._durability,
            repairs=self._repairs,
            spares=self._spares,
            xfer_quorum=self._xfer_quorum,
            consistency=self._consistency,
            observe=self._observe,
        )

    def _require_scenario_durability(self) -> None:
        """Fail parent-side when a scenario needs the durability seam.

        Recovery scenarios (rolling-restart, crash-storm) replay journals
        on rejoin; without a store the fault behaviour would raise
        StorageError on first delivery *inside* a trial — possibly inside a
        pool worker.  Surface the configuration error here instead.
        """
        if (
            self._scenario is not None
            and self._scenario.requires_durability
            and self._durability == "none"
        ):
            raise ConfigurationError(
                f"scenario {self._scenario.name!r} replays durable journals "
                "and needs durability='mem' or durability='dir' "
                "(CLI: --durability mem)"
            )

    def build_backend(self) -> SystemBackend:
        """One configured :class:`~repro.api.backends.SystemBackend`."""
        behaviors, _ = self._materialize_faults()
        policy = resolve_trial_policy(
            self._scenario.name if self._scenario is not None else None,
            self._t,
            self._schedule,
        )
        return self.backend_spec.build(
            self._spec, self._backend_request(), behaviors, policy
        )

    def build_system(self) -> Any:
        """The configured low-level system — the escape hatch.

        Resolves the named backend and returns the harness it wraps: a
        :class:`~repro.registers.base.RegisterSystem` for the default
        backend, a multi-writer or sharded system otherwise.
        """
        return self.build_backend().system

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _trial_specs(
        self, trials: int, seed: int, keep_history: bool, keep_trace: bool = False
    ) -> list[TrialSpec]:
        """Compile one picklable :class:`TrialSpec` per trial."""
        explicit = self._explicit_plans is not None
        label = self._scenario_label()
        return [
            TrialSpec(
                protocol=self._spec.name,
                protocol_kwargs=tuple(sorted(self._protocol_kwargs.items())),
                t=self._t,
                S=self._S,
                n_readers=self._n_readers,
                allow_overfault=self._allow_overfault,
                scenario=self._scenario.name if self._scenario is not None else None,
                scenario_label=label,
                fault_groups=self._fault_groups,
                read_fraction=self._read_fraction,
                spacing=self._spacing,
                operations=self._operations,
                explicit_plans=self._explicit_plans,
                checks=self._checks,
                trial=index,
                workload_seed=seed + index,
                recorded_seed=None if explicit else seed + index,
                keep_history=keep_history,
                backend=self.backend_spec.name,
                keys=self._key_names(),
                n_writers=self._writer_count(),
                key_skew=self._key_skew,
                schedule=self._schedule,
                keep_trace=keep_trace,
                engine=self._engine,
                durability=self._durability,
                repairs=self._repairs,
                spares=self._spares,
                xfer_quorum=self._xfer_quorum,
                consistency=self._consistency,
                observe=self._observe,
            )
            for index in range(trials)
        ]

    def _prepare_run(
        self, trials: int, seed: int, keep_history: bool, keep_trace: bool = False
    ) -> tuple[RunResult, list[TrialSpec]]:
        """Validate the configuration and build the result shell + specs.

        Configuration errors (bad sizes, strict over-faulting) surface here,
        in the calling process, before any worker pool spins up — so serial
        and parallel runs fail identically.
        """
        if trials < 1:
            raise ConfigurationError("need at least one trial")
        self._require_scenario_durability()
        behaviors, inventory = self._materialize_faults()
        probe = self.backend_spec.build(self._spec, self._backend_request(), behaviors)
        result = RunResult(
            protocol=self._spec.name,
            semantics=self._spec.semantics,
            t=self._t,
            S=probe.S,
            n_readers=self._n_readers,
            scenario=self._scenario_label(),
            faults=inventory,
            checks=self._checks,
            backend=self.backend_spec.name,
            key_count=len(probe.keys),
            n_writers=self._writer_count(),
            engine=self._engine,
            durability=self._durability,
            consistency=self._consistency,
        )
        return result, self._trial_specs(trials, seed, keep_history, keep_trace)

    def run(
        self,
        trials: int = 1,
        seed: int = 0,
        keep_history: bool = True,
        keep_trace: bool = False,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> RunResult:
        """Run ``trials`` independent executions and collect the results.

        Trial ``i`` uses workload seed ``seed + i`` (explicit schedules are
        replayed verbatim each trial).  Check failures are *recorded*, not
        raised — inspect :attr:`RunResult.ok` / :meth:`RunResult.failures`.
        ``keep_history=False`` drops each trial's recorded history after
        the checks run (large sweeps don't need the live object graphs).

        ``parallel=True`` fans the trials over a
        :class:`~concurrent.futures.ProcessPoolExecutor` with ``max_workers``
        processes (default: one per CPU).  Serial and parallel execution run
        the same :func:`run_trial` function on the same specs, so for
        identical seeds :meth:`RunResult.to_dict` is byte-identical either
        way; specs that cannot cross a process boundary (e.g. explicit
        schedules closing over live objects) fall back to serial with a
        :class:`RuntimeWarning`.
        """
        result, specs = self._prepare_run(trials, seed, keep_history, keep_trace)
        result.trials.extend(
            _execute_trials(specs, self._spec, parallel=parallel, max_workers=max_workers)
        )
        return result

    def _schedule_probe(
        self,
        *,
        seed: int = 0,
        granularity: str = "operation",
        max_events: int = 200_000,
    ) -> "Any":
        """The :class:`~repro.explore.engine.ScheduleProbe` this
        configuration explores — the shared boundary between
        :meth:`explore`, :meth:`frontier` and the CLI."""
        from repro.explore.engine import ScheduleProbe

        self._require_scenario_durability()
        plans = tuple(self._plans(seed))
        checks = self._checks or (self._spec.default_check(),)
        return ScheduleProbe(
            protocol=self._spec.name,
            protocol_kwargs=tuple(sorted(self._protocol_kwargs.items())),
            t=self._t,
            S=self._S,
            n_readers=self._n_readers,
            n_writers=self._writer_count(),
            keys=self._key_names(),
            backend=self.backend_spec.name,
            allow_overfault=self._allow_overfault,
            scenario=self._scenario.name if self._scenario is not None else None,
            fault_groups=self._fault_groups,
            schedule=self._schedule,
            plans=plans,
            checks=checks,
            granularity=granularity,
            max_events=max_events,
            engine=self._engine,
            durability=self._durability,
            repairs=self._repairs,
            spares=self._spares,
            xfer_quorum=self._xfer_quorum,
            consistency=self._consistency,
            observe=self._observe,
        )

    def explore(
        self,
        *,
        max_holds: int = 2,
        max_schedules: int = 2_000,
        max_events: int = 200_000,
        granularity: str = "operation",
        strategy: str = "bfs",
        seed: int = 0,
        minimize: bool = True,
        stop_on_violation: bool = False,
        fault_timing: bool = False,
        symmetry: bool = False,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> "Any":
        """Bounded model check: sweep held-message schedules for violations.

        Where :meth:`run` simulates *one* schedule per trial, ``explore``
        searches the schedule space: it enumerates which client↔object
        links the adversary keeps in transit (up to ``max_holds`` at a
        time, over at most ``max_schedules`` schedules, each capped at
        ``max_events`` simulator events), runs every schedule through the
        configured workload/fault setup, and checks the requested
        consistency properties on each recorded history.  Violating
        schedules are delta-debugged to minimal hold sets and returned as
        replayable :class:`~repro.explore.witness.ScheduleWitness` JSON;
        a clean sweep of the exhausted bounded space *certifies* the
        configuration (see
        :attr:`~repro.explore.engine.ExploreResult.certified`).

        The workload is materialized once (explicit plans, or the
        generated plan for ``seed``) so every schedule replays the same
        operations.  Checks default to the protocol's advertised
        consistency level.  ``parallel=True`` fans each frontier wave over
        the trial engine's process pool with byte-identical results.

        ``fault_timing=True`` widens the decision vocabulary to *when*
        each configured fault fires (swept per object over the traffic it
        actually handled); ``symmetry=True`` folds hold sets that differ
        only by a permutation of interchangeable fault-free objects.
        """
        from repro.explore.engine import explore_probe

        probe = self._schedule_probe(
            seed=seed, granularity=granularity, max_events=max_events
        )
        return explore_probe(
            probe,
            max_holds=max_holds,
            max_schedules=max_schedules,
            strategy=strategy,
            minimize=minimize,
            stop_on_violation=stop_on_violation,
            fault_timing=fault_timing,
            symmetry=symmetry,
            parallel=parallel,
            max_workers=max_workers,
        )

    def frontier(
        self,
        *,
        max_k: int = 4,
        max_holds: int = 2,
        max_schedules: int = 2_000,
        max_events: int = 200_000,
        granularity: str = "operation",
        strategy: str = "bfs",
        seed: int = 0,
        fault_timing: bool = True,
        symmetry: bool = False,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> "Any":
        """The certified robustness frontier of this configuration.

        Walks the consistency-model ladder — atomic, ``k-atomic(2..max_k)``,
        and (for single-writer stacks) regular and safe — re-exploring the
        bounded schedule space under each checker, and reports the
        strongest model the configuration *certifies* together with a
        minimized witness refuting the next-stronger one.  See
        :func:`repro.robustness.robustness_frontier`.
        """
        from repro.robustness import robustness_frontier

        return robustness_frontier(
            self,
            max_k=max_k,
            max_holds=max_holds,
            max_schedules=max_schedules,
            max_events=max_events,
            granularity=granularity,
            strategy=strategy,
            seed=seed,
            fault_timing=fault_timing,
            symmetry=symmetry,
            parallel=parallel,
            max_workers=max_workers,
        )


# --------------------------------------------------------------------- #
# Sweeps
# --------------------------------------------------------------------- #


def sweep(
    protocols: Sequence[str] | None = None,
    *,
    t: int = 1,
    n_readers: int = 2,
    scenarios: Sequence[str] | None = None,
    operations: int = 10,
    spacing: int = 150,
    trials: int = 1,
    seed: int = 17,
    checks: Sequence[str] = (),
    backend: str | None = None,
    keys: int | Sequence[str] | None = None,
    n_writers: int | None = None,
    key_skew: float = 0.0,
    engine: str = "event",
    durability: str = "none",
    consistency: str = "atomic",
    observe: bool = False,
    frontier: bool = False,
    frontier_bounds: Mapping[str, Any] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> SweepResult:
    """Run every protocol under every scenario its guarantees cover.

    ``protocols`` defaults to the whole registry; ``scenarios`` defaults to
    each protocol's own advertised coverage (its ``scenarios`` metadata).
    The same seed is used for every grid cell so rows are comparable.

    ``backend`` (with ``keys``/``n_writers``/``key_skew``) pins every cell
    to one system backend; by default each protocol runs on its own
    advertised backend, so mixed grids — SWMR registers next to MWMR
    stacks — sweep side by side.

    With ``parallel=True`` the *entire grid's* trials — every protocol ×
    scenario × trial — are flattened into one process pool, so small cells
    don't leave workers idle.  Results are reassembled in grid order and are
    byte-identical to a serial sweep with the same seed.

    ``frontier=True`` additionally computes each cell's certified
    robustness frontier (see :meth:`Cluster.frontier`) and attaches its
    payload as :attr:`RunResult.robustness`; ``frontier_bounds`` overrides
    the deliberately modest default exploration bounds.
    """
    result = SweepResult()
    cells: list[tuple[Cluster, RunResult, list[TrialSpec]]] = []
    for name in protocols if protocols is not None else available_protocols():
        spec = get_spec(name)
        for scenario_name in scenarios if scenarios is not None else spec.scenarios:
            cluster = (
                Cluster(name, t=t, n_readers=n_readers,
                        backend=backend, keys=keys, n_writers=n_writers,
                        engine=engine, durability=durability,
                        consistency=consistency, observe=observe)
                .with_scenario(scenario_name)
                .with_workload(spacing=spacing, operations=operations, key_skew=key_skew)
                .check(*checks)
            )
            shell, specs = cluster._prepare_run(trials, seed, keep_history=False)
            cells.append((cluster, shell, specs))
    flat = [spec for _, _, specs in cells for spec in specs]
    executed = None
    if parallel and len(flat) > 1:
        # Sweep specs reference protocols/scenarios by registry name and
        # carry no explicit plans, so they are always picklable; run the
        # whole grid through one executor (falling back to serial if the
        # workers' registries lack runtime registrations).
        executed = _pool_map(flat, max_workers)
    if executed is None:
        executed = [run_trial(spec) for spec in flat]
    bounds = {"max_holds": 1, "max_schedules": 200, "seed": seed}
    if frontier_bounds:
        bounds.update(frontier_bounds)
    cursor = 0
    for cluster, run_result, specs in cells:
        run_result.trials.extend(executed[cursor:cursor + len(specs)])
        if frontier:
            run_result.robustness = cluster.frontier(**bounds).to_dict()
        result.runs.append(run_result)
        cursor += len(specs)
    return result
