"""Declarative experiment builder: protocol × adversary × workload × checks.

:class:`Cluster` is the facade every entry point (CLI, benchmarks, examples,
tests) composes experiments through::

    from repro.api import Cluster

    result = (
        Cluster("fast-regular", t=2)
        .with_faults("stale-echo", count=2)
        .with_workload(reads=0.6, spacing=25, operations=12)
        .check("atomicity", "regularity")
        .run(trials=20, seed=7)
    )
    assert result.trials[0].checks["regularity"].ok
    print(result.render())

Builder methods return **new** ``Cluster`` instances (fluent, immutable), so
partial configurations can be reused as templates across sweeps.  ``run``
builds one fresh :class:`~repro.registers.base.RegisterSystem` per trial
(protocols and behaviours are stateful), replays a seeded workload through
:func:`repro.analysis.metrics.measure_latency`, runs the requested spec
checkers on the recorded history, and returns a structured
:class:`RunResult` — per-trial latencies, round counts, check verdicts and
the materialized fault inventory.

:func:`sweep` fans a protocol × scenario grid into a :class:`SweepResult`
(the shape the latency-matrix benchmark renders).
"""

from __future__ import annotations

import copy
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.metrics import measure_latency
from repro.analysis.tables import format_table
from repro.api.faults import fault_spec
from repro.api.registry import ProtocolSpec, available_protocols, get_spec
from repro.errors import ConfigurationError
from repro.registers.base import RegisterSystem, resolve_reader
from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.history import History
from repro.spec.linearizability import is_linearizable
from repro.spec.regularity import check_swmr_regularity
from repro.spec.safety import check_swmr_safety
from repro.types import ProcessId, object_id, reader_ids
from repro.workloads.generator import OperationPlan, WorkloadGenerator
from repro.workloads.scenarios import Scenario, get_scenario


# --------------------------------------------------------------------- #
# Check registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class CheckVerdict:
    """Outcome of one consistency check on one trial's history."""

    check: str
    ok: bool
    explanation: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"check": self.check, "ok": self.ok, "explanation": self.explanation}


def _verdict_check(name: str, checker: Callable[[History], Any]) -> Callable[[History], CheckVerdict]:
    def run(history: History) -> CheckVerdict:
        verdict = checker(history)
        return CheckVerdict(check=name, ok=verdict.ok, explanation=verdict.explanation or "")

    return run


def _linearizability_check(history: History) -> CheckVerdict:
    ok = is_linearizable(history)
    return CheckVerdict(
        check="linearizability",
        ok=ok,
        explanation="" if ok else "no linearization of the recorded history exists",
    )


CHECKS: dict[str, Callable[[History], CheckVerdict]] = {
    "atomicity": _verdict_check("atomicity", check_swmr_atomicity),
    "regularity": _verdict_check("regularity", check_swmr_regularity),
    "safety": _verdict_check("safety", check_swmr_safety),
    "linearizability": _linearizability_check,
}


def available_checks() -> tuple[str, ...]:
    """All consistency checks addressable from :meth:`Cluster.check`."""
    return tuple(sorted(CHECKS))


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class FaultInventory:
    """What the adversary actually got: requested vs effective faults.

    ``effective`` may be below ``requested`` when a non-strict plan clamps
    to the threshold ``t`` (the clamp is always recorded here so sweeps
    cannot silently under-fault).
    """

    requested: int
    effective: int
    assignments: Mapping[str, str]  # object id → behaviour description

    def to_dict(self) -> dict[str, Any]:
        return {
            "requested": self.requested,
            "effective": self.effective,
            "assignments": dict(self.assignments),
        }

    def describe(self) -> str:
        if not self.assignments:
            return "fault-free"
        parts = [f"{pid}:{how}" for pid, how in sorted(self.assignments.items())]
        note = "" if self.effective == self.requested else f" (requested {self.requested})"
        return ", ".join(parts) + note


@dataclass(slots=True)
class TrialResult:
    """One trial: latencies, completion and check verdicts.

    ``history`` keeps the recorded operation history for drill-down (not
    serialized by :meth:`to_dict` — it is a live object graph).
    """

    trial: int
    seed: int | None
    write_rounds: list[int]
    read_rounds: list[int]
    incomplete: int
    checks: dict[str, CheckVerdict]
    history: History | None = None

    @property
    def worst_write(self) -> int:
        return max(self.write_rounds, default=0)

    @property
    def worst_read(self) -> int:
        return max(self.read_rounds, default=0)

    @property
    def mean_write(self) -> float:
        return statistics.fmean(self.write_rounds) if self.write_rounds else 0.0

    @property
    def mean_read(self) -> float:
        return statistics.fmean(self.read_rounds) if self.read_rounds else 0.0

    @property
    def ok(self) -> bool:
        """All requested checks passed and every operation completed."""
        return self.incomplete == 0 and all(v.ok for v in self.checks.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial": self.trial,
            "seed": self.seed,
            "write_rounds": list(self.write_rounds),
            "read_rounds": list(self.read_rounds),
            "incomplete": self.incomplete,
            "checks": {name: verdict.to_dict() for name, verdict in self.checks.items()},
        }


@dataclass(slots=True)
class RunResult:
    """Structured outcome of :meth:`Cluster.run` across all trials."""

    protocol: str
    semantics: str
    t: int
    S: int
    n_readers: int
    scenario: str
    faults: FaultInventory
    checks: tuple[str, ...]
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def worst_write(self) -> int:
        return max((trial.worst_write for trial in self.trials), default=0)

    @property
    def worst_read(self) -> int:
        return max((trial.worst_read for trial in self.trials), default=0)

    @property
    def mean_write(self) -> float:
        rounds = [r for trial in self.trials for r in trial.write_rounds]
        return statistics.fmean(rounds) if rounds else 0.0

    @property
    def mean_read(self) -> float:
        rounds = [r for trial in self.trials for r in trial.read_rounds]
        return statistics.fmean(rounds) if rounds else 0.0

    @property
    def incomplete(self) -> int:
        return sum(trial.incomplete for trial in self.trials)

    @property
    def ok(self) -> bool:
        """Every trial completed all operations and passed all checks."""
        return all(trial.ok for trial in self.trials)

    def failures(self) -> list[tuple[int, CheckVerdict]]:
        """Every failed (trial index, verdict) pair, for diagnostics."""
        return [
            (trial.trial, verdict)
            for trial in self.trials
            for verdict in trial.checks.values()
            if not verdict.ok
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "semantics": self.semantics,
            "t": self.t,
            "S": self.S,
            "n_readers": self.n_readers,
            "scenario": self.scenario,
            "faults": self.faults.to_dict(),
            "checks": list(self.checks),
            "trials": [trial.to_dict() for trial in self.trials],
            "worst_write": self.worst_write,
            "worst_read": self.worst_read,
            "incomplete": self.incomplete,
            "ok": self.ok,
        }

    def row(self) -> dict[str, str]:
        """One aggregate table row (the latency-matrix shape)."""
        checks = ",".join(
            f"{name}:{'ok' if all(t.checks[name].ok for t in self.trials) else 'FAIL'}"
            for name in self.checks
        ) or "-"
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "writes (worst/mean)": f"{self.worst_write}/{self.mean_write:.2f}",
            "reads (worst/mean)": f"{self.worst_read}/{self.mean_read:.2f}",
            "incomplete": str(self.incomplete),
            "checks": checks,
        }

    def render(self) -> str:
        """Per-trial table plus the fault inventory, ready to print."""
        rows = []
        for trial in self.trials:
            rows.append({
                "trial": str(trial.trial),
                "seed": "-" if trial.seed is None else str(trial.seed),
                "writes (worst/mean)": f"{trial.worst_write}/{trial.mean_write:.2f}",
                "reads (worst/mean)": f"{trial.worst_read}/{trial.mean_read:.2f}",
                "incomplete": str(trial.incomplete),
                "checks": ",".join(
                    f"{name}:{'ok' if verdict.ok else 'FAIL'}"
                    for name, verdict in trial.checks.items()
                ) or "-",
            })
        title = (
            f"{self.protocol} [{self.semantics}] — t={self.t}, S={self.S}, "
            f"{self.n_readers} readers, faults: {self.faults.describe()}"
        )
        return format_table(
            title,
            ("trial", "seed", "writes (worst/mean)", "reads (worst/mean)", "incomplete", "checks"),
            rows,
        )


@dataclass(slots=True)
class SweepResult:
    """Results of a protocol × scenario sweep, renderable as one table."""

    runs: list[RunResult] = field(default_factory=list)

    def protocols(self) -> tuple[str, ...]:
        """Protocol names in first-seen order."""
        seen: dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.protocol, None)
        return tuple(seen)

    def for_protocol(self, name: str) -> list[RunResult]:
        return [run for run in self.runs if run.protocol == name]

    def worst_rounds(self, name: str) -> tuple[int, int]:
        """(worst write, worst read) for ``name`` across its scenarios."""
        runs = self.for_protocol(name)
        if not runs:
            raise ConfigurationError(f"no runs recorded for protocol {name!r}")
        return (max(r.worst_write for r in runs), max(r.worst_read for r in runs))

    def to_dict(self) -> dict[str, Any]:
        return {"runs": [run.to_dict() for run in self.runs]}

    def table(self, title: str = "protocol × scenario sweep") -> str:
        columns = ("protocol", "scenario", "writes (worst/mean)", "reads (worst/mean)",
                   "incomplete", "checks")
        return format_table(title, columns, [run.row() for run in self.runs])


# --------------------------------------------------------------------- #
# The builder
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class _FaultGroup:
    """One ``with_faults`` request before materialization."""

    fault: str
    count: int
    strict: bool
    kwargs: tuple[tuple[str, Any], ...]


class Cluster:
    """Fluent experiment builder over a registered protocol name.

    Args:
        protocol: a registry name/alias (see :func:`available_protocols`)
            or a :class:`~repro.api.registry.ProtocolSpec`.
        t: declared fault threshold.
        S: object count (defaults to the protocol's minimum for ``t``).
        n_readers: reader population.
        allow_overfault: permit more than ``t`` faulty objects (demolition
            experiments).
        protocol_kwargs: forwarded to the protocol factory per trial.
    """

    def __init__(
        self,
        protocol: str | ProtocolSpec,
        t: int = 1,
        S: int | None = None,
        n_readers: int = 2,
        allow_overfault: bool = False,
        **protocol_kwargs: Any,
    ) -> None:
        self._spec = protocol if isinstance(protocol, ProtocolSpec) else get_spec(protocol)
        if t < 0:
            raise ConfigurationError("t must be non-negative")
        if n_readers < 1:
            raise ConfigurationError("need at least one reader")
        self._t = t
        self._S = S
        self._n_readers = n_readers
        self._allow_overfault = allow_overfault
        self._protocol_kwargs = dict(protocol_kwargs)
        self._fault_groups: tuple[_FaultGroup, ...] = ()
        self._scenario: Scenario | None = None
        self._read_fraction = 0.6
        self._spacing = 25
        self._operations = 10
        self._explicit_plans: tuple[OperationPlan, ...] | None = None
        self._checks: tuple[str, ...] = ()

    @property
    def spec(self) -> ProtocolSpec:
        """The protocol registry entry this cluster is built on."""
        return self._spec

    def _clone(self) -> "Cluster":
        return copy.copy(self)

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #

    def with_faults(
        self, fault: str, count: int = 1, strict: bool = False, **kwargs: Any
    ) -> "Cluster":
        """Give ``count`` objects the registered behaviour ``fault``.

        Multiple calls stack (objects are assigned in order).  The total is
        clamped to ``t`` unless ``allow_overfault`` was set; with
        ``strict=True`` the clamp raises instead, so sweeps cannot silently
        under-fault.  ``kwargs`` go to the behaviour maker (e.g.
        ``with_faults("crash", survive_messages=5)``).
        """
        spec = fault_spec(fault)  # validates the name early
        if count < 0:
            raise ConfigurationError("fault count must be non-negative")
        clone = self._clone()
        clone._scenario = None
        clone._fault_groups = self._fault_groups + (
            _FaultGroup(fault=spec.name, count=count, strict=strict,
                        kwargs=tuple(sorted(kwargs.items()))),
        )
        return clone

    def with_scenario(self, name: str) -> "Cluster":
        """Adopt a named scenario: its fault plan *and* workload shape."""
        scenario = get_scenario(name, self._t)
        clone = self._clone()
        clone._scenario = scenario
        clone._fault_groups = ()
        clone._read_fraction = scenario.read_fraction
        clone._spacing = scenario.spacing
        return clone

    def with_workload(
        self,
        reads: float | None = None,
        spacing: int | None = None,
        operations: int | None = None,
    ) -> "Cluster":
        """Shape the generated workload (read fraction, spacing, length)."""
        clone = self._clone()
        if reads is not None:
            if not 0.0 <= reads <= 1.0:
                raise ConfigurationError("reads must be a probability")
            clone._read_fraction = reads
        if spacing is not None:
            if spacing < 0:
                raise ConfigurationError("spacing must be non-negative")
            clone._spacing = spacing
        if operations is not None:
            if operations < 1:
                raise ConfigurationError("need at least one operation")
            clone._operations = operations
        clone._explicit_plans = None
        return clone

    def with_operations(
        self, operations: Iterable[OperationPlan | tuple[Any, ...]]
    ) -> "Cluster":
        """Use an explicit schedule instead of a generated workload.

        Accepts :class:`OperationPlan` entries or shorthand tuples:
        ``("write", value, at)`` and ``("read", reader_index, at)``.
        The same schedule is replayed in every trial.
        """
        plans: list[OperationPlan] = []
        readers = reader_ids(self._n_readers)
        for entry in operations:
            if not isinstance(entry, OperationPlan):
                kind, arg, at = entry
                if kind == "write":
                    entry = OperationPlan(kind="write", client_index=1, value=arg, at=at)
                elif kind == "read":
                    entry = OperationPlan(kind="read", client_index=arg, value=None, at=at)
                else:
                    raise ConfigurationError(f"operation kind must be read/write, got {kind!r}")
            if entry.kind == "read":
                resolve_reader(readers, entry.client_index)
            plans.append(entry)
        clone = self._clone()
        clone._explicit_plans = tuple(plans)
        return clone

    def check(self, *names: str) -> "Cluster":
        """Run the named consistency checks on every trial's history."""
        for name in names:
            if name not in CHECKS:
                raise ConfigurationError(
                    f"unknown check {name!r}; available: {', '.join(available_checks())}"
                )
        clone = self._clone()
        clone._checks = self._checks + names
        return clone

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #

    def _materialize_faults(self) -> tuple[dict[ProcessId, Any], FaultInventory]:
        if self._scenario is not None:
            plan = self._scenario.fault_plan
            behaviors = dict(plan.behaviors(self._t))
            requested = plan.count if plan.maker is not None else 0
        else:
            requested = sum(group.count for group in self._fault_groups)
            budget = requested if self._allow_overfault else self._t
            if requested > budget and any(g.strict for g in self._fault_groups):
                raise ConfigurationError(
                    f"strict fault plan requests {requested} faulty objects "
                    f"but the threshold is t={self._t}"
                )
            behaviors = {}
            index = 1
            remaining = min(requested, budget)
            for group in self._fault_groups:
                spec = fault_spec(group.fault)
                for _ in range(min(group.count, remaining)):
                    behaviors[object_id(index)] = spec.build(**dict(group.kwargs))
                    index += 1
                remaining -= min(group.count, remaining)
        inventory = FaultInventory(
            requested=requested,
            effective=len(behaviors),
            assignments={str(pid): b.describe() for pid, b in sorted(behaviors.items())},
        )
        return behaviors, inventory

    def _scenario_label(self) -> str:
        if self._scenario is not None:
            return self._scenario.name
        if not self._fault_groups:
            return "fault-free"
        return "+".join(f"{g.fault}×{g.count}" for g in self._fault_groups)

    def _plans(self, seed: int) -> list[OperationPlan]:
        if self._explicit_plans is not None:
            return list(self._explicit_plans)
        generator = WorkloadGenerator(
            seed=seed,
            n_readers=self._n_readers,
            read_fraction=self._read_fraction,
            spacing=self._spacing,
        )
        return generator.plan(self._operations)

    def build_system(self) -> RegisterSystem:
        """One configured :class:`RegisterSystem` — the low-level escape hatch."""
        behaviors, _ = self._materialize_faults()
        return RegisterSystem(
            self._spec.build(n_readers=self._n_readers, **self._protocol_kwargs),
            t=self._t,
            S=self._S,
            n_readers=self._n_readers,
            behaviors=behaviors,
            allow_overfault=self._allow_overfault,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, trials: int = 1, seed: int = 0, keep_history: bool = True) -> RunResult:
        """Run ``trials`` independent executions and collect the results.

        Trial ``i`` uses workload seed ``seed + i`` (explicit schedules are
        replayed verbatim each trial).  Check failures are *recorded*, not
        raised — inspect :attr:`RunResult.ok` / :meth:`RunResult.failures`.
        ``keep_history=False`` drops each trial's recorded history after
        the checks run (large sweeps don't need the live object graphs).
        """
        if trials < 1:
            raise ConfigurationError("need at least one trial")
        result: RunResult | None = None
        for index in range(trials):
            protocol = self._spec.build(n_readers=self._n_readers, **self._protocol_kwargs)
            behaviors, inventory = self._materialize_faults()
            system = RegisterSystem(
                protocol,
                t=self._t,
                S=self._S,
                n_readers=self._n_readers,
                behaviors=behaviors,
                allow_overfault=self._allow_overfault,
            )
            trial_seed = None if self._explicit_plans is not None else seed + index
            report = measure_latency(
                system, self._plans(seed + index), scenario=self._scenario_label()
            )
            history = system.history()
            verdicts = {name: CHECKS[name](history) for name in self._checks}
            if result is None:
                result = RunResult(
                    protocol=self._spec.name,
                    semantics=self._spec.semantics,
                    t=self._t,
                    S=system.ctx.S,
                    n_readers=self._n_readers,
                    scenario=self._scenario_label(),
                    faults=inventory,
                    checks=self._checks,
                )
            result.trials.append(
                TrialResult(
                    trial=index,
                    seed=trial_seed,
                    write_rounds=list(report.write_rounds),
                    read_rounds=list(report.read_rounds),
                    incomplete=report.incomplete,
                    checks=verdicts,
                    history=history if keep_history else None,
                )
            )
        assert result is not None
        return result


# --------------------------------------------------------------------- #
# Sweeps
# --------------------------------------------------------------------- #


def sweep(
    protocols: Sequence[str] | None = None,
    *,
    t: int = 1,
    n_readers: int = 2,
    scenarios: Sequence[str] | None = None,
    operations: int = 10,
    spacing: int = 150,
    trials: int = 1,
    seed: int = 17,
    checks: Sequence[str] = (),
) -> SweepResult:
    """Run every protocol under every scenario its guarantees cover.

    ``protocols`` defaults to the whole registry; ``scenarios`` defaults to
    each protocol's own advertised coverage (its ``scenarios`` metadata).
    The same seed is used for every grid cell so rows are comparable.
    """
    result = SweepResult()
    for name in protocols if protocols is not None else available_protocols():
        spec = get_spec(name)
        for scenario_name in scenarios if scenarios is not None else spec.scenarios:
            cluster = (
                Cluster(name, t=t, n_readers=n_readers)
                .with_scenario(scenario_name)
                .with_workload(spacing=spacing, operations=operations)
                .check(*checks)
            )
            result.runs.append(cluster.run(trials=trials, seed=seed, keep_history=False))
    return result
