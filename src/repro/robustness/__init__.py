"""Robustness frontiers: the strongest model a configuration certifies.

The paper fixes a consistency model (atomic) and asks which fault/timing
configurations a protocol survives.  This package asks the transposed
question: given one configuration — protocol, sizes, fault budget, timing
swept by the explorer — *which model on the consistency spectrum does it
still serve?*  :func:`robustness_frontier` walks the checker-registry
ladder (atomic → k-atomic(2..K) → regular → safe), re-running the bounded
schedule exploration of :mod:`repro.explore` under each checker, and
returns the strongest **certified** model together with a minimized,
replayable :class:`~repro.explore.witness.ScheduleWitness` refuting the
next-stronger one.

Entry points: :meth:`repro.api.Cluster.frontier`,
:func:`robustness_frontier`, and ``python -m repro frontier``.
"""

from repro.robustness.frontier import (
    FrontierResult,
    model_ladder,
    robustness_frontier,
)

__all__ = [
    "FrontierResult",
    "model_ladder",
    "robustness_frontier",
]
