"""The certified cross-model robustness frontier of one configuration.

A frontier run evaluates one fault configuration against the ladder of
registered consistency checkers, each evaluation being a full bounded
schedule exploration (holds *and*, by default, fault-timing choice
points).  The ladder is only partially ordered:

* atomicity is the top — it implies every other model on the ladder;
* the ``k-atomic(k)`` segment is monotone in ``k`` (a history within lag
  ``k`` is within lag ``k+1``), so the frontier **binary-searches** it for
  the smallest certified bound;
* regularity and safety sit below atomicity but are *not* implied by
  k-atomicity (a stale read that is k-fresh can still violate regularity),
  so they are scanned sequentially once the k-segment is exhausted.  Both
  are single-writer notions and are dropped from multi-writer ladders.

Every evaluation is an ordinary :meth:`repro.api.Cluster.explore` call, so
a certified rung means *certified over the explored bounded space* and a
refuted rung carries a minimized, replayable witness.  Over-budget fault
configurations (more faults than the protocol's threshold ``t``) are not
an error here: the frontier reports the weakest surviving model — graceful
degradation instead of a refusal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.api.cluster import Cluster
    from repro.explore.engine import ExploreResult
    from repro.explore.witness import ScheduleWitness


def model_ladder(max_k: int = 4, *, multi_writer: bool = False) -> tuple[str, ...]:
    """The checker ladder a frontier walks, strongest first.

    ``k-atomic(2..max_k)`` fills the segment between atomicity
    (= k-atomic(1)) and the unbounded-staleness models; regularity and
    safety are appended only for single-writer configurations.
    """
    if max_k < 1:
        raise ConfigurationError(f"max_k must be at least 1, got {max_k}")
    ladder = ["atomicity"]
    ladder.extend(f"k-atomic({k})" for k in range(2, max_k + 1))
    if not multi_writer:
        ladder.extend(("regularity", "safety"))
    return tuple(ladder)


def _status(result: "ExploreResult") -> str:
    if result.certified:
        return "certified"
    if result.witnesses:
        return "refuted"
    return "inconclusive"


@dataclass(slots=True)
class FrontierResult:
    """Outcome of one robustness-frontier walk.

    ``outcomes`` maps every *evaluated* rung to its status (rungs skipped
    by the binary search never ran and are absent); ``results`` keeps the
    full :class:`~repro.explore.engine.ExploreResult` per rung for
    drill-down (live objects, not serialized).  ``strongest`` is the
    strongest certified model, ``refuted`` the next-stronger rung, and
    ``witness`` the minimized schedule refuting it (``None`` when the
    refuting exploration was inconclusive, or when ``strongest`` is the
    top of the ladder).
    """

    protocol: str
    faults: str
    t: int
    S: int
    engine: str
    ladder: tuple[str, ...]
    bounds: dict[str, Any]
    outcomes: dict[str, str] = field(default_factory=dict)
    strongest: str | None = None
    refuted: str | None = None
    witness: "ScheduleWitness | None" = None
    #: Whether the fault configuration exceeds the protocol's threshold
    #: ``t`` — the frontier then *measures the degradation* instead of
    #: refusing to run.
    degraded: bool = False
    results: dict[str, "ExploreResult"] = field(default_factory=dict)

    @property
    def certified(self) -> bool:
        """Whether the strongest surviving model is actually certified
        (frontier exhausted, nothing truncated) rather than merely
        unrefuted."""
        return (
            self.strongest is not None
            and self.results[self.strongest].certified
        )

    @property
    def schedules(self) -> int:
        """Total schedules executed across every evaluated rung."""
        return sum(r.stats.explored for r in self.results.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "faults": self.faults,
            "t": self.t,
            "S": self.S,
            "engine": self.engine,
            "ladder": list(self.ladder),
            "bounds": dict(self.bounds),
            "outcomes": {model: self.outcomes[model] for model in self.ladder
                         if model in self.outcomes},
            "strongest": self.strongest,
            "certified": self.certified,
            "refuted": self.refuted,
            "witness": None if self.witness is None else self.witness.to_dict(),
            "degraded": self.degraded,
            "schedules": self.schedules,
        }

    def render(self) -> str:
        """Human-readable summary, ready to print."""
        lines = [
            f"frontier {self.protocol} — t={self.t}, S={self.S}, "
            f"engine={self.engine}, faults: {self.faults}"
            + (" [over budget]" if self.degraded else ""),
        ]
        for model in self.ladder:
            status = self.outcomes.get(model)
            if status is None:
                continue
            marker = {"certified": "✓", "refuted": "✗"}.get(status, "?")
            detail = ""
            result = self.results.get(model)
            if result is not None:
                detail = f" ({result.stats.explored} schedule(s)"
                if status == "refuted":
                    detail += f", {len(result.witnesses)} witness(es)"
                detail += ")"
            lines.append(f"  {marker} {model}: {status}{detail}")
        if self.strongest is None:
            lines.append(
                "  frontier: nothing on the ladder certified — the "
                "configuration survives no explored model"
            )
        else:
            verdict = "certified" if self.certified else "unrefuted"
            lines.append(f"  frontier: {self.strongest} ({verdict})")
        if self.refuted is not None:
            if self.witness is not None:
                decisions = ", ".join(
                    d.describe() for d in self.witness.decisions
                ) or "∅"
                lines.append(
                    f"  refutes {self.refuted} with {{{decisions}}} "
                    f"(trace {self.witness.trace_hash})"
                )
            else:
                lines.append(f"  {self.refuted} unrefuted within bounds "
                             "(no witness — raise the bounds to separate)")
        lines.append(f"  {self.schedules} schedule(s) executed across "
                     f"{len(self.results)} rung(s)")
        return "\n".join(lines)


def _as_cluster(
    protocol: "Cluster | str",
    faults: Mapping[str, int] | Sequence[tuple] | None,
    *,
    t: int,
    S: int | None,
    n_readers: int,
    **cluster_kwargs: Any,
) -> "Cluster":
    from repro.api.cluster import Cluster

    if isinstance(protocol, Cluster):
        if faults is not None:
            raise ConfigurationError(
                "pass the fault budget either on the cluster "
                "(with_faults) or as the faults= argument, not both"
            )
        return protocol
    # Over-budget configurations are the point of a frontier, so the
    # ad-hoc path always builds with allow_overfault=True; degradation is
    # *measured* (and flagged) rather than rejected.
    cluster = Cluster(
        protocol, t=t, S=S, n_readers=n_readers, allow_overfault=True,
        **cluster_kwargs,
    )
    entries: Sequence[tuple] = (
        tuple(faults.items()) if isinstance(faults, Mapping) else tuple(faults or ())
    )
    for entry in entries:
        name, count, *rest = entry
        kwargs = dict(rest[0]) if rest else {}
        cluster = cluster.with_faults(name, count=count, **kwargs)
    return cluster


def robustness_frontier(
    protocol: "Cluster | str",
    faults: Mapping[str, int] | Sequence[tuple] | None = None,
    *,
    t: int = 1,
    S: int | None = None,
    n_readers: int = 2,
    max_k: int = 4,
    max_holds: int = 2,
    max_schedules: int = 2_000,
    max_events: int = 200_000,
    granularity: str = "operation",
    strategy: str = "bfs",
    seed: int = 0,
    fault_timing: bool = True,
    symmetry: bool = False,
    parallel: bool = False,
    max_workers: int | None = None,
    **cluster_kwargs: Any,
) -> FrontierResult:
    """Certify the strongest model ``protocol`` serves under ``faults``.

    ``protocol`` is either a fully configured
    :class:`~repro.api.Cluster` (its fault groups, workload and engine are
    probed as-is) or a protocol name; with a name, ``faults`` gives the
    budget as ``{"stale-echo": 1}`` / ``[("timed", 1, {"fault":
    "stale-echo"})]`` pairs and the cluster is built with
    ``allow_overfault=True`` so over-budget configurations degrade instead
    of erroring.

    The walk: evaluate atomicity; if refuted, binary-search the monotone
    ``k-atomic(2..max_k)`` segment for the smallest certified bound; if
    none certifies, scan regularity then safety (single-writer only).
    Each rung is one :meth:`Cluster.explore` over the same workload
    (``seed``) and bounds, with fault-timing choice points swept by
    default, so rungs are comparable and every refutation is a minimized
    replayable witness.
    """
    cluster = _as_cluster(
        protocol, faults, t=t, S=S, n_readers=n_readers, **cluster_kwargs
    )
    _, inventory = cluster._materialize_faults()
    ladder = model_ladder(max_k, multi_writer=cluster._writer_count() > 1)
    bounds = {
        "max_holds": max_holds,
        "max_schedules": max_schedules,
        "max_events": max_events,
        "max_k": max_k,
        "granularity": granularity,
        "strategy": strategy,
        "seed": seed,
        "fault_timing": fault_timing,
        "symmetry": symmetry,
    }

    results: dict[str, "ExploreResult"] = {}

    def evaluate(model: str) -> "ExploreResult":
        if model not in results:
            results[model] = cluster.with_checks(model).explore(
                max_holds=max_holds,
                max_schedules=max_schedules,
                max_events=max_events,
                granularity=granularity,
                strategy=strategy,
                seed=seed,
                fault_timing=fault_timing,
                symmetry=symmetry,
                parallel=parallel,
                max_workers=max_workers,
            )
        return results[model]

    atomic = evaluate("atomicity")
    strongest: str | None = None
    refuted: str | None = None
    if atomic.certified:
        strongest = "atomicity"
    else:
        # Binary-search the monotone k-segment for the smallest certified
        # bound (certified at k ⇒ certified at every k' > k; inconclusive
        # rungs conservatively count as uncertified).
        lo, hi = 2, max_k
        found: int | None = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if evaluate(f"k-atomic({mid})").certified:
                found = mid
                hi = mid - 1
            else:
                lo = mid + 1
        if found is not None:
            strongest = f"k-atomic({found})"
            refuted = "atomicity" if found == 2 else f"k-atomic({found - 1})"
            evaluate(refuted)  # harvest the separating witness
        else:
            # The k-segment is exhausted; regularity/safety are not
            # implied by any k-atomic bound, so they are scanned in
            # ladder order (single-writer ladders only).
            previous = f"k-atomic({max_k})" if max_k >= 2 else "atomicity"
            evaluate(previous)
            tail = ("regularity", "safety") if "regularity" in ladder else ()
            for model in tail:
                if evaluate(model).certified:
                    strongest = model
                    break
                previous = model
            refuted = previous

    witness = None
    if refuted is not None and results[refuted].witnesses:
        witness = results[refuted].witnesses[0]

    result = FrontierResult(
        protocol=cluster.spec.name,
        faults=inventory.describe(),
        t=cluster._t,
        S=cluster._S if cluster._S is not None
          else cluster.spec.min_size(cluster._t),
        engine=cluster._engine,
        ladder=ladder,
        bounds=bounds,
        outcomes={model: _status(res) for model, res in results.items()},
        strongest=strongest,
        refuted=refuted,
        witness=witness,
        degraded=inventory.effective > cluster._t,
        results=results,
    )
    return result
