"""Stable storage: append-only journals with an explicit sync watermark.

The durability seam models what real stores guarantee, no more: a record
handed to :meth:`StableStorage.put` is *acknowledged*; only after
:meth:`StableStorage.sync` is it *durable*.  Crash-recover faults exploit
the gap — :meth:`StableStorage.crash` drops the acknowledged-but-unsynced
suffix, :meth:`StableStorage.tear_last` damages the final record mid-entry,
and :meth:`StableStorage.recover` replays the surviving log, detecting and
discarding a torn tail via per-record checksums.

Two implementations share the journal logic:

* :class:`MemJournal` — a deterministic in-memory journal; the default for
  tests and the schedule explorer (no filesystem in the state space).
* :class:`DirStorage` — one append-only log file per object under a temp
  dir; the on-disk frame is ``>II`` (payload length, CRC-32) followed by
  ``key \\0 value`` bytes, and recovery genuinely re-parses the file.

Both account retained space with the same frame arithmetic, so the space
meter reports comparable byte counts whichever backend a run uses.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError

_HEADER = struct.Struct(">II")
_HEADER_SIZE = _HEADER.size


def _frame(key: str, value: bytes) -> bytes:
    blob = key.encode("utf-8") + b"\0" + value
    return _HEADER.pack(len(blob), zlib.crc32(blob)) + blob


def _frame_size(key: str, value: bytes) -> int:
    return _HEADER_SIZE + len(key.encode("utf-8")) + 1 + len(value)


def _parse_log(data: bytes) -> tuple[list[tuple[str, bytes]], int, bool]:
    """Replay a raw log: (valid records, valid byte length, torn tail seen).

    Parsing stops at the first damaged record — a short header, a payload
    cut before its declared length, or a checksum mismatch — which is
    exactly what a torn write leaves behind.
    """
    records: list[tuple[str, bytes]] = []
    pos = 0
    size = len(data)
    while pos < size:
        if pos + _HEADER_SIZE > size:
            return records, pos, True
        length, crc = _HEADER.unpack_from(data, pos)
        end = pos + _HEADER_SIZE + length
        if end > size:
            return records, pos, True
        blob = data[pos + _HEADER_SIZE : end]
        if zlib.crc32(blob) != crc:
            return records, pos, True
        key, _, value = blob.partition(b"\0")
        records.append((key.decode("utf-8"), value))
        pos = end
    return records, pos, False


@dataclass(frozen=True, slots=True)
class StorageStats:
    """Space retained by one object's journal, in frame bytes."""

    retained_bytes: int
    records: int
    synced_records: int


@dataclass(frozen=True, slots=True)
class RecoveredImage:
    """What :meth:`StableStorage.recover` salvaged from the journal.

    ``state`` maps each key to its last durable value; ``discarded`` counts
    records lost to the unsynced suffix and/or a torn tail.
    """

    state: dict[str, bytes]
    replayed: int
    discarded: int
    torn_detected: bool


class StableStorage:
    """Append-only journal with write-ahead (`put` then `sync`) semantics.

    Subclasses supply the physical medium; this base owns the record list,
    the sync watermark, the ``lag`` knob (``sync`` leaves the last ``lag``
    records unsynced — the fsync-lag fault model), and the ``frozen`` flag
    a crashed machine sets so nothing persists while it is dark.
    """

    def __init__(self) -> None:
        self._records: list[tuple[str, bytes]] = []
        self.synced: int = 0
        self.lag: int = 0
        self.frozen: bool = False
        self._torn_index: int | None = None
        # Observability: armed (clock set) only for observed runs; each
        # watermark advance then logs (time, records, frame bytes) made
        # durable, from which sync spans are derived post-run.
        self.clock = None
        self.sync_log: list[tuple[int, int, int]] = []

    # -- write path ----------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        """Append one record (acknowledged, not yet durable)."""
        if self.frozen:
            raise StorageError("cannot append to a frozen (crashed) store")
        self._records.append((key, value))
        self._append_medium(key, value)

    def sync(self) -> None:
        """Advance the durability watermark, honouring the ``lag`` knob."""
        before = self.synced
        self.synced = max(before, len(self._records) - self.lag)
        self._sync_medium()
        if self.clock is not None and self.synced > before:
            newly = self._records[before : self.synced]
            self.sync_log.append((
                self.clock(),
                len(newly),
                sum(_frame_size(key, value) for key, value in newly),
            ))

    # -- read path -----------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Latest acknowledged value for ``key`` (the live machine's view)."""
        for stored, value in reversed(self._records):
            if stored == key:
                return value
        return None

    def keys(self) -> tuple[str, ...]:
        """Keys with at least one record, in first-append order."""
        seen: dict[str, None] = {}
        for key, _ in self._records:
            seen.setdefault(key)
        return tuple(seen)

    # -- crash / recovery ----------------------------------------------

    def crash(self) -> int:
        """Lose the acknowledged-but-unsynced suffix; return records lost."""
        lost = len(self._records) - self.synced
        if lost > 0:
            del self._records[self.synced :]
            if self._torn_index is not None and self._torn_index >= len(self._records):
                self._torn_index = None
        self._truncate_medium(self.synced)
        return lost

    def tear_last(self) -> bool:
        """Damage the last physical record mid-entry (torn write)."""
        if not self._records:
            return False
        self._torn_index = len(self._records) - 1
        self._tear_medium()
        return True

    def recover(self) -> RecoveredImage:
        """Replay the durable log and repair it in place.

        Only the synced prefix survives a crash; within it, a torn final
        record is detected (checksum/length validation on the physical
        medium) and discarded.  After recovery the journal holds exactly
        the replayed records, all durable.
        """
        total = len(self._records)
        limit = min(self.synced, total)
        torn = self._torn_index is not None and self._torn_index < limit
        if torn:
            limit = self._torn_index
        replayed = self._recover_medium(limit)
        state: dict[str, bytes] = {}
        for key, value in replayed:
            state[key] = value
        self._records = replayed
        self.synced = len(replayed)
        self._torn_index = None
        return RecoveredImage(
            state=state,
            replayed=len(replayed),
            discarded=total - len(replayed),
            torn_detected=torn,
        )

    # -- metering / GC -------------------------------------------------

    def stats(self) -> StorageStats:
        """Frame bytes and record counts currently retained."""
        return StorageStats(
            retained_bytes=sum(_frame_size(k, v) for k, v in self._records),
            records=len(self._records),
            synced_records=self.synced,
        )

    def records(self) -> tuple[tuple[str, bytes], ...]:
        """The retained journal, oldest first (for the space meter)."""
        return tuple(self._records)

    def gc(self) -> int:
        """Compact to the latest record per key; return frame bytes freed.

        Keys keep their first-append order so compaction is deterministic.
        The compacted journal is durable by construction (it only contains
        values that were already retained).
        """
        before = sum(_frame_size(k, v) for k, v in self._records)
        latest: dict[str, bytes] = {}
        for key, value in self._records:
            latest[key] = value
        compacted = list(latest.items())
        self._records = compacted
        self.synced = len(compacted)
        self._torn_index = None
        self._rewrite_medium(compacted)
        return before - sum(_frame_size(k, v) for k, v in compacted)

    # -- medium hooks (in-memory store: no-ops) ------------------------

    def _append_medium(self, key: str, value: bytes) -> None:
        pass

    def _sync_medium(self) -> None:
        pass

    def _truncate_medium(self, keep_records: int) -> None:
        pass

    def _tear_medium(self) -> None:
        pass

    def _rewrite_medium(self, records: list[tuple[str, bytes]]) -> None:
        pass

    def _recover_medium(self, limit: int) -> list[tuple[str, bytes]]:
        """Return the records that survive recovery (first ``limit`` ones)."""
        return self._records[:limit]

    def close(self) -> None:
        pass


class MemJournal(StableStorage):
    """Deterministic in-memory journal — the ``durability="mem"`` seam."""


class DirStorage(StableStorage):
    """One append-only log file per object — the ``durability="dir"`` seam.

    The constructor replays any existing log at ``path`` (reopen-after-
    restart), silently dropping a torn tail; everything replayed from disk
    is durable by definition.  ``crash``/``tear_last`` damage the physical
    file, and :meth:`StableStorage.recover` re-parses it, so recovery
    exercises the real frame validation rather than the in-memory mirror.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self._offsets: list[int] = []  # cumulative end offset per record
        if self.path.exists():
            records, valid_end, _torn = _parse_log(self.path.read_bytes())
            if valid_end != self.path.stat().st_size:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_end)
            self._records = records
            self.synced = len(records)
            pos = 0
            for key, value in records:
                pos += _frame_size(key, value)
                self._offsets.append(pos)
        self._fh = open(self.path, "ab")

    def _append_medium(self, key: str, value: bytes) -> None:
        self._fh.write(_frame(key, value))
        end = (self._offsets[-1] if self._offsets else 0) + _frame_size(key, value)
        self._offsets.append(end)

    def _sync_medium(self) -> None:
        self._fh.flush()

    def _truncate_medium(self, keep_records: int) -> None:
        self._fh.flush()
        keep_bytes = self._offsets[keep_records - 1] if keep_records else 0
        os.truncate(self.path, keep_bytes)
        del self._offsets[keep_records:]

    def _tear_medium(self) -> None:
        self._fh.flush()
        start = self._offsets[-2] if len(self._offsets) > 1 else 0
        end = self._offsets[-1]
        # Cut inside the record: keep at most half its frame, so either the
        # header or the payload is incomplete and replay must reject it.
        os.truncate(self.path, start + (end - start) // 2)

    def _rewrite_medium(self, records: list[tuple[str, bytes]]) -> None:
        self._fh.close()
        with open(self.path, "wb") as fh:
            for key, value in records:
                fh.write(_frame(key, value))
        self._offsets = []
        pos = 0
        for key, value in records:
            pos += _frame_size(key, value)
            self._offsets.append(pos)
        self._fh = open(self.path, "ab")

    def _recover_medium(self, limit: int) -> list[tuple[str, bytes]]:
        self._fh.flush()
        data = self.path.read_bytes()
        records, _valid_end, _torn = _parse_log(data)
        survivors = records[:limit]
        self._rewrite_medium(survivors)
        return survivors

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass
