"""Deterministic byte codec for durable protocol state.

The durability seam persists protocol state *values* (timestamps, tagged
values, voucher maps) as bytes.  The encoding must be a pure function of
the value — byte-identical across engines, across serial and parallel
trial execution, and across interpreter runs — because the space meter
reports retained *bytes* and the equivalence contract pins those numbers.

The format is type-tagged JSON.  Scalars (``str``/``int``/``float``/
``bool``/``None``) pass through; every container and model type is a
single-key object whose key names the type:

========  =======================================================
tag       payload
========  =======================================================
``"m"``   dict → list of ``[key, value]`` pairs in insertion order
``"l"``   list
``"u"``   tuple
``"s"``   set → elements sorted by their encoded form
``"ts"``  :class:`~repro.types.Timestamp` → ``[seq, writer]``
``"tv"``  :class:`~repro.types.TaggedValue` → ``[ts, value]``
``"pid"`` :class:`~repro.types.ProcessId` → ``[role_value, index]``
========  =======================================================

Dict insertion order is preserved (not sorted): handlers build their
state dicts deterministically, and preserving order means a decoded
state iterates exactly like the original — no protocol can tell it went
through a crash.  Set elements, which genuinely have no order, are
sorted by their serialized form.
"""

from __future__ import annotations

import json
from typing import Any

from repro.types import ProcessId, TaggedValue, Timestamp


def _pack(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {"m": [[_pack(key), _pack(item)] for key, item in value.items()]}
    if isinstance(value, list):
        return {"l": [_pack(item) for item in value]}
    if isinstance(value, tuple):
        return {"u": [_pack(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        packed = [_pack(item) for item in value]
        packed.sort(key=lambda item: json.dumps(item, ensure_ascii=False))
        return {"s": packed}
    if isinstance(value, Timestamp):
        return {"ts": [value.seq, value.writer]}
    if isinstance(value, TaggedValue):
        return {"tv": [_pack(value.ts), _pack(value.value)]}
    if isinstance(value, ProcessId):
        return {"pid": [value.role_value, value.index]}
    raise TypeError(f"cannot encode {type(value).__name__} for stable storage")


def _unpack(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        (tag, payload), = value.items()
        if tag == "m":
            return {_unpack(key): _unpack(item) for key, item in payload}
        if tag == "l":
            return [_unpack(item) for item in payload]
        if tag == "u":
            return tuple(_unpack(item) for item in payload)
        if tag == "s":
            return {_unpack(item) for item in payload}
        if tag == "ts":
            return Timestamp(payload[0], payload[1])
        if tag == "tv":
            return TaggedValue(_unpack(payload[0]), _unpack(payload[1]))
        if tag == "pid":
            return ProcessId(payload[0], payload[1])
        raise ValueError(f"unknown storage codec tag {tag!r}")
    raise ValueError(f"cannot decode {type(value).__name__} from stable storage")


def pack_value(value: Any) -> Any:
    """Type-tagged JSON-able form of one value (the codec's wire shape).

    Public seam for consumers that want the codec's deterministic,
    round-trippable rendering inside a larger JSON document rather than
    standalone bytes — e.g. ``--trace`` dump payloads.  Raises
    :class:`TypeError` on unencodable types, like :func:`encode_state`.
    """
    return _pack(value)


def unpack_value(value: Any) -> Any:
    """Inverse of :func:`pack_value`."""
    return _unpack(value)


def encode_state(value: Any) -> bytes:
    """Serialize one protocol state value to deterministic bytes."""
    return json.dumps(
        _pack(value), ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")


def decode_state(data: bytes) -> Any:
    """Inverse of :func:`encode_state`."""
    return _unpack(json.loads(data.decode("utf-8")))


def count_timestamps(value: Any) -> set[Timestamp]:
    """Collect the distinct :class:`Timestamp` leaves inside ``value``.

    The space meter reports *timestamps retained* per object — the unit the
    space-bounds literature counts — so this walks a decoded state and
    gathers every timestamp, including those inside tagged values.
    """
    found: set[Timestamp] = set()
    _walk_timestamps(value, found)
    return found


def _walk_timestamps(value: Any, found: set[Timestamp]) -> None:
    if isinstance(value, Timestamp):
        found.add(value)
    elif isinstance(value, TaggedValue):
        found.add(value.ts)
        _walk_timestamps(value.value, found)
    elif isinstance(value, dict):
        for key, item in value.items():
            _walk_timestamps(key, found)
            _walk_timestamps(item, found)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            _walk_timestamps(item, found)
