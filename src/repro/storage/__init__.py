"""``repro.storage`` — durable object state behind the handler surface.

The paper's base objects are crash-*stop*; this subsystem adds the
orthogonal **durability axis** that makes them crash-*recover*:

* :mod:`repro.storage.stable` — the :class:`StableStorage` journal
  contract (``put``/``get``/``keys``/``sync`` with write-ahead semantics,
  plus ``crash``/``tear_last``/``recover`` for the fault family) and its
  two built-ins, :class:`MemJournal` and :class:`DirStorage`.
* :mod:`repro.storage.codec` — deterministic bytes for protocol state
  values (timestamps, tagged values, voucher maps).
* :mod:`repro.storage.durable` — :class:`DurableObjectHandler`, the
  write-ahead wrapper every quorum protocol gets for free, and
  :class:`StorageRuntime`, the per-system store factory selected by the
  ``durability`` axis (``"none" | "mem" | "dir"``).
* :mod:`repro.storage.meter` — :class:`SpaceMeter`, per-object retained
  bytes/records/timestamps with GC of superseded values.

The crash-recover *fault behaviours* that exploit this seam live in
:mod:`repro.faults.recovery`; the axis is threaded through
:class:`~repro.api.cluster.Cluster`, the backend registry, both
simulation engines, and the schedule explorer.
"""

from repro.storage.codec import count_timestamps, decode_state, encode_state
from repro.storage.durable import (
    DURABILITIES,
    DurableObjectHandler,
    StorageRuntime,
    resolve_durability,
)
from repro.storage.meter import SpaceMeter
from repro.storage.stable import (
    DirStorage,
    MemJournal,
    RecoveredImage,
    StableStorage,
    StorageStats,
)

__all__ = [
    "DURABILITIES",
    "DirStorage",
    "DurableObjectHandler",
    "MemJournal",
    "RecoveredImage",
    "SpaceMeter",
    "StableStorage",
    "StorageRuntime",
    "StorageStats",
    "count_timestamps",
    "decode_state",
    "encode_state",
    "resolve_durability",
]
