"""The durability seam: wrap any object handler with write-ahead persistence.

:class:`DurableObjectHandler` decorates an existing
:class:`~repro.sim.process.ObjectHandler` — ABD, fast-regular, the
multiplexed sharded handler, all of them, through the one handler surface —
so that every state key the handler may have touched is persisted through
a :class:`~repro.storage.stable.StableStorage` *before* the reply payload
is returned (write-ahead: no object ever acknowledges an update it has not
handed to stable storage).  ``handle_batch`` is deliberately not
overridden: the inherited sequential default funnels every wave through
:meth:`handle`, so the batched engine persists record-for-record exactly
like the event engine.

:class:`StorageRuntime` is the per-system factory: one store per object,
plus the temporary directory backing ``durability="dir"`` (cleaned up by
the :class:`~tempfile.TemporaryDirectory` finalizer).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.sim.network import Message
from repro.sim.process import ObjectHandler
from repro.storage.codec import decode_state, encode_state
from repro.storage.stable import DirStorage, MemJournal, RecoveredImage, StableStorage
from repro.types import ProcessId

#: The durability axis, orthogonal to backend and engine.
DURABILITIES: tuple[str, ...] = ("none", "mem", "dir")


def resolve_durability(name: str) -> str:
    """Validate a durability name (same contract as ``resolve_engine``)."""
    if name not in DURABILITIES:
        known = ", ".join(DURABILITIES)
        raise ConfigurationError(f"unknown durability {name!r}; known: {known}")
    return name


class DurableObjectHandler(ObjectHandler):
    """Write-ahead persistence around an inner protocol handler."""

    def __init__(self, inner: ObjectHandler, store: StableStorage) -> None:
        self.inner = inner
        self.store = store

    def initial_state(self) -> dict[str, Any]:
        return self.inner.initial_state()

    def handle(self, state: dict[str, Any], message: Message) -> Mapping[str, Any]:
        reply = self.inner.handle(state, message)
        store = self.store
        if not store.frozen:
            dirty = False
            for key, value in state.items():
                encoded = encode_state(value)
                if store.get(key) != encoded:
                    store.put(key, encoded)
                    dirty = True
            if dirty:
                store.sync()
        return reply

    def recovered_state(self) -> tuple[dict[str, Any], RecoveredImage]:
        """Replay the durable journal into a full protocol state.

        Keys absent from the journal (nothing durable survived for them)
        fall back to the handler's initial state — a machine restarting
        from an empty disk is indistinguishable from a fresh one.
        """
        image = self.store.recover()
        state = self.inner.initial_state()
        for key, data in image.state.items():
            state[key] = decode_state(data)
        return state, image


class StorageRuntime:
    """Per-system durability context: one stable store per object."""

    def __init__(self, durability: str) -> None:
        if durability not in ("mem", "dir"):
            raise ConfigurationError(
                f"StorageRuntime requires durability 'mem' or 'dir', got {durability!r}"
            )
        self.durability = durability
        self.stores: dict[str, StableStorage] = {}
        self._tmp: tempfile.TemporaryDirectory[str] | None = None
        if durability == "dir":
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-storage-")

    @classmethod
    def create(cls, durability: str) -> "StorageRuntime | None":
        """Build a runtime for the axis value; ``None`` for ``"none"``."""
        if resolve_durability(durability) == "none":
            return None
        return cls(durability)

    def wrap(self, pid: ProcessId, handler: ObjectHandler) -> DurableObjectHandler:
        """Give ``handler`` a fresh store keyed by the object's identity."""
        name = str(pid)
        if name in self.stores:
            raise ConfigurationError(f"object {name} already has a stable store")
        if self._tmp is not None:
            store: StableStorage = DirStorage(Path(self._tmp.name) / f"{name}.log")
        else:
            store = MemJournal()
        self.stores[name] = store
        return DurableObjectHandler(handler, store)

    def close(self) -> None:
        for store in self.stores.values():
            store.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
