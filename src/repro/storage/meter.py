"""Retained-space meter for durable runs.

Once object state is durable, *how much* must be retained becomes a
measured quantity (cf. the space-bounds literature in PAPERS.md).  The
meter walks every object's journal at the end of a trial and reports, per
object, the frame bytes, record count, and distinct timestamps retained —
then garbage-collects superseded records (older values for a key that has
a newer durable value) and reports the same figures post-GC.  The report
is embedded in ``TrialResult.to_dict()`` / surfaced via
``RunResult.to_dict()``, and is byte-identical across engines and across
serial/parallel execution because journals are a pure function of the
delivered message sequence.
"""

from __future__ import annotations

from typing import Any

from repro.storage.codec import count_timestamps, decode_state
from repro.storage.durable import StorageRuntime
from repro.storage.stable import StableStorage
from repro.types import Timestamp


def _distinct_timestamps(store: StableStorage) -> int:
    found: set[Timestamp] = set()
    for _key, value in store.records():
        found |= count_timestamps(decode_state(value))
    return len(found)


class SpaceMeter:
    """Measure (and then compact) the journals of one durable system."""

    def __init__(self, runtime: StorageRuntime) -> None:
        self.runtime = runtime

    def measure(self) -> dict[str, Any]:
        """Per-object retention before and after GC, plus totals.

        GC keeps only the newest record per key, so the delta quantifies
        how much of the journal was superseded history.  Mutates the
        stores (compaction); call once, at the end of a trial.
        """
        objects: dict[str, Any] = {}
        totals = {"bytes": 0, "records": 0, "timestamps": 0}
        gc_totals = {"bytes": 0, "records": 0, "timestamps": 0}
        for name, store in self.runtime.stores.items():
            before = store.stats()
            before_ts = _distinct_timestamps(store)
            store.gc()
            after = store.stats()
            after_ts = _distinct_timestamps(store)
            objects[name] = {
                "bytes": before.retained_bytes,
                "records": before.records,
                "timestamps": before_ts,
                "gc_bytes": after.retained_bytes,
                "gc_records": after.records,
                "gc_timestamps": after_ts,
            }
            totals["bytes"] += before.retained_bytes
            totals["records"] += before.records
            totals["timestamps"] += before_ts
            gc_totals["bytes"] += after.retained_bytes
            gc_totals["records"] += after.records
            gc_totals["timestamps"] += after_ts
        return {
            "durability": self.runtime.durability,
            "objects": objects,
            "retained_bytes": totals["bytes"],
            "retained_records": totals["records"],
            "retained_timestamps": totals["timestamps"],
            "gc_retained_bytes": gc_totals["bytes"],
            "gc_retained_records": gc_totals["records"],
            "gc_retained_timestamps": gc_totals["timestamps"],
            "gc_freed_bytes": totals["bytes"] - gc_totals["bytes"],
        }
