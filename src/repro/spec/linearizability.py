"""General linearizability checking for read/write registers (Wing–Gong).

The SWMR atomicity checker exploits the single-writer structure; this module
implements the general definition instead: a history is linearizable iff
there is a total order of its operations, consistent with precedence, in
which every read returns the value of the latest preceding write (⊥ if
none).  Exponential in the worst case — meant for the small histories that
tests and the MWMR transformation produce — with memoization on explored
frontiers, which keeps realistic test histories fast.

The search runs on **integer bitmask frontiers**: the set of already-placed
operations is one ``int``, each operation's predecessors are a precomputed
mask, and "all predecessors placed" is ``pred_mask & ~done == 0``.  Memo
keys are ``(done, current)`` pairs of an int and a value — hashing an int is
an order of magnitude cheaper than hashing the ``frozenset`` frontiers the
first implementation used.  :func:`is_linearizable` and
:func:`linearization_witness` share one search core; the witness is
accumulated with append/pop backtracking instead of quadratic list copies.

Incomplete operations are handled per the standard definition: an incomplete
write may be taken to have happened (placed in the order) or not (dropped);
an incomplete read can always be dropped.

:func:`is_linearizable_reference` preserves the original frozenset-frontier
implementation verbatim as a differential-testing oracle: the property tests
and ``benchmarks/bench_perf.py`` pin the bitmask core to it on randomized
histories.
"""

from __future__ import annotations

from typing import Any, FrozenSet

from repro.spec.history import History, OperationRecord
from repro.types import BOTTOM


def _candidate_operations(history: History) -> list[OperationRecord]:
    """The operations the search places: complete ops plus pending writes.

    Pending reads can always be dropped from a linearization, so they never
    enter the search at all.
    """
    complete = [r for r in history.records if r.complete]
    pending_writes = [r for r in history.records if not r.complete and r.kind == "write"]
    return complete + pending_writes


def _search(operations: list[OperationRecord]) -> list[int] | None:
    """Shared search core: a linearization as operation indices, or None.

    Dropped pending writes ("never took effect") are omitted from the
    returned order, matching the definition — a dropped write appears in no
    linearization.
    """
    total = len(operations)
    full = (1 << total) - 1

    pred_masks = [0] * total
    for j, b in enumerate(operations):
        mask = 0
        for i, a in enumerate(operations):
            if i != j and a.precedes(b):
                mask |= 1 << i
        pred_masks[j] = mask

    # One flat tuple per operation so the search touches a single list:
    # (index, bit, predecessor mask, is-write, value).
    items = [
        (i, 1 << i, pred_masks[i], record.kind == "write", record.value)
        for i, record in enumerate(operations)
    ]
    # Pending writes may be dropped ("never took effect") instead of placed.
    optional = [entry for entry, record in zip(items, operations) if not record.complete]
    seen: set[tuple[int, Any]] = set()
    order: list[int] = []

    def explore(done: int, current: Any) -> bool:
        if done == full:
            return True
        key = (done, current)
        if key in seen:
            return False
        seen.add(key)
        not_done = ~done
        for i, bit, preds, is_write, value in items:
            if done & bit or preds & not_done:
                continue
            if is_write:
                order.append(i)
                if explore(done | bit, value):
                    return True
                order.pop()
            elif value == current:
                order.append(i)
                if explore(done | bit, current):
                    return True
                order.pop()
        # An incomplete write whose predecessors are all done may also be
        # dropped: model "never took effect" by marking it done without
        # changing the current value (and without a place in the order).
        for _i, bit, preds, _is_write, _value in optional:
            if done & bit or preds & not_done:
                continue
            if explore(done | bit, current):
                return True
        return False

    if explore(0, BOTTOM):
        return order
    return None


def is_linearizable(history: History) -> bool:
    """Whether ``history`` is linearizable as a read/write register."""
    return _search(_candidate_operations(history)) is not None


def linearization_witness(history: History) -> list[OperationRecord] | None:
    """A concrete linearization order, or None when none exists.

    Same search as :func:`is_linearizable` (literally the same core); used
    by tests and by certificate rendering.
    """
    operations = _candidate_operations(history)
    indices = _search(operations)
    if indices is None:
        return None
    return [operations[i] for i in indices]


def is_linearizable_reference(history: History) -> bool:
    """The original frozenset-frontier checker, kept as a test oracle.

    Algorithmically identical to :func:`is_linearizable` but memoizes on
    ``frozenset`` frontiers; property tests cross-validate the bitmask core
    against it on randomized histories, and the performance benchmark
    measures the speedup while asserting verdict equality.
    """
    operations = _candidate_operations(history)
    order_index = {record.op_id: i for i, record in enumerate(operations)}

    precedes: list[set[int]] = [set() for _ in operations]
    for i, a in enumerate(operations):
        for j, b in enumerate(operations):
            if i != j and a.precedes(b):
                precedes[j].add(i)

    optional = {order_index[r.op_id] for r in operations if not r.complete}
    total = len(operations)
    seen: set[tuple[FrozenSet[int], Any]] = set()

    def explore(done: frozenset[int], current: Any) -> bool:
        if len(done) == total:
            return True
        key = (done, current)
        if key in seen:
            return False
        seen.add(key)
        for i, record in enumerate(operations):
            if i in done or not precedes[i] <= done:
                continue
            if record.kind == "write":
                if explore(done | {i}, record.value):
                    return True
            else:
                if record.value == current and explore(done | {i}, current):
                    return True
        for i in optional:
            if i in done or not precedes[i] <= done:
                continue
            if explore(done | {i}, current):
                return True
        return False

    return explore(frozenset(), BOTTOM)
