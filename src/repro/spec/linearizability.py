"""General linearizability checking for read/write registers (Wing–Gong).

The SWMR atomicity checker exploits the single-writer structure; this module
implements the general definition instead: a history is linearizable iff
there is a total order of its operations, consistent with precedence, in
which every read returns the value of the latest preceding write (⊥ if
none).  Exponential in the worst case — meant for the small histories that
tests and the MWMR transformation produce — with memoization on explored
frontiers, which keeps realistic test histories fast.

Incomplete operations are handled per the standard definition: an incomplete
write may be taken to have happened (placed in the order) or not (dropped);
an incomplete read can always be dropped.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable

from repro.spec.history import History, OperationRecord
from repro.types import BOTTOM


def is_linearizable(history: History) -> bool:
    """Whether ``history`` is linearizable as a read/write register."""
    complete = [r for r in history.records if r.complete]
    pending_writes = [r for r in history.records if not r.complete and r.kind == "write"]
    operations = complete + pending_writes  # pending reads can always be dropped
    order_index = {record.op_id: i for i, record in enumerate(operations)}

    precedes: list[set[int]] = [set() for _ in operations]
    for i, a in enumerate(operations):
        for j, b in enumerate(operations):
            if i != j and a.precedes(b):
                precedes[j].add(i)

    optional = {order_index[r.op_id] for r in pending_writes}
    total = len(operations)
    seen: set[tuple[FrozenSet[int], Any]] = set()

    def explore(done: frozenset[int], current: Any) -> bool:
        if len(done) == total:
            return True
        key = (done, current)
        if key in seen:
            return False
        seen.add(key)
        for i, record in enumerate(operations):
            if i in done or not precedes[i] <= done:
                continue
            if record.kind == "write":
                if explore(done | {i}, record.value):
                    return True
            else:
                if record.value == current and explore(done | {i}, current):
                    return True
        # An incomplete write whose predecessors are all done may also be
        # dropped: model "never took effect" by marking it done without
        # changing the current value.
        for i in optional:
            if i in done or not precedes[i] <= done:
                continue
            # Dropping is only sound if nothing later observes it, which the
            # search enforces naturally since the value is not installed.
            if explore(done | {i}, current):
                return True
        return False

    return explore(frozenset(), BOTTOM)


def linearization_witness(history: History) -> list[OperationRecord] | None:
    """A concrete linearization order, or None when none exists.

    Same search as :func:`is_linearizable` but materializes the order; used
    by tests and by certificate rendering.
    """
    complete = [r for r in history.records if r.complete]
    pending_writes = [r for r in history.records if not r.complete and r.kind == "write"]
    operations = complete + pending_writes
    precedes: list[set[int]] = [set() for _ in operations]
    for i, a in enumerate(operations):
        for j, b in enumerate(operations):
            if i != j and a.precedes(b):
                precedes[j].add(i)
    optional = {i for i, r in enumerate(operations) if not r.complete}
    total = len(operations)
    seen: set[tuple[FrozenSet[int], Any]] = set()

    def explore(done: frozenset[int], current: Any, acc: list[int]) -> list[int] | None:
        if len(done) == total:
            return acc
        key = (done, current)
        if key in seen:
            return None
        seen.add(key)
        for i, record in enumerate(operations):
            if i in done or not precedes[i] <= done:
                continue
            if record.kind == "write":
                found = explore(done | {i}, record.value, acc + [i])
                if found is not None:
                    return found
            elif record.value == current:
                found = explore(done | {i}, current, acc + [i])
                if found is not None:
                    return found
        for i in optional:
            if i in done or not precedes[i] <= done:
                continue
            found = explore(done | {i}, current, acc)
            if found is not None:
                return found
        return None

    indices = explore(frozenset(), BOTTOM, [])
    if indices is None:
        return None
    return [operations[i] for i in indices]
