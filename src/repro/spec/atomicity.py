"""SWMR atomicity, checked exactly as defined in Section 2.2 of the paper.

A partial run satisfies atomicity iff there is an assignment of a write index
``idx(rd)`` to every complete read such that:

1. *(validity)* the read returned ``val_{idx(rd)}`` — in particular some
   write (or the initial ⊥, index 0) produced the returned value;
2. *(no stale reads)* if ``rd`` succeeds a complete ``wr_k`` then
   ``idx(rd) ≥ k``;
3. *(no reads from the future)* if ``idx(rd) = k ≥ 1`` then ``wr_k``
   precedes ``rd`` or is concurrent with it — equivalently ``wr_k`` was
   invoked before ``rd`` responded;
4. *(read monotonicity)* if ``rd2`` succeeds ``rd1`` then
   ``idx(rd2) ≥ idx(rd1)``.

Because distinct writes may store equal values, the checker searches for a
*consistent assignment* rather than judging reads one at a time: reads are
processed in a linear extension of precedence and greedily given the smallest
feasible index.  Greedy-minimal is complete here — lowering one read's index
never shrinks a later read's feasible set — so failure of the greedy pass is
failure of every assignment, and the verdict pinpoints which clause broke.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecificationError
from repro.spec.history import History, OperationRecord


@dataclass(slots=True)
class AtomicityVerdict:
    """Outcome of an atomicity check.

    ``ok`` is True when a consistent assignment exists; otherwise
    ``violated_property`` names the first clause (1–4) that cannot be
    satisfied for ``culprit``, and ``explanation`` is human-readable.
    ``assignment`` maps each complete read to its chosen write index when
    the check succeeds.
    """

    ok: bool
    violated_property: int | None = None
    culprit: OperationRecord | None = None
    explanation: str = ""
    assignment: dict[Any, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def check_swmr_atomicity(history: History) -> AtomicityVerdict:
    """Check the four-property SWMR atomicity definition on ``history``."""
    if not history.single_writer():
        raise SpecificationError(
            "this checker implements the paper's single-writer definition; "
            "use repro.spec.linearizability for multi-writer histories"
        )
    values = history.written_values()  # values[k] == val_k, values[0] == ⊥
    writes = history.writes()
    reads = sorted(history.reads(complete_only=True), key=_linear_extension_key)

    # The single writer is sequential, so write invocation steps are strictly
    # increasing and the complete writes form a prefix with strictly
    # increasing response steps.  Both precedence scans below ("which writes
    # precede this read", "which writes does this read precede") therefore
    # reduce to binary searches over these two arrays instead of O(R·W)
    # pairwise ``precedes`` calls.
    write_invocations = [w.invocation_step for w in writes]
    write_responses = [w.response_step for w in writes if w.complete]

    # value → ascending write indices, so the candidate scan is O(1) per
    # read.  Falls back to a linear scan when a value is unhashable.  The
    # index is only a *prefilter*: candidacy itself stays defined by ``==``
    # (below), because dict lookup takes an identity shortcut that ``==``
    # does not (NaN is the classic case) and the other spec checkers
    # compare with ``==``.
    try:
        by_value: dict[Any, list[int]] | None = {}
        for k, val in enumerate(values):
            by_value.setdefault(val, []).append(k)
    except TypeError:
        by_value = None

    assigned: dict[Any, int] = {}
    # Reads are processed in response-step order (a linear extension), so
    # "the largest index assigned to a preceding read" is a prefix-maximum
    # query over the response steps processed so far.
    done_responses: list[int] = []
    done_prefix_max: list[int] = []

    for read in reads:
        prefiltered: Any = None
        if by_value is not None:
            try:
                prefiltered = by_value.get(read.value, [])
            except TypeError:
                prefiltered = None  # unhashable read value: scan everything
        if prefiltered is None:
            prefiltered = range(len(values))
        candidates = [k for k in prefiltered if values[k] == read.value]
        if not candidates:
            return AtomicityVerdict(
                ok=False,
                violated_property=1,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r}, which no write ever wrote "
                    f"(written values: {values[1:]!r}, initial ⊥)"
                ),
            )

        # Property 2: ``wr_k precedes rd`` iff ``wr_k`` is complete and its
        # response step is below the read's invocation step — a prefix of
        # ``write_responses``.
        write_floor = bisect_left(write_responses, read.invocation_step)

        # Property 3: wr_k must precede rd or be concurrent with it, i.e.
        # ¬(rd precedes wr_k) ⇔ ``wr_k`` was invoked at or before the read's
        # response step — a prefix of ``write_invocations``.  Using the same
        # strict/non-strict step comparisons as the precedence predicate
        # keeps the checker consistent with Wing–Gong at tied step numbers.
        ceiling = bisect_right(write_invocations, read.response_step)

        # Property 4: reads preceding this one are exactly the processed
        # reads whose response step is below this invocation step.
        read_floor = 0
        position = bisect_left(done_responses, read.invocation_step)
        if position:
            read_floor = done_prefix_max[position - 1]

        floor = write_floor if write_floor >= read_floor else read_floor
        at = bisect_left(candidates, floor)
        if at < len(candidates) and candidates[at] <= ceiling:
            choice = candidates[at]  # smallest feasible index (greedy-minimal)
            assigned[read.op_id] = choice
            done_responses.append(read.response_step)
            done_prefix_max.append(
                choice if not done_prefix_max or choice > done_prefix_max[-1]
                else done_prefix_max[-1]
            )
            continue

        # Diagnose which clause failed, most specific first.
        below_ceiling = [k for k in candidates if k <= ceiling]
        if not below_ceiling:
            return AtomicityVerdict(
                ok=False,
                violated_property=3,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r}, but every write of that value "
                    f"was invoked only after the read responded (read from the future)"
                ),
            )
        if all(k < write_floor for k in below_ceiling):
            return AtomicityVerdict(
                ok=False,
                violated_property=2,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r} (indices {below_ceiling}) although "
                    f"it succeeds wr_{write_floor}: stale read"
                ),
            )
        return AtomicityVerdict(
            ok=False,
            violated_property=4,
            culprit=read,
            explanation=(
                f"{read.op_id} returned {read.value!r} (indices {below_ceiling}) although a "
                f"preceding read already returned index {read_floor}: new/old inversion"
            ),
        )

    return AtomicityVerdict(ok=True, assignment=assigned)


def check_atomicity(history: History) -> AtomicityVerdict:
    """Atomicity for any writer population, dispatching on the history.

    Single-writer histories go through the paper's four-property SWMR
    checker unchanged.  Multi-writer histories — the SWMR→MWMR
    transformation, native multi-writer protocols, and the combined view of
    sharded composites — fall back to the general linearizability search,
    which *is* the atomicity definition once the single-writer structure is
    gone (for read/write registers the two notions coincide).
    """
    if history.single_writer():
        return check_swmr_atomicity(history)
    from repro.spec.linearizability import is_linearizable

    ok = is_linearizable(history)
    return AtomicityVerdict(
        ok=ok,
        explanation="" if ok else "no linearization of the multi-writer history exists",
    )


def _linear_extension_key(read: OperationRecord) -> tuple[int, int]:
    """Sort key giving a linear extension of precedence among complete reads.

    If ``rd1`` precedes ``rd2`` then ``rd1.response_step < rd2.invocation_step
    <= rd2.response_step``, so ordering by response step is a valid linear
    extension.
    """
    assert read.response_step is not None
    return (read.response_step, read.invocation_step)
