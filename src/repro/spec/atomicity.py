"""SWMR atomicity, checked exactly as defined in Section 2.2 of the paper.

A partial run satisfies atomicity iff there is an assignment of a write index
``idx(rd)`` to every complete read such that:

1. *(validity)* the read returned ``val_{idx(rd)}`` — in particular some
   write (or the initial ⊥, index 0) produced the returned value;
2. *(no stale reads)* if ``rd`` succeeds a complete ``wr_k`` then
   ``idx(rd) ≥ k``;
3. *(no reads from the future)* if ``idx(rd) = k ≥ 1`` then ``wr_k``
   precedes ``rd`` or is concurrent with it — equivalently ``wr_k`` was
   invoked before ``rd`` responded;
4. *(read monotonicity)* if ``rd2`` succeeds ``rd1`` then
   ``idx(rd2) ≥ idx(rd1)``.

Because distinct writes may store equal values, the checker searches for a
*consistent assignment* rather than judging reads one at a time: reads are
processed in a linear extension of precedence and greedily given the smallest
feasible index.  Greedy-minimal is complete here — lowering one read's index
never shrinks a later read's feasible set — so failure of the greedy pass is
failure of every assignment, and the verdict pinpoints which clause broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecificationError
from repro.spec.history import History, OperationRecord


@dataclass(slots=True)
class AtomicityVerdict:
    """Outcome of an atomicity check.

    ``ok`` is True when a consistent assignment exists; otherwise
    ``violated_property`` names the first clause (1–4) that cannot be
    satisfied for ``culprit``, and ``explanation`` is human-readable.
    ``assignment`` maps each complete read to its chosen write index when
    the check succeeds.
    """

    ok: bool
    violated_property: int | None = None
    culprit: OperationRecord | None = None
    explanation: str = ""
    assignment: dict[Any, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def check_swmr_atomicity(history: History) -> AtomicityVerdict:
    """Check the four-property SWMR atomicity definition on ``history``."""
    if not history.single_writer():
        raise SpecificationError(
            "this checker implements the paper's single-writer definition; "
            "use repro.spec.linearizability for multi-writer histories"
        )
    values = history.written_values()  # values[k] == val_k, values[0] == ⊥
    writes = history.writes()
    reads = sorted(history.reads(complete_only=True), key=_linear_extension_key)

    assigned: dict[Any, int] = {}

    for read in reads:
        candidates = [k for k, val in enumerate(values) if val == read.value]
        if not candidates:
            return AtomicityVerdict(
                ok=False,
                violated_property=1,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r}, which no write ever wrote "
                    f"(written values: {values[1:]!r}, initial ⊥)"
                ),
            )

        write_floor = 0  # property 2: last complete write preceding the read
        for k, write in enumerate(writes, start=1):
            if write.precedes(read):
                write_floor = max(write_floor, k)

        # Property 3: wr_k must precede rd or be concurrent with it, i.e.
        # ¬(rd precedes wr_k).  Using the precedence predicate keeps the
        # checker consistent with Wing–Gong at tied step numbers.
        ceiling = 0
        for k, write in enumerate(writes, start=1):
            if not read.precedes(write):
                ceiling = max(ceiling, k)

        read_floor = 0  # property 4: indices of reads that precede this one
        for other_read in reads:
            if other_read.op_id in assigned and other_read.precedes(read):
                read_floor = max(read_floor, assigned[other_read.op_id])

        feasible = [k for k in candidates if k >= max(write_floor, read_floor) and k <= ceiling]
        if feasible:
            choice = min(feasible)
            assigned[read.op_id] = choice
            continue

        # Diagnose which clause failed, most specific first.
        below_ceiling = [k for k in candidates if k <= ceiling]
        if not below_ceiling:
            return AtomicityVerdict(
                ok=False,
                violated_property=3,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r}, but every write of that value "
                    f"was invoked only after the read responded (read from the future)"
                ),
            )
        if all(k < write_floor for k in below_ceiling):
            return AtomicityVerdict(
                ok=False,
                violated_property=2,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r} (indices {below_ceiling}) although "
                    f"it succeeds wr_{write_floor}: stale read"
                ),
            )
        return AtomicityVerdict(
            ok=False,
            violated_property=4,
            culprit=read,
            explanation=(
                f"{read.op_id} returned {read.value!r} (indices {below_ceiling}) although a "
                f"preceding read already returned index {read_floor}: new/old inversion"
            ),
        )

    return AtomicityVerdict(ok=True, assignment=assigned)


def _linear_extension_key(read: OperationRecord) -> tuple[int, int]:
    """Sort key giving a linear extension of precedence among complete reads.

    If ``rd1`` precedes ``rd2`` then ``rd1.response_step < rd2.invocation_step
    <= rd2.response_step``, so ordering by response step is a valid linear
    extension.
    """
    assert read.response_step is not None
    return (read.response_step, read.invocation_step)
