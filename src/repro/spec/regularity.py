"""SWMR regularity (Lamport).

A read of a regular register returns the value of the *last write preceding
it* or of *some write concurrent with it*.  Compared to atomicity this drops
read monotonicity (property 4): two sequential reads may observe a new value
then an old one.  It is exactly the semantics of the [GV06]/[DMSS09]
substrates that the paper's Section 5 pipes through the regular→atomic
transformation.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.spec.atomicity import AtomicityVerdict
from repro.spec.history import History


def check_swmr_regularity(history: History) -> AtomicityVerdict:
    """Check SWMR regularity; reuses :class:`AtomicityVerdict` for reporting.

    For each complete read independently there must be a write index ``k``
    with ``val_k`` equal to the returned value such that:

    * ``k ≥`` the index of the last complete write preceding the read
      (freshness — clause 2 of the atomicity definition), and
    * ``wr_k`` was invoked before the read responded (no reads from the
      future — clause 3), with ``k = 0`` (the initial ⊥) allowed only when
      no complete write precedes the read.
    """
    if not history.single_writer():
        raise SpecificationError("regularity checker expects a single-writer history")
    values = history.written_values()
    writes = history.writes()

    assignment = {}
    for read in history.reads(complete_only=True):
        candidates = [k for k, val in enumerate(values) if val == read.value]
        if not candidates:
            return AtomicityVerdict(
                ok=False,
                violated_property=1,
                culprit=read,
                explanation=f"{read.op_id} returned {read.value!r}, which was never written",
            )
        floor = 0
        for k, write in enumerate(writes, start=1):
            if write.precedes(read):
                floor = max(floor, k)
        # ¬(rd precedes wr_k): the write was invoked no later than the read
        # responded, so the read may legitimately observe it.
        ceiling = 0
        for k, write in enumerate(writes, start=1):
            if not read.precedes(write):
                ceiling = max(ceiling, k)
        feasible = [k for k in candidates if floor <= k <= ceiling]
        if not feasible:
            if all(k > ceiling for k in candidates):
                return AtomicityVerdict(
                    ok=False,
                    violated_property=3,
                    culprit=read,
                    explanation=(
                        f"{read.op_id} returned {read.value!r} before any write of it was invoked"
                    ),
                )
            return AtomicityVerdict(
                ok=False,
                violated_property=2,
                culprit=read,
                explanation=(
                    f"{read.op_id} returned {read.value!r} although wr_{floor} "
                    f"completed before the read started: stale read"
                ),
            )
        assignment[read.op_id] = min(feasible)
    return AtomicityVerdict(ok=True, assignment=assignment)
