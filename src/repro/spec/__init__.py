"""Consistency specifications and checkers.

The paper defines SWMR atomicity through four properties (Section 2.2); this
package implements that definition verbatim (:mod:`repro.spec.atomicity`),
the weaker regular and safe semantics of Lamport
(:mod:`repro.spec.regularity`, :mod:`repro.spec.safety`), and a general
linearizability checker (:mod:`repro.spec.linearizability`) used to
cross-validate the atomicity checker on small histories and to check MWMR
executions.
"""

from repro.spec.history import History, HistoryRecorder, OperationRecord
from repro.spec.atomicity import AtomicityVerdict, check_atomicity, check_swmr_atomicity
from repro.spec.regularity import check_swmr_regularity
from repro.spec.safety import check_swmr_safety
from repro.spec.linearizability import is_linearizable

__all__ = [
    "History",
    "HistoryRecorder",
    "OperationRecord",
    "AtomicityVerdict",
    "check_atomicity",
    "check_swmr_atomicity",
    "check_swmr_regularity",
    "check_swmr_safety",
    "is_linearizable",
]
