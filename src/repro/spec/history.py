"""Operation histories: invocations, responses, and the precedence order.

A history is the externally visible part of a (partial) run: for each
operation its kind, argument/result, and invocation/response *steps*.  Steps
carry both a virtual time and a global step number so that precedence
("the response step of op1 precedes the invocation step of op2") is
well-defined even when virtual times collide.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import SpecificationError
from repro.types import BOTTOM, OperationId, ProcessId


@dataclass(slots=True)
class OperationRecord:
    """One operation as the history sees it."""

    op_id: OperationId
    kind: str  # "read" | "write"
    client: ProcessId
    invoked_at: int
    invocation_step: int
    value: Any = None  # argument of a write, result of a read
    responded_at: int | None = None
    response_step: int | None = None

    @property
    def complete(self) -> bool:
        """Whether the run contains a response step for this operation."""
        return self.response_step is not None

    def precedes(self, other: "OperationRecord") -> bool:
        """Paper §2.2: complete ``self`` responds before ``other`` is invoked."""
        if not self.complete:
            return False
        return self.response_step < other.invocation_step

    def concurrent_with(self, other: "OperationRecord") -> bool:
        """Neither operation precedes the other."""
        return not self.precedes(other) and not other.precedes(self)

    def __str__(self) -> str:
        status = f"-> {self.value!r}" if self.complete else "(incomplete)"
        return f"{self.op_id} {status}"


class HistoryRecorder:
    """Collects invocation/response events during a simulation.

    Implements the interface :class:`repro.sim.simulator.Simulator` expects;
    call :meth:`freeze` to obtain an immutable :class:`History` for checking.
    """

    def __init__(self) -> None:
        self._records: dict[OperationId, OperationRecord] = {}
        self._order: list[OperationId] = []
        self._steps = itertools.count(1)

    def record_invocation(self, op_id: OperationId, kind: str, value: Any, time: int) -> None:
        if op_id in self._records:
            raise SpecificationError(f"duplicate invocation of {op_id}")
        self._records[op_id] = OperationRecord(
            op_id=op_id,
            kind=kind,
            client=op_id.client,
            invoked_at=time,
            invocation_step=next(self._steps),
            value=value,
        )
        self._order.append(op_id)

    def record_response(self, op_id: OperationId, value: Any, time: int) -> None:
        record = self._records.get(op_id)
        if record is None:
            raise SpecificationError(f"response without invocation: {op_id}")
        if record.complete:
            raise SpecificationError(f"duplicate response for {op_id}")
        record.responded_at = time
        record.response_step = next(self._steps)
        if record.kind == "read":
            record.value = value

    def freeze(self) -> "History":
        """Immutable view of everything recorded so far."""
        return History([self._records[op] for op in self._order])


class History:
    """An immutable operation history with SWMR-specific accessors."""

    def __init__(self, records: Iterable[OperationRecord]) -> None:
        self.records: tuple[OperationRecord, ...] = tuple(records)
        self._validate()

    def _validate(self) -> None:
        outstanding: dict[ProcessId, OperationRecord] = {}
        for record in sorted(self.records, key=lambda r: r.invocation_step):
            previous = outstanding.get(record.client)
            if previous is not None and not previous.complete:
                raise SpecificationError(
                    f"{record.client} invoked {record.op_id} while {previous.op_id} is outstanding"
                )
            if (
                previous is not None
                and previous.complete
                and previous.response_step is not None
                and previous.response_step > record.invocation_step
            ):
                raise SpecificationError(
                    f"{record.client} invoked {record.op_id} before {previous.op_id} responded"
                )
            outstanding[record.client] = record

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.records)

    def reads(self, complete_only: bool = True) -> list[OperationRecord]:
        """Read operations, by default only the complete ones."""
        return [
            r for r in self.records if r.kind == "read" and (r.complete or not complete_only)
        ]

    def writes(self) -> list[OperationRecord]:
        """Write operations in invocation order — the natural SWMR order.

        The single writer is sequential, so invocation order is the paper's
        ``wr_1, wr_2, …`` numbering; at most the last write is incomplete.
        """
        writes = [r for r in self.records if r.kind == "write"]
        return sorted(writes, key=lambda r: r.invocation_step)

    def written_values(self) -> list[Any]:
        """``val_0 = ⊥`` followed by ``val_1 .. val_n`` in write order."""
        return [BOTTOM] + [w.value for w in self.writes()]

    def complete(self) -> list[OperationRecord]:
        """All complete operations."""
        return [r for r in self.records if r.complete]

    def single_writer(self) -> bool:
        """Whether all writes come from one client."""
        writers = {w.client for w in self.writes()}
        return len(writers) <= 1

    def describe(self) -> str:
        """Multi-line human-readable rendering (for certificates and logs)."""
        lines = []
        for record in sorted(self.records, key=lambda r: r.invocation_step):
            window = (
                f"[{record.invoked_at}, {record.responded_at}]"
                if record.complete
                else f"[{record.invoked_at}, …)"
            )
            lines.append(f"  {record} {window}")
        return "\n".join(lines) or "  (empty history)"
