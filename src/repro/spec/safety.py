"""SWMR safeness (Lamport's *safe* register).

Only reads that are **not concurrent with any write** are constrained: they
must return the value of the last preceding write (or ⊥ when there is none).
A read overlapping any write may return anything at all — safe registers are
the weakest rung of Lamport's hierarchy, included here because the related
work the paper builds on ([ABD95]'s precursors, [Abraham et al. 06]'s
``t+1``-round bound) is stated for safe storage.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.spec.atomicity import AtomicityVerdict
from repro.spec.history import History


def check_swmr_safety(history: History) -> AtomicityVerdict:
    """Check safeness: solo reads return the last completed write's value."""
    if not history.single_writer():
        raise SpecificationError("safety checker expects a single-writer history")
    values = history.written_values()
    writes = history.writes()

    for read in history.reads(complete_only=True):
        concurrent = any(read.concurrent_with(write) for write in writes)
        if concurrent:
            continue  # unconstrained
        last_preceding = 0
        for k, write in enumerate(writes, start=1):
            if write.precedes(read):
                last_preceding = max(last_preceding, k)
        expected = values[last_preceding]
        if read.value != expected:
            return AtomicityVerdict(
                ok=False,
                violated_property=2,
                culprit=read,
                explanation=(
                    f"solo {read.op_id} returned {read.value!r} but the last "
                    f"complete write stored {expected!r}"
                ),
            )
    return AtomicityVerdict(ok=True)
