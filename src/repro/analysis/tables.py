"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows the paper reports; this keeps the formatting
in one place so every experiment's output looks uniform in
``bench_output.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


@dataclass(slots=True)
class Table:
    """An ordered collection of homogeneous string rows."""

    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, str]] = field(default_factory=list)

    def add(self, row: Mapping[str, str]) -> None:
        """Append one row (missing keys render empty)."""
        self.rows.append(row)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)


def format_table(title: str, columns: Sequence[str], rows: Iterable[Mapping[str, str]]) -> str:
    """Fixed-width table with a title rule, GitHub-markdown-ish separators."""
    materialized = [dict(row) for row in rows]
    widths = {col: len(col) for col in columns}
    for row in materialized:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    rule = "-+-".join("-" * widths[col] for col in columns)
    lines = [f"== {title} ==", header, rule]
    for row in materialized:
        lines.append(" | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
