"""Latency accounting and table rendering for the benchmark harness."""

from repro.analysis.metrics import LatencyReport, measure_latency
from repro.analysis.tables import Table, format_table

__all__ = ["LatencyReport", "measure_latency", "Table", "format_table"]
