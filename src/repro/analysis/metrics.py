"""Round-trip latency accounting.

The paper's complexity metric is communication round-trips per operation.
:func:`measure_latency` replays a workload against a register system and
reports, per operation kind, the worst/mean rounds used — cross-checked
against the wire (the message trace) so the engine cannot misreport its own
round count.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import SpecificationError
from repro.registers.base import RegisterSystem
from repro.sim.simulator import OperationStatus
from repro.workloads.generator import OperationPlan, apply_plan


@dataclass(slots=True)
class LatencyReport:
    """Rounds-per-operation statistics for one system execution."""

    protocol: str
    scenario: str
    write_rounds: list[int] = field(default_factory=list)
    read_rounds: list[int] = field(default_factory=list)
    #: Rounds used by membership-repair steps (reconfig backend only);
    #: always exactly 2 per completed repair — transfer read + install.
    repair_rounds: list[int] = field(default_factory=list)
    incomplete: int = 0
    #: Simulator events the run executed and the wall-clock seconds it
    #: took (backend path only; the event count is deterministic, the
    #: duration is not and never enters byte-compared dumps).
    events: int = 0
    elapsed_s: float = 0.0

    @property
    def worst_write(self) -> int:
        return max(self.write_rounds, default=0)

    @property
    def worst_read(self) -> int:
        return max(self.read_rounds, default=0)

    @property
    def mean_write(self) -> float:
        return statistics.fmean(self.write_rounds) if self.write_rounds else 0.0

    @property
    def mean_read(self) -> float:
        return statistics.fmean(self.read_rounds) if self.read_rounds else 0.0

    def row(self) -> dict[str, str]:
        """A formatted table row."""
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "writes (worst/mean)": f"{self.worst_write}/{self.mean_write:.2f}",
            "reads (worst/mean)": f"{self.worst_read}/{self.mean_read:.2f}",
            "incomplete": str(self.incomplete),
        }


def _account_rounds(simulator, trace, report: LatencyReport, verify_against_wire: bool) -> None:
    """Fold every executed operation's round count into ``report``."""
    for operation in simulator.operations:
        if operation.status is not OperationStatus.COMPLETE:
            report.incomplete += 1
            continue
        rounds = operation.rounds_used
        if verify_against_wire:
            on_wire = trace.round_trip_count(operation.op_id)
            if on_wire != rounds:
                raise SpecificationError(
                    f"engine counted {rounds} rounds for {operation.op_id} "
                    f"but the wire shows {on_wire}"
                )
        if operation.op_id.kind == "write":
            report.write_rounds.append(rounds)
        elif operation.op_id.kind == "repair":
            report.repair_rounds.append(rounds)
        else:
            report.read_rounds.append(rounds)


def measure_latency(
    system: RegisterSystem,
    plans: list[OperationPlan],
    scenario: str = "",
    verify_against_wire: bool = True,
) -> LatencyReport:
    """Replay ``plans`` on ``system`` and account rounds per operation."""
    apply_plan(system, plans)
    system.run()
    report = LatencyReport(protocol=system.protocol.name, scenario=scenario)
    _account_rounds(system.simulator, system.trace, report, verify_against_wire)
    return report


def measure_backend_latency(
    backend,
    plans: list[OperationPlan],
    scenario: str = "",
    verify_against_wire: bool = True,
) -> LatencyReport:
    """Replay ``plans`` through a :class:`~repro.api.backends.SystemBackend`.

    The backend routes each plan to its register/writer (key-aware for
    sharded clusters, writer-index-aware for MWMR systems); the accounting
    is the same wire-cross-checked rounds-per-operation fold as
    :func:`measure_latency`.
    """
    for plan in plans:
        backend.schedule(plan)
    started = time.perf_counter()
    events = backend.run()
    elapsed = time.perf_counter() - started
    report = LatencyReport(protocol=backend.label, scenario=scenario)
    report.events = events
    report.elapsed_s = elapsed
    _account_rounds(backend.simulator, backend.trace, report, verify_against_wire)
    return report
