"""Unit tests for the round engine and the event-loop simulator."""

import pytest

from repro.errors import ProtocolError
from repro.sim.network import Message, SelectiveHold
from repro.sim.process import ObjectHandler, ObjectServer
from repro.sim.rounds import ReplyRule, RoundSpec
from repro.sim.simulator import OperationStatus, Simulator
from repro.spec.history import HistoryRecorder
from repro.types import object_id, object_ids, reader_id


class EchoHandler(ObjectHandler):
    """Replies with a per-object counter (distinct payload per delivery)."""

    def initial_state(self):
        return {"count": 0}

    def handle(self, state, message):
        state["count"] += 1
        return {"count": state["count"], "tag": message.tag}


def make_simulator(n_objects=4, policy=None, history=None):
    servers = [ObjectServer(pid=pid, handler=EchoHandler()) for pid in object_ids(n_objects)]
    return Simulator(servers, policy=policy, history=history)


def single_round_protocol(rule):
    def generator():
        outcome = yield RoundSpec(tag="Q", payload={}, rule=rule)
        return outcome

    return generator()


class TestRoundEngine:
    def test_round_terminates_at_min_count(self):
        sim = make_simulator(4)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=3)))
        sim.run()
        assert op.status is OperationStatus.COMPLETE
        assert len(op.result.replies) >= 3

    def test_eager_termination_stops_collecting(self):
        # With unit latency all replies arrive together, so use a predicate
        # that is satisfied only by a specific object's presence.
        sim = make_simulator(4)
        rule = ReplyRule(min_count=1, predicate=lambda replies: object_id(1) in replies)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(rule))
        sim.run()
        assert op.status is OperationStatus.COMPLETE
        assert object_id(1) in op.result.replies

    def test_multi_round_operation(self):
        def protocol():
            first = yield RoundSpec(tag="A", payload={}, rule=ReplyRule(min_count=4))
            second = yield RoundSpec(tag="B", payload={}, rule=ReplyRule(min_count=4))
            return (first.round_no, second.round_no)

        sim = make_simulator(4)
        op = sim.invoke(reader_id(1), "read", protocol())
        sim.run()
        assert op.result == (1, 2)
        assert op.rounds_used == 2

    def test_rounds_used_counts_started_rounds(self):
        sim = make_simulator(4)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)))
        sim.run()
        assert op.rounds_used == 1

    def test_quiescence_accepts_partial_replies(self):
        # Hold replies from object 4; rule wants all 4 but accepts at quiescence.
        policy = SelectiveHold(lambda m: m.is_reply and m.src == object_id(4))
        sim = make_simulator(4, policy=policy)
        rule = ReplyRule(min_count=3, predicate=lambda r: len(r) >= 4, accept_on_quiescence=True)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(rule))
        sim.run()
        assert op.status is OperationStatus.COMPLETE
        assert op.result.quiesced is True
        assert len(op.result.replies) == 3

    def test_strict_rule_leaves_operation_pending(self):
        policy = SelectiveHold(lambda m: m.is_reply and m.src == object_id(4))
        sim = make_simulator(4, policy=policy)
        rule = ReplyRule(min_count=4, accept_on_quiescence=False)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(rule))
        sim.run()
        assert op.status is OperationStatus.PENDING
        assert sim.pending_operations() == [op]

    def test_per_object_payload(self):
        class PayloadEcho(ObjectHandler):
            def initial_state(self):
                return {}

            def handle(self, state, message):
                return {"got": message.payload.get("x")}

        servers = [ObjectServer(pid=pid, handler=PayloadEcho()) for pid in object_ids(2)]
        sim = Simulator(servers)

        def protocol():
            outcome = yield RoundSpec(
                tag="Q",
                payload={"x": "default"},
                rule=ReplyRule(min_count=2),
                per_object_payload={object_id(2): {"x": "special"}},
            )
            return {pid: p["got"] for pid, p in outcome.replies.items()}

        op = sim.invoke(reader_id(1), "read", protocol())
        sim.run()
        assert op.result[object_id(1)] == "default"
        assert op.result[object_id(2)] == "special"


class TestClientDiscipline:
    def test_one_outstanding_operation_per_client(self):
        sim = make_simulator(2)
        sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)))
        sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)), at=0)
        with pytest.raises(ProtocolError):
            sim.run()

    def test_sequential_operations_allowed(self):
        sim = make_simulator(2)
        sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)), at=0)
        sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)), at=100)
        sim.run()
        assert len(sim.completed_operations()) == 2

    def test_abort_stops_progress(self):
        policy = SelectiveHold(lambda m: m.is_reply)
        sim = make_simulator(2, policy=policy)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)))
        sim.run()
        sim.abort(op)
        assert op.status is OperationStatus.ABORTED
        sim.network.release_held()
        sim.run()
        assert op.status is OperationStatus.ABORTED

    def test_history_recorded(self):
        recorder = HistoryRecorder()
        sim = make_simulator(2, history=recorder)
        sim.invoke(
            reader_id(1), "read", single_round_protocol(ReplyRule(min_count=2)), at=5
        )
        sim.run()
        history = recorder.freeze()
        assert len(history.reads()) == 1
        assert history.reads()[0].complete

    def test_max_rounds_used_by_kind(self):
        sim = make_simulator(2)

        def two_rounds():
            yield RoundSpec(tag="A", payload={}, rule=ReplyRule(min_count=2))
            yield RoundSpec(tag="B", payload={}, rule=ReplyRule(min_count=2))
            return None

        sim.invoke(reader_id(1), "read", two_rounds())
        sim.invoke(reader_id(2), "read", single_round_protocol(ReplyRule(min_count=2)))
        sim.run()
        assert sim.max_rounds_used("read") == 2
        assert sim.max_rounds_used("write") == 0


class TestFaultyObjectsInSimulator:
    def test_faulty_objects_listed(self):
        from repro.faults.adversary import SilentBehavior

        servers = [ObjectServer(pid=pid, handler=EchoHandler()) for pid in object_ids(3)]
        servers[1].behavior = SilentBehavior()
        sim = Simulator(servers)
        assert sim.faulty_objects() == (object_id(2),)

    def test_silent_objects_do_not_block_quorum(self):
        from repro.faults.adversary import SilentBehavior

        servers = [ObjectServer(pid=pid, handler=EchoHandler()) for pid in object_ids(4)]
        servers[0].behavior = SilentBehavior()
        sim = Simulator(servers)
        op = sim.invoke(reader_id(1), "read", single_round_protocol(ReplyRule(min_count=3)))
        sim.run()
        assert op.status is OperationStatus.COMPLETE
        assert object_id(1) not in op.result.replies
