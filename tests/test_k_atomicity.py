"""Unit + differential tests for the k-atomicity spectrum verifier.

Three layers of confidence:

* hand-built histories pin the semantics (k=1 is atomicity, lagged reads
  pass exactly up to their lag, the placement-segment subtlety that plain
  per-pair index monotonicity misses);
* ``check_k_atomicity(h, 1)`` is compared verdict-for-verdict against the
  k=1 checkers (``check_swmr_atomicity`` / ``is_linearizable``) on every
  protocol × covered-scenario grid cell the facade can run;
* randomized small histories are compared against the brute-force
  frozenset-frontier oracle for k ∈ {1, 2, 3}.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Cluster, protocol_specs
from repro.consistency import (
    atomicity_spectrum,
    canonical_check_name,
    check_k_atomicity,
    check_k_atomicity_reference,
    consistency_bound,
    parse_consistency,
)
from repro.errors import ConfigurationError, SpecificationError
from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.history import History, OperationRecord
from repro.spec.linearizability import is_linearizable
from repro.types import BOTTOM, fresh_operation_id, reader_id, writer_id


class HistoryBuilder:
    """Small DSL: steps are assigned in call order (same as test_atomicity)."""

    def __init__(self):
        self.records = []
        self._step = 0

    def _next(self):
        self._step += 1
        return self._step

    def write(self, value, complete=True):
        inv = self._next()
        resp = self._next() if complete else None
        self.records.append(OperationRecord(
            op_id=fresh_operation_id(writer_id(), "write"), kind="write",
            client=writer_id(), invoked_at=inv, invocation_step=inv,
            value=value, responded_at=resp, response_step=resp,
        ))
        return self

    def read(self, reader, returns, inv=None, resp=None):
        inv_step = inv if inv is not None else self._next()
        resp_step = resp if resp is not None else self._next()
        self._step = max(self._step, inv_step, resp_step or 0)
        self.records.append(OperationRecord(
            op_id=fresh_operation_id(reader_id(reader), "read"), kind="read",
            client=reader_id(reader), invoked_at=inv_step, invocation_step=inv_step,
            value=returns, responded_at=resp_step, response_step=resp_step,
        ))
        return self

    def history(self):
        return History(self.records)


class TestHandHistories:
    def test_k_must_be_positive(self):
        with pytest.raises(SpecificationError):
            check_k_atomicity(History([]), 0)
        with pytest.raises(SpecificationError):
            check_k_atomicity_reference(History([]), 0)

    def test_empty_history_is_k_atomic(self):
        assert check_k_atomicity(History([]), 1).ok
        assert check_k_atomicity(History([]), 3).ok

    def test_one_write_lag_passes_at_k2_only(self):
        history = HistoryBuilder().write("a").write("b").read(1, "a").history()
        assert not check_k_atomicity(history, 1).ok
        assert check_k_atomicity(history, 2).ok
        assert atomicity_spectrum(history) == 2

    def test_bottom_after_two_writes_needs_k3(self):
        history = HistoryBuilder().write("a").write("b").read(1, BOTTOM).history()
        assert not check_k_atomicity(history, 2).ok
        assert check_k_atomicity(history, 3).ok
        assert atomicity_spectrum(history) == 3

    def test_atomic_history_has_spectrum_one(self):
        history = HistoryBuilder().write("a").read(1, "a").write("b").read(2, "b").history()
        assert check_k_atomicity(history, 1).ok
        assert atomicity_spectrum(history) == 1

    def test_k1_violation_carries_the_bound_in_the_diagnosis(self):
        history = HistoryBuilder().write("a").write("b").read(1, "a").history()
        verdict = check_k_atomicity(history, 1)
        assert verdict.violated_property == 2
        assert "beyond the k=1 bound" in verdict.explanation

    def test_unwritten_value_fails_every_k(self):
        history = HistoryBuilder().write("a").read(1, "z").history()
        for k in (1, 2, 5):
            verdict = check_k_atomicity(history, k)
            assert not verdict.ok and verdict.violated_property == 1
        assert atomicity_spectrum(history) is None

    def test_read_from_the_future_fails_every_k(self):
        builder = HistoryBuilder()
        builder.read(1, "a", inv=1, resp=2)
        builder.write("a")
        history = builder.history()
        for k in (1, 3):
            verdict = check_k_atomicity(history, k)
            assert not verdict.ok and verdict.violated_property == 3
        assert atomicity_spectrum(history) is None

    def test_segment_chain_rejected_at_k2(self):
        """Pairwise index monotonicity is not enough: the segment chain.

        After three complete writes, a precedence chain of reads returning
        v3, v2, v1 satisfies every *pairwise* ``idx ≥ prev_idx − (k−1)``
        constraint at k=2, yet no placement exists: r1 sits in segment 3,
        which forces r2's placement (value v2) into segment 3 as well, so
        r3 needs an index ≥ 2 — and v1 is index 1.
        """
        history = (
            HistoryBuilder().write("v1").write("v2").write("v3")
            .read(1, "v3").read(1, "v2").read(1, "v1").history()
        )
        verdict = check_k_atomicity(history, 2)
        assert not verdict.ok
        assert verdict.violated_property in (2, 4)
        assert not check_k_atomicity_reference(history, 2)
        assert check_k_atomicity(history, 3).ok
        assert atomicity_spectrum(history) == 3

    def test_concurrent_reads_may_each_lag_independently(self):
        # Both reads overlap nothing and follow two writes: at k=2 each may
        # return the previous value without constraining the other (they
        # are concurrent, so no segment ordering applies between them).
        builder = HistoryBuilder().write("a").write("b")
        builder.read(1, "a", inv=10, resp=13)
        builder.read(2, "b", inv=11, resp=12)
        history = builder.history()
        assert not check_k_atomicity(history, 1).ok
        assert check_k_atomicity(history, 2).ok

    def test_incomplete_write_still_optional(self):
        # An incomplete write may never take effect; reading the prior
        # value stays 1-atomic, reading the new value is also allowed.
        history = HistoryBuilder().write("a").write("b", complete=False).read(1, "a").history()
        assert check_k_atomicity(history, 1).ok
        history = HistoryBuilder().write("a").write("b", complete=False).read(1, "b").history()
        assert check_k_atomicity(history, 1).ok


class TestModelVocabulary:
    def test_canonical_check_name(self):
        assert canonical_check_name("atomic") == "atomicity"
        assert canonical_check_name("regular") == "regularity"
        assert canonical_check_name("safe") == "safety"
        assert canonical_check_name("linearizable") == "linearizability"
        assert canonical_check_name("k-atomic") == "k-atomic(2)"
        assert canonical_check_name("k-atomic", k=4) == "k-atomic(4)"
        assert canonical_check_name("k-atomic(3)") == "k-atomic(3)"
        assert canonical_check_name("bounded-stale", k=3) == "k-atomic(3)"

    def test_canonical_check_name_rejects_conflicts_and_unknowns(self):
        with pytest.raises(ConfigurationError):
            canonical_check_name("k-atomic(3)", k=2)
        with pytest.raises(ConfigurationError):
            canonical_check_name("k-atomic(0)")
        with pytest.raises(ConfigurationError):
            canonical_check_name("causal")

    def test_parse_consistency(self):
        assert parse_consistency("atomic") == "atomic"
        assert parse_consistency("k-atomic") == "k-atomic(2)"
        assert parse_consistency("k-atomic(1)") == "k-atomic(1)"
        assert parse_consistency("bounded-stale") == "k-atomic(2)"
        with pytest.raises(ConfigurationError):
            parse_consistency("eventual")
        with pytest.raises(ConfigurationError):
            parse_consistency("k-atomic(0)")

    def test_consistency_bound(self):
        assert consistency_bound("atomic") == 1
        assert consistency_bound("k-atomic(3)") == 3
        with pytest.raises(ConfigurationError):
            consistency_bound("k-atomic")  # only canonical strings carry a bound


def _grid_cells():
    for spec in protocol_specs():
        for scenario in spec.scenarios:
            yield pytest.param(spec.name, scenario, id=f"{spec.name}-{scenario}")


@pytest.mark.parametrize("protocol,scenario", _grid_cells())
def test_k1_agrees_with_the_atomicity_checkers(protocol, scenario):
    """``check_k_atomicity(h, 1)`` is the k=1 checker, verdict for verdict.

    Every protocol × covered-scenario cell the facade can run — including
    histories that *violate* atomicity (regular/safe protocols under
    faults) — must get the same ok, the same violated property and the
    same greedy assignment from the k=1 spectrum path.
    """
    result = (
        Cluster(protocol, t=1)
        .with_scenario(scenario)
        .with_workload(operations=8, spacing=90)
        .run(trials=2, keep_history=True)
    )
    for trial in result.trials:
        history = trial.history
        verdict = check_k_atomicity(history, 1)
        if history.single_writer():
            expected = check_swmr_atomicity(history)
            assert verdict.ok == expected.ok, (protocol, scenario, trial.trial)
            assert verdict.violated_property == expected.violated_property
            assert verdict.assignment == expected.assignment
        else:
            assert verdict.ok == is_linearizable(history), (protocol, scenario, trial.trial)


def _random_history(rng: random.Random) -> History:
    """A small adversarial SWMR history: duplicate values, ⊥ reads, overlap.

    Well-formedness is preserved by construction: only the *last* write may
    be incomplete (the single writer cannot invoke past an outstanding
    write) and each reader's reads are sequential.
    """
    builder = HistoryBuilder()
    count = rng.randint(1, 4)
    for index in range(count):
        last = index == count - 1
        builder.write(
            rng.choice(["a", "b", "a"]),
            complete=not (last and rng.random() < 0.2),
        )
    horizon = builder._step + 4
    cursor = {1: 0, 2: 0}  # per-reader response front (reads are sequential)
    for _ in range(rng.randint(1, 4)):
        reader = rng.randint(1, 2)
        inv = rng.randint(cursor[reader] + 1, cursor[reader] + horizon)
        resp = inv + rng.randint(0, 4)
        cursor[reader] = resp
        builder.read(reader, rng.choice([BOTTOM, "a", "b"]), inv=inv, resp=resp)
    return builder.history()


@pytest.mark.parametrize("k", [1, 2, 3])
def test_greedy_agrees_with_the_brute_force_oracle(k):
    rng = random.Random(20260808 + k)
    for case in range(250):
        history = _random_history(rng)
        fast = check_k_atomicity(history, k).ok
        slow = check_k_atomicity_reference(history, k)
        assert fast == slow, (case, k, [
            (r.kind, r.value, r.invocation_step, r.response_step)
            for r in history.records
        ])


def test_spectrum_is_monotone_on_random_histories():
    """Once a history passes at k it passes at every larger k, and the
    spectrum names exactly the first passing bound."""
    rng = random.Random(7)
    for _ in range(100):
        history = _random_history(rng)
        smallest = atomicity_spectrum(history)
        if smallest is None:
            assert not check_k_atomicity(history, len(history.writes()) + 1).ok
            continue
        assert check_k_atomicity(history, smallest).ok
        assert check_k_atomicity(history, smallest + 1).ok
        if smallest > 1:
            assert not check_k_atomicity(history, smallest - 1).ok
