"""Tests for the declarative Cluster builder and its structured results."""

import json

import pytest

from repro.api import Cluster, available_checks, get_spec, sweep
from repro.errors import ConfigurationError
from repro.registers.base import RegisterSystem


class TestBuilderFluency:
    def test_builder_methods_return_new_instances(self):
        base = Cluster("abd", t=1)
        faulted = base.with_faults("crash")
        checked = faulted.check("atomicity")
        assert base is not faulted and faulted is not checked
        # The template is unaffected: running it stays fault-free.
        assert base.run(seed=1).faults.effective == 0
        assert checked.run(seed=1).faults.effective == 1

    def test_unknown_protocol_and_check_rejected_early(self):
        with pytest.raises(ConfigurationError):
            Cluster("no-such-protocol")
        with pytest.raises(ConfigurationError, match="atomicity"):
            Cluster("abd").check("totality")
        with pytest.raises(ConfigurationError):
            Cluster("abd").with_faults("no-such-fault")

    def test_available_checks(self):
        assert set(available_checks()) >= {"atomicity", "regularity", "safety", "linearizability"}

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            Cluster("abd").with_workload(reads=1.5)
        with pytest.raises(ConfigurationError):
            Cluster("abd").with_workload(operations=0)
        with pytest.raises(ConfigurationError):
            Cluster("abd").with_workload(spacing=-1)

    def test_explicit_operations_validate_reader_indices(self):
        with pytest.raises(ConfigurationError, match="readers"):
            Cluster("abd", n_readers=2).with_operations([("read", 9, 0)])
        with pytest.raises(ConfigurationError, match="read/write"):
            Cluster("abd").with_operations([("scan", 1, 0)])

    def test_build_system_escape_hatch(self):
        system = Cluster("fast-regular", t=1).with_faults("silent").build_system()
        assert isinstance(system, RegisterSystem)
        assert system.ctx.S == 4
        assert sum(1 for s in system.servers if s.behavior is not None) == 1


class TestRun:
    def test_run_is_deterministic_per_seed(self):
        cluster = Cluster("abd", t=1).with_workload(operations=10).check("atomicity")
        first = cluster.run(trials=2, seed=42).to_dict()
        second = cluster.run(trials=2, seed=42).to_dict()
        assert first == second
        assert first != cluster.run(trials=2, seed=43).to_dict()

    def test_trials_use_consecutive_seeds(self):
        result = Cluster("abd").run(trials=3, seed=10)
        assert [trial.seed for trial in result.trials] == [10, 11, 12]

    def test_explicit_operations_replayed_each_trial(self):
        result = (
            Cluster("abd")
            .with_operations([("write", "x", 0), ("read", 1, 50)])
            .check("atomicity")
            .run(trials=2, seed=0)
        )
        assert result.ok
        for trial in result.trials:
            assert trial.seed is None
            assert len(trial.write_rounds) == 1 and len(trial.read_rounds) == 1
            assert len(trial.history.records) == 2

    def test_result_is_structured_and_serializable(self):
        result = (
            Cluster("fast-regular", t=2)
            .with_faults("stale-echo", count=2)
            .check("regularity")
            .run(trials=2, seed=7)
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["protocol"] == "fast-regular"
        assert payload["S"] == 7 and payload["t"] == 2
        assert payload["faults"]["effective"] == 2
        assert len(payload["trials"]) == 2
        assert payload["trials"][0]["checks"]["regularity"]["ok"] is True
        assert "2/" in result.row()["writes (worst/mean)"]
        assert "fast-regular" in result.render()

    def test_check_failures_are_recorded_not_raised(self):
        # ABD is crash-tolerant only; t fabricating objects can defeat it.
        result = (
            Cluster("abd", t=1)
            .with_faults("fabricating", count=1)
            .with_workload(operations=12, spacing=20)
            .check("atomicity")
            .run(trials=4, seed=2)
        )
        assert len(result.trials) == 4  # no exception even if checks fail
        for trial, verdict in result.failures():
            assert verdict.explanation

    def test_scenario_adoption(self):
        result = Cluster("fast-regular", t=2).with_scenario("replay").run(seed=1)
        assert result.scenario == "replay"
        assert result.faults.effective == 2
        assert all("stale-echo" in how for how in result.faults.assignments.values())


class TestFaultStacking:
    def test_fault_groups_stack_and_clamp(self):
        result = (
            Cluster("fast-regular", t=2)
            .with_faults("silent", count=1)
            .with_faults("crash", count=3)  # clamped: only one slot left
            .run(seed=0)
        )
        assert result.faults.requested == 4
        assert result.faults.effective == 2
        assert result.scenario == "silent×1+crash×3"

    def test_strict_overfault_raises(self):
        cluster = Cluster("fast-regular", t=1).with_faults("silent", count=2, strict=True)
        with pytest.raises(ConfigurationError, match="strict"):
            cluster.run(seed=0)

    def test_allow_overfault_bypasses_the_clamp(self):
        # Over-threshold silence stalls quorums, so schedule a single
        # operation: the point is the inventory, not completion.
        result = (
            Cluster("fast-regular", t=1, S=7, allow_overfault=True)
            .with_faults("silent", count=2)
            .with_operations([("write", "x", 0)])
            .run(seed=0)
        )
        assert result.faults.effective == 2
        assert result.faults.requested == 2

    def test_fault_kwargs_reach_the_behaviour(self):
        result = Cluster("abd", t=1).with_faults("crash", survive_messages=1).run(seed=0)
        assert result.faults.assignments["s1"] == "crash-after-1"


class TestSweep:
    def test_sweep_defaults_to_metadata_scenarios(self):
        result = sweep(["abd"], t=1, operations=6)
        assert [run.scenario for run in result.runs] == list(get_spec("abd").scenarios)
        assert result.worst_rounds("abd") == (1, 2)

    def test_sweep_table_renders_every_cell(self):
        result = sweep(["abd", "secret-token"], t=1, operations=6, checks=("regularity",))
        table = result.table("sweep")
        assert "abd" in table and "secret-token" in table
        assert result.protocols() == ("abd", "secret-token")
        assert all(run.trials[0].checks["regularity"].ok for run in result.runs)

    def test_unknown_protocol_in_results_lookup(self):
        with pytest.raises(ConfigurationError):
            sweep(["abd"], t=1, operations=6).worst_rounds("zab")
