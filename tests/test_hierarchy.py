"""Property test: Lamport's hierarchy — atomic ⊆ regular ⊆ safe.

Any history accepted by the atomicity checker must be accepted by the
regularity checker, and any history accepted by regularity must be accepted
by safety.  Violations of the containment would mean one of the three
checkers implements the wrong specification; running it over thousands of
random histories pins all three to each other.
"""

from hypothesis import given, settings, strategies as st

from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.history import History, OperationRecord
from repro.spec.regularity import check_swmr_regularity
from repro.spec.safety import check_swmr_safety
from repro.types import BOTTOM, fresh_operation_id, reader_id, writer_id


def _op(kind, client, inv, resp, value):
    return OperationRecord(
        op_id=fresh_operation_id(client, kind), kind=kind, client=client,
        invoked_at=inv, invocation_step=inv, value=value,
        responded_at=resp, response_step=resp,
    )


@st.composite
def histories(draw):
    """Well-formed SWMR histories with overlapping intervals."""
    n = draw(st.integers(1, 7))
    records = []
    step = 0
    busy = {"w": 0, 1: 0, 2: 0, 3: 0}
    writer_crashed = False
    values = iter(f"v{i}" for i in range(1, 12))
    for _ in range(n):
        write = draw(st.booleans()) and not writer_crashed
        key = "w" if write else draw(st.sampled_from([1, 2, 3]))
        start = max(busy[key], step) + draw(st.integers(1, 4))
        duration = draw(st.integers(1, 8))
        end = start + duration
        step = start
        busy[key] = end
        if write:
            complete = draw(st.booleans())
            records.append(_op("write", writer_id(), start,
                               end if complete else None, next(values)))
            if not complete:
                writer_crashed = True  # a crashed writer never writes again
        else:
            value = draw(st.sampled_from([BOTTOM, "v1", "v2", "v3", "v4"]))
            records.append(_op("read", reader_id(key), start, end, value))
    return History(records)


class TestHierarchy:
    @given(histories())
    @settings(max_examples=400, deadline=None)
    def test_atomic_implies_regular_implies_safe(self, history):
        atomic = check_swmr_atomicity(history).ok
        regular = check_swmr_regularity(history).ok
        safe = check_swmr_safety(history).ok
        if atomic:
            assert regular, "atomic history rejected by regularity"
        if regular:
            assert safe, "regular history rejected by safety"

    @given(histories())
    @settings(max_examples=200, deadline=None)
    def test_single_read_histories_collapse(self, history):
        """With at most one complete read, atomicity and regularity agree
        (property 4 needs two reads to bite)."""
        if len(history.reads(complete_only=True)) <= 1:
            assert check_swmr_atomicity(history).ok == check_swmr_regularity(history).ok

    def test_separating_example_regular_not_atomic(self):
        """The canonical separation: a new/old inversion."""
        records = [
            _op("write", writer_id(), 1, 2, "a"),
            _op("write", writer_id(), 3, 30, "b"),
            _op("read", reader_id(1), 4, 5, "b"),
            _op("read", reader_id(2), 6, 7, "a"),
        ]
        history = History(records)
        assert check_swmr_regularity(history).ok
        assert not check_swmr_atomicity(history).ok

    def test_separating_example_safe_not_regular(self):
        """A concurrent read may return garbage under safety only."""
        records = [
            _op("write", writer_id(), 1, 10, "a"),
            _op("read", reader_id(1), 2, 3, "garbage"),
        ]
        history = History(records)
        assert check_swmr_safety(history).ok
        assert not check_swmr_regularity(history).ok
