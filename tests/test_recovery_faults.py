"""System-level tests for crash-recover faults over the durability seam.

The crash-recover family (``crash-recover``, ``fsync-lag``, ``torn-write``)
extends the PR-5 engine-equivalence contract: a run with a recovering
object must produce byte-identical ``RunResult.to_dict()`` payloads and
wire-trace fingerprints on the event and batched engines, serially and on
a process pool.  The explorer treats recovery timing as an ordinary choice
point: it certifies a well-provisioned recovery configuration and refutes
an under-provisioned (fsync-lagged) one with a minimized witness.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Cluster
from repro.errors import StorageError
from repro.sim.tracing import trace_fingerprint
from repro.storage import DURABILITIES

RECOVERY_FAULTS = ("crash-recover", "fsync-lag", "torn-write")


def strip_engine(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("engine", None)
    return payload


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _recovering_cluster(engine="event", durability="mem", fault="crash-recover", **kwargs):
    return (
        Cluster("abd", t=1, n_readers=2, engine=engine, durability=durability)
        .with_faults(fault, **kwargs)
        .with_workload(operations=8, spacing=40)
        .check("atomicity")
    )


class TestRecoveryRuns:
    @pytest.mark.parametrize("durability", ("mem", "dir"))
    def test_crash_recover_completes_and_stays_atomic(self, durability):
        result = _recovering_cluster(durability=durability).run(trials=2, seed=7)
        assert result.ok
        assert result.durability == durability
        payload = result.to_dict()
        assert payload["durability"] == durability
        for trial in payload["trials"]:
            meter = trial["storage"]
            assert meter["durability"] == durability
            assert meter["retained_bytes"] > 0
            assert set(meter["objects"]) == {"s1", "s2", "s3"}

    @pytest.mark.parametrize("fault", RECOVERY_FAULTS)
    def test_event_and_batched_byte_identical(self, fault):
        event = _recovering_cluster("event", fault=fault).run(trials=2, seed=9)
        batched = _recovering_cluster("batched", fault=fault).run(trials=2, seed=9)
        assert canonical(strip_engine(event.to_dict())) == canonical(
            strip_engine(batched.to_dict())
        )

    def test_wire_traces_identical_across_engines(self):
        runs = [
            _recovering_cluster(engine).run(trials=1, seed=3, keep_trace=True)
            for engine in ("event", "batched")
        ]
        fingerprints = [
            trace_fingerprint(run.trials[0].trace) for run in runs
        ]
        assert fingerprints[0] == fingerprints[1]

    def test_parallel_matches_serial(self):
        serial = _recovering_cluster().run(trials=3, seed=11)
        parallel = _recovering_cluster("batched").run(trials=3, seed=11, parallel=True)
        assert canonical(strip_engine(serial.to_dict())) == canonical(
            strip_engine(parallel.to_dict())
        )

    def test_mem_and_dir_retain_identical_bytes(self):
        mem = _recovering_cluster(durability="mem").run(trials=1, seed=5)
        disk = _recovering_cluster(durability="dir").run(trials=1, seed=5)
        mem_meter = mem.trials[0].storage
        dir_meter = disk.trials[0].storage
        for field in ("retained_bytes", "retained_records", "retained_timestamps",
                      "gc_retained_bytes", "gc_freed_bytes"):
            assert mem_meter[field] == dir_meter[field]

    def test_torn_write_recovery_discards_the_torn_record(self):
        # A torn final record must not wedge the run: the object rejoins
        # one update behind and ABD's quorum still masks it.
        result = _recovering_cluster(fault="torn-write").run(trials=2, seed=13)
        assert result.ok

    def test_fsync_lag_loses_exactly_the_unsynced_suffix(self):
        # Undisturbed (no held links) the lagged object rejoins stale but
        # t=1 quorums mask the staleness — the run stays atomic; the
        # explorer test below shows the adversarial schedule that doesn't.
        result = _recovering_cluster(fault="fsync-lag", lag=1).run(trials=2, seed=17)
        assert result.ok

    def test_recovery_fault_without_durability_raises(self):
        with pytest.raises(StorageError, match="durability"):
            Cluster("abd", t=1).with_faults("crash-recover").run(seed=1)

    def test_durability_axis_is_fluent_and_tagged(self):
        assert DURABILITIES == ("none", "mem", "dir")
        base = Cluster("abd", t=1)
        durable = base.with_durability("mem")
        assert base is not durable
        plain = base.with_workload(operations=4).run(seed=2)
        assert "durability" not in plain.to_dict()  # absent means default
        tagged = durable.with_workload(operations=4).run(seed=2)
        assert tagged.to_dict()["durability"] == "mem"


class TestRecoveryExploration:
    BASE = (
        Cluster("abd", t=1, durability="mem")
        .with_operations([("write", "v1", 0), ("read", 1, 40)])
        .check("atomicity")
    )

    def test_explorer_certifies_sync_before_ack_recovery(self):
        result = self.BASE.with_faults(
            "crash-recover", survive_messages=1, rejoin_after=0
        ).explore(max_holds=2)
        assert result.certified
        assert result.violations == 0
        assert result.durability == "mem"

    def test_explorer_refutes_fsync_lagged_recovery(self):
        result = self.BASE.with_faults(
            "fsync-lag", survive_messages=1, rejoin_after=0, lag=1
        ).explore(max_holds=2)
        assert not result.certified
        assert result.witnesses
        witness = min(result.witnesses, key=lambda w: len(w.decisions))
        assert len(witness.decisions) == 1  # minimized: one held link suffices
        assert witness.failures[0][0] == "atomicity"
        assert witness.reproduces()

    def test_spacemeter_gc_shrinks_superseded_history(self):
        # Every write supersedes the previous one, so GC must reclaim the
        # whole prefix: per object only the newest record per key survives.
        result = (
            Cluster("abd", t=1, durability="mem")
            .with_workload(operations=12, reads=0.0, spacing=30)
            .check("atomicity")
            .run(seed=19)
        )
        meter = result.trials[0].storage
        assert meter["gc_retained_bytes"] < meter["retained_bytes"]
        assert meter["gc_retained_timestamps"] < meter["retained_timestamps"]
        for figures in meter["objects"].values():
            assert figures["gc_records"] <= 2  # ts + value keys, one record each


class TestRecoveryCli:
    def test_list_faults_shows_recovery_family(self, capsys):
        from repro.__main__ import main

        assert main(["list-faults"]) == 0
        out = capsys.readouterr().out
        for name in RECOVERY_FAULTS:
            assert name in out

    def test_run_durability_flag(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--durability", "mem",
            "--faults", "crash-recover", "--trials", "1", "--ops", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "durability=mem" in out
        assert "crash-recover" in out

    def test_run_recovery_fault_without_durability_exits_2(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--faults", "crash-recover",
            "--trials", "1", "--ops", "4",
        ]) == 2
        assert "durability" in capsys.readouterr().err

    def test_fault_arg_parameterizes_the_behaviour(self, capsys):
        from repro.__main__ import main

        assert main([
            "run", "--protocol", "abd", "--durability", "mem",
            "--faults", "fsync-lag", "--fault-arg", "survive_messages=2",
            "--fault-arg", "lag=2", "--trials", "1", "--ops", "6",
        ]) == 0
        assert "fsync-lag(lag=2, survive=2" in capsys.readouterr().out

    def test_fault_arg_validation_exits_2(self, capsys):
        from repro.__main__ import main

        # a parameter without --faults is a configuration error ...
        assert main([
            "run", "--protocol", "abd", "--fault-arg", "lag=2",
        ]) == 2
        assert "--fault-arg" in capsys.readouterr().err
        # ... and so is a malformed KEY=VALUE pair
        assert main([
            "run", "--protocol", "abd", "--faults", "crash-recover",
            "--durability", "mem", "--fault-arg", "lag",
        ]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_explore_refutes_from_the_command_line(self, capsys, tmp_path):
        from repro.__main__ import main

        witness = tmp_path / "stale_rejoin_cli.json"
        assert main([
            "explore", "--protocol", "abd", "--durability", "mem",
            "--faults", "fsync-lag", "--fault-arg", "survive_messages=1",
            "--fault-arg", "rejoin_after=0", "--ops", "2", "--reads", "0.5",
            "--seed", "7", "--max-holds", "2",
            "--witness", str(witness), "--expect-violation",
        ]) == 0
        capsys.readouterr()
        assert main(["replay", str(witness)]) == 0
        assert "byte-identically" in capsys.readouterr().out
