"""Robustness frontier + fault-timing choice points (repro.robustness).

Covers the decision vocabulary (HoldLink + FaultTrigger under one
``Decision`` umbrella), the explorer's swept trigger points, symmetry
reduction, and the certified cross-model frontier: abd certifies
atomicity at its resilience bound while the under-provisioned fast-read
stack is refuted at atomicity and lands — with a minimized, replayable
witness — at k-atomic(2).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import Cluster
from repro.api.cluster import sweep
from repro.errors import ConfigurationError
from repro.explore import (
    ControlledDelivery,
    FaultTrigger,
    HoldLink,
    canonical_decisions,
    decision_from_json,
)
from repro.robustness import FrontierResult, model_ladder, robustness_frontier


def underprovisioned_cluster() -> Cluster:
    """Two always-stale objects on a 3t+1 stack sized for one."""
    return (
        Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
        .with_faults("stale-echo", count=2)
        .with_operations([("write", "v1", 0), ("read", 1, 100)])
    )


def timed_stack() -> Cluster:
    """One always-stale object plus one whose staleness needs a trigger."""
    return (
        Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
        .with_faults("stale-echo", count=1)
        .with_faults("timed", count=1, inner="stale-echo", at=99)
        .with_operations([("write", "v1", 0), ("read", 1, 100)])
    )


# --------------------------------------------------------------------- #
# Decision vocabulary
# --------------------------------------------------------------------- #


class TestDecisionVocabulary:
    def test_trigger_validates_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultTrigger(obj=0, at=0)
        with pytest.raises(ConfigurationError):
            FaultTrigger(obj=1, at=-1)

    def test_trigger_json_round_trip(self):
        trigger = FaultTrigger(obj=2, at=3)
        assert trigger.to_json() == ["fault", 2, 3]
        assert decision_from_json(trigger.to_json()) == trigger

    def test_decision_from_json_dispatch(self):
        assert decision_from_json([1, 3, None]) == HoldLink(op=1, obj=3)
        assert decision_from_json(["fault", 2, 0]) == FaultTrigger(obj=2, at=0)

    def test_canonical_order_holds_before_triggers(self):
        decisions = canonical_decisions([
            FaultTrigger(obj=1, at=0),
            HoldLink(op=2, obj=1),
            HoldLink(op=1, obj=3),
            FaultTrigger(obj=2, at=5),
        ])
        assert decisions == (
            HoldLink(op=1, obj=3),
            HoldLink(op=2, obj=1),
            FaultTrigger(obj=1, at=0),
            FaultTrigger(obj=2, at=5),
        )

    def test_controlled_delivery_rejects_triggers(self):
        with pytest.raises(ConfigurationError):
            ControlledDelivery(holds=(FaultTrigger(obj=1, at=0),))

    def test_describe(self):
        assert FaultTrigger(obj=2, at=4).describe() == "fire s2@4"


# --------------------------------------------------------------------- #
# Fault-timing choice points
# --------------------------------------------------------------------- #


class TestTimingChoicePoints:
    def test_facade_timing_is_honored(self):
        """``timed(stale-echo@at)`` fires at the facade's chosen point."""
        def stack(at: int) -> Cluster:
            return (
                Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
                .with_faults("timed", count=2, inner="stale-echo", at=at)
                .with_operations([("write", "v1", 0), ("read", 1, 100)])
                .check("atomicity")
            )

        active = stack(0).explore(max_holds=1, max_schedules=500)
        assert active.witnesses, "at=0 staleness should refute atomicity"
        inert = stack(99).explore(max_holds=1, max_schedules=500)
        assert inert.certified and not inert.witnesses

    def test_swept_triggers_expose_inert_faults(self):
        """The explorer finds violations the facade's timing never shows."""
        cluster = (
            Cluster("atomic-fast-regular", t=1, S=4, allow_overfault=True)
            .with_faults("timed", count=2, inner="stale-echo", at=99)
            .with_operations([("write", "v1", 0), ("read", 1, 100)])
            .check("atomicity")
        )
        untimed = cluster.explore(max_holds=3, max_schedules=3000)
        assert untimed.certified and not untimed.witnesses
        timed = cluster.explore(max_holds=3, max_schedules=3000,
                                fault_timing=True)
        assert timed.witnesses
        triggers = [d for d in timed.witnesses[0].decisions
                    if isinstance(d, FaultTrigger)]
        assert sorted((t.obj, t.at) for t in triggers) == [(1, 0), (2, 0)]

    def test_mixed_witness_replays_byte_identically(self):
        result = timed_stack().check("atomicity").explore(
            max_holds=2, max_schedules=3000, fault_timing=True
        )
        assert result.witnesses
        witness = result.witnesses[0]
        kinds = {type(d) for d in witness.decisions}
        assert kinds == {HoldLink, FaultTrigger}
        outcome = witness.replay()
        assert witness.reproduces(outcome)

    def test_trigger_on_unfaulted_object_rejected(self):
        result = timed_stack().check("atomicity").explore(
            max_holds=2, max_schedules=3000, fault_timing=True
        )
        witness = result.witnesses[0]
        doctored = dataclasses.replace(
            witness, decisions=(FaultTrigger(obj=4, at=0),)
        )
        with pytest.raises(ConfigurationError):
            doctored.replay()

    def test_timing_needs_fault_groups(self):
        """fault_timing on a fault-free probe degrades to plain holds."""
        cluster = (
            Cluster("abd")
            .with_operations([("write", "v1", 0), ("read", 1, 100)])
            .check("atomicity")
        )
        plain = cluster.explore(max_holds=1, max_schedules=500)
        swept = cluster.explore(max_holds=1, max_schedules=500,
                                fault_timing=True)
        assert swept.stats.explored == plain.stats.explored
        assert swept.certified == plain.certified


class TestTimedFaultWrapper:
    def test_rejects_nesting_and_timing_clashes(self):
        from repro.faults.timing import timed_fault

        with pytest.raises(ConfigurationError):
            timed_fault("timed", at=1)
        with pytest.raises(ConfigurationError):
            timed_fault("crash", at=1, survive_messages=3)
        with pytest.raises(ConfigurationError):
            timed_fault("crash", at=-1)

    def test_bare_registry_build(self):
        from repro.api.faults import get_fault
        from repro.faults.timing import TimedFault

        behavior = get_fault("timed")
        assert isinstance(behavior, TimedFault)
        assert behavior.describe() == "timed(silent@0)"

    def test_crash_trigger_swept_across_a_round_boundary(self):
        """timed(crash)@at behaves exactly like survive_messages=at.

        The trigger point decides which round's message the crash
        swallows: fired before the write's second round the store never
        lands on s1, fired late the object is indistinguishable from
        correct — same verdict either way (t=1 tolerates one crash), but
        the message trace must shift with the trigger.
        """
        def run(at: int):
            return (
                Cluster("abd", t=1)
                .with_faults("timed", count=1, inner="crash", at=at)
                .with_operations([("write", "v1", 0), ("read", 1, 100)])
                .check("atomicity")
                .run(trials=1, keep_trace=True)
            )

        early, late = run(0), run(50)
        assert early.ok and late.ok
        from repro.sim.tracing import trace_fingerprint
        assert (trace_fingerprint(early.trials[0].trace)
                != trace_fingerprint(late.trials[0].trace))

    def test_fsync_lag_trigger_point_flips_the_verdict(self):
        """The stale-rejoin story as a trigger sweep: an fsync-lagged
        object that crashes *after* acknowledging the write's store (but
        before syncing it) can rejoin stale and serve ⊥; the same fault
        fired too late to matter leaves the bounded space clean."""
        def explore(at: int):
            return (
                Cluster("abd", t=1, durability="mem")
                .with_faults("timed", count=1, inner="fsync-lag", at=at,
                             rejoin_after=0, lag=1)
                .with_operations([("write", "v1", 0), ("read", 1, 100)])
                .check("atomicity")
                .explore(max_holds=2, max_schedules=1000)
            )

        vulnerable = explore(1)
        assert vulnerable.witnesses, "crash inside the sync lag must refute"
        safe = explore(99)
        assert safe.certified and not safe.witnesses


# --------------------------------------------------------------------- #
# Symmetry reduction
# --------------------------------------------------------------------- #


class TestSymmetry:
    def test_same_verdict_fewer_schedules(self):
        """Relabeling fault-free twins prunes without changing the verdict."""
        cluster = underprovisioned_cluster().check("atomicity")
        plain = cluster.explore(max_holds=2, max_schedules=3000)
        reduced = cluster.explore(max_holds=2, max_schedules=3000,
                                  symmetry=True)
        assert bool(plain.witnesses) == bool(reduced.witnesses)
        assert reduced.stats.pruned_symmetry > 0
        assert reduced.stats.explored < plain.stats.explored

    def test_symmetry_preserves_certification(self):
        cluster = (
            Cluster("abd", t=1)
            .with_faults("crash", count=1)
            .with_operations([("write", "v1", 0), ("read", 1, 100)])
            .check("atomicity")
        )
        plain = cluster.explore(max_holds=2, max_schedules=3000)
        reduced = cluster.explore(max_holds=2, max_schedules=3000,
                                  symmetry=True)
        assert plain.certified and reduced.certified


# --------------------------------------------------------------------- #
# The frontier
# --------------------------------------------------------------------- #


class TestModelLadder:
    def test_single_writer_ladder(self):
        assert model_ladder(4) == (
            "atomicity", "k-atomic(2)", "k-atomic(3)", "k-atomic(4)",
            "regularity", "safety",
        )

    def test_multi_writer_drops_swmr_models(self):
        assert model_ladder(3, multi_writer=True) == (
            "atomicity", "k-atomic(2)", "k-atomic(3)",
        )

    def test_trivial_and_invalid_ladders(self):
        assert model_ladder(1) == ("atomicity", "regularity", "safety")
        with pytest.raises(ConfigurationError):
            model_ladder(0)


class TestFrontier:
    def test_abd_certifies_atomicity_at_resilience_bound(self):
        """The paper's baseline: ABD is atomic with t crash faults at 2t+1."""
        cluster = (
            Cluster("abd", t=1)
            .with_faults("crash", count=1)
            .with_operations([("write", "v1", 0), ("read", 1, 100)])
        )
        result = robustness_frontier(cluster, max_holds=2, max_schedules=1000)
        assert isinstance(result, FrontierResult)
        assert result.strongest == "atomicity"
        assert result.certified
        assert result.refuted is None and result.witness is None
        assert not result.degraded
        assert result.outcomes == {"atomicity": "certified"}

    def test_underprovisioned_stack_lands_at_k2(self):
        """Two stale objects exceed t=1: atomicity refuted, k=2 certified."""
        result = robustness_frontier(
            underprovisioned_cluster(), max_holds=2, max_schedules=3000,
        )
        assert result.degraded
        assert result.outcomes["atomicity"] == "refuted"
        assert result.strongest == "k-atomic(2)"
        assert result.certified
        assert result.refuted == "atomicity"
        assert result.witness is not None
        assert result.witness.failures[0][0] == "atomicity"
        outcome = result.witness.replay()
        assert result.witness.reproduces(outcome)

    def test_timed_frontier_witness_carries_trigger(self):
        """The separating witness includes a fault-timing choice point."""
        result = robustness_frontier(
            timed_stack(), max_holds=2, max_schedules=3000,
        )
        assert result.strongest == "k-atomic(2)"
        assert result.refuted == "atomicity"
        triggers = [d for d in result.witness.decisions
                    if isinstance(d, FaultTrigger)]
        assert triggers == [FaultTrigger(obj=2, at=0)]

    def test_engine_parity(self):
        """Frontier payloads agree across engines modulo the engine tag."""
        def normalize(payload):
            payload = dict(payload)
            payload.pop("engine")
            if payload.get("witness"):
                payload["witness"] = {
                    key: value for key, value in payload["witness"].items()
                    if key != "engine"
                }
            return payload

        payloads = []
        for engine in ("event", "batched"):
            cluster = (
                Cluster("atomic-fast-regular", t=1, S=4,
                        allow_overfault=True, engine=engine)
                .with_faults("stale-echo", count=2)
                .with_operations([("write", "v1", 0), ("read", 1, 100)])
            )
            payloads.append(robustness_frontier(
                cluster, max_holds=2, max_schedules=3000,
            ).to_dict())
        assert normalize(payloads[0]) == normalize(payloads[1])

    def test_multi_writer_ladder_applies(self):
        cluster = (
            Cluster("mwmr-fast-regular", n_writers=2)
            .with_faults("crash", count=1)
            .with_workload(operations=3, spacing=60)
        )
        result = robustness_frontier(
            cluster, max_k=2, max_holds=1, max_schedules=500,
        )
        assert result.ladder == ("atomicity", "k-atomic(2)")
        assert result.strongest == "atomicity"

    def test_cluster_with_faults_argument_conflict(self):
        with pytest.raises(ConfigurationError):
            robustness_frontier(underprovisioned_cluster(), {"crash": 1})

    def test_with_checks_replaces_instead_of_appending(self):
        cluster = Cluster("abd").check("atomicity")
        assert cluster.with_checks("regularity")._checks == ("regularity",)
        assert cluster._checks == ("atomicity",)  # original untouched

    def test_facade_entry_point_matches_function(self):
        via_method = underprovisioned_cluster().frontier(
            max_holds=2, max_schedules=3000,
        )
        via_function = robustness_frontier(
            underprovisioned_cluster(), max_holds=2, max_schedules=3000,
        )
        assert via_method.to_dict() == via_function.to_dict()


class TestSweepPayload:
    def test_sweep_attaches_robustness_payload(self):
        result = sweep(
            ["abd"], scenarios=["crash"], trials=1, operations=4,
            frontier=True,
            frontier_bounds={"max_holds": 1, "max_schedules": 100},
        )
        payload = result.runs[0].robustness
        assert payload is not None
        assert payload["bounds"]["max_holds"] == 1
        assert payload["strongest"] is not None
        assert "robustness" in result.runs[0].to_dict()

    def test_sweep_without_frontier_has_no_payload(self):
        result = sweep(["abd"], scenarios=["crash"], trials=1, operations=4)
        assert result.runs[0].robustness is None
        assert "robustness" not in result.runs[0].to_dict()
