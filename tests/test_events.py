"""Unit tests for the virtual-time event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestScheduling:
    def test_fifo_at_same_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5, lambda: seen.append("a"))
        queue.schedule(5, lambda: seen.append("b"))
        queue.run_all()
        assert seen == ["a", "b"]

    def test_time_ordering(self):
        queue = EventQueue()
        seen = []
        queue.schedule(10, lambda: seen.append("late"))
        queue.schedule(1, lambda: seen.append("early"))
        queue.run_all()
        assert seen == ["early", "late"]

    def test_now_advances(self):
        queue = EventQueue()
        queue.schedule(7, lambda: None)
        queue.run_all()
        assert queue.now == 7

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1, lambda: None)

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(3, lambda: None)
        assert queue.peek_time() == 3

    def test_nested_scheduling(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1, lambda: queue.schedule(2, lambda: seen.append(queue.now)))
        queue.run_all()
        assert seen == [3]

    def test_event_budget(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule(1, reschedule)

        queue.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            queue.run_all(max_events=50)

    def test_run_all_returns_count(self):
        queue = EventQueue()
        for _ in range(4):
            queue.schedule(1, lambda: None)
        assert queue.run_all() == 4

    def test_len_tracks_pending(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
