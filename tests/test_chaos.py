"""Chaos tests: client crashes, fault cocktails, hostile schedules.

Wait-freedom and safety must survive everything the model allows at once:
clients crashing mid-operation (their write-backs half-delivered), mixed
Byzantine behaviours up to the threshold, and heavily skewed delivery.
"""

import pytest

from repro.faults.adversary import CrashAt, SilentBehavior, flaky_behavior
from repro.faults.byzantine import FabricatingBehavior, StaleEchoBehavior
from repro.faults.schedules import WithholdFrom
from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.secret_token import SecretTokenProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.sim.network import RandomDelivery
from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.linearizability import is_linearizable
from repro.spec.regularity import check_swmr_regularity
from repro.types import object_id, reader_id


class TestClientCrashes:
    def test_writer_crash_mid_write_still_linearizable(self):
        """A write aborted between its two phases is 'concurrent forever':
        later reads may return either value, but must stay consistent."""
        system = RegisterSystem(FastRegularProtocol(), t=1, n_readers=2)
        system.write("a", at=0)
        crashing = system.write("b", at=60)
        system.simulator.queue.schedule(63, lambda: system.simulator.abort(crashing))
        system.read(1, at=120)
        system.read(2, at=180)
        system.run()
        history = system.history()
        assert is_linearizable(history)
        values = [r.value for r in history.reads()]
        # Reads agree-or-progress: never b-then-a.
        assert values != ["b", "a"]

    def test_reader_crash_mid_write_back_harmless(self):
        """A reader aborted after its query but before finishing the
        write-back must not corrupt later reads."""
        protocol = RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2)
        system = RegisterSystem(protocol, t=1, n_readers=2)
        system.write("a", at=0)
        doomed = system.read(1, at=60)
        system.simulator.queue.schedule(64, lambda: system.simulator.abort(doomed))
        system.write("b", at=140)
        system.read(2, at=220)
        system.run()
        history = system.history()
        assert history.reads()[-1].value == "b"
        assert check_swmr_atomicity(history).ok

    def test_aborted_operation_not_counted_complete(self):
        system = RegisterSystem(AbdProtocol(), t=1, n_readers=1)
        policy_victim = system.read(1, at=0)
        system.simulator.queue.schedule(0, lambda: system.simulator.abort(policy_victim))
        system.run()
        assert not system.history().reads(complete_only=True)


class TestFaultCocktails:
    def test_mixed_byzantine_at_threshold(self):
        """t = 3: one fabricator, one stale-echo, one silent — all at once."""
        t = 3
        system = RegisterSystem(
            FastRegularProtocol("unauthenticated"), t=t, n_readers=2,
            behaviors={
                object_id(1): FabricatingBehavior(),
                object_id(2): StaleEchoBehavior(frozen_state={}),
                object_id(3): SilentBehavior(),
            },
        )
        system.write("a", at=0)
        system.read(1, at=80)
        system.write("b", at=160)
        system.read(2, at=240)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "b"]
        assert check_swmr_regularity(history).ok

    def test_token_stack_under_cocktail(self):
        t = 2
        protocol = RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=2)
        system = RegisterSystem(
            protocol, t=t, n_readers=2,
            behaviors={
                object_id(1): FabricatingBehavior(),
                object_id(2): CrashAt(survive_messages=4),
            },
        )
        system.write("a", at=0)
        system.read(1, at=80)
        system.write("b", at=160)
        system.read(2, at=240)
        system.run()
        history = system.history()
        assert len(history.complete()) == 4
        assert check_swmr_atomicity(history).ok

    def test_flaky_objects_within_threshold(self):
        system = RegisterSystem(
            FastRegularProtocol(), t=2, n_readers=2,
            behaviors={
                object_id(1): flaky_behavior(p_reply=0.4, seed=3),
                object_id(2): flaky_behavior(p_reply=0.4, seed=4),
            },
        )
        for i, at in enumerate((0, 100, 200)):
            system.write(f"v{i}", at=at)
            system.read(1 + i % 2, at=at + 50)
        system.run()
        history = system.history()
        assert len(history.complete()) == 6  # wait-freedom despite flakiness
        assert check_swmr_regularity(history).ok


class TestHostileSchedules:
    def test_reader_starved_of_freshest_objects(self):
        """Withhold the replies of two specific objects from one reader:
        with S - t still answering, its reads must stay live and regular."""
        system = RegisterSystem(
            FastRegularProtocol(), t=1, n_readers=2,
            policy=WithholdFrom(objects=[object_id(1)], clients=[reader_id(1)]),
        )
        system.write("a", at=0)
        system.read(1, at=60)
        system.write("b", at=120)
        system.read(1, at=200)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "b"]
        assert check_swmr_regularity(history).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_high_variance_delays_with_byzantine(self, seed):
        system = RegisterSystem(
            RegularToAtomicProtocol(lambda: FastRegularProtocol(), n_readers=2),
            t=1, n_readers=2,
            policy=RandomDelivery(seed=seed, min_latency=1, max_latency=25),
        )
        rogue = system.server(object_id(4))
        rogue.behavior = StaleEchoBehavior(frozen_state={})
        system.write("a", at=0)
        system.read(1, at=10)
        system.write("b", at=300)
        system.read(2, at=310)
        system.read(1, at=600)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        assert verdict.ok, verdict.explanation

    def test_all_invocations_to_one_object_withheld(self):
        """An object that never hears anything is just a slow correct
        object: progress and consistency must be unaffected."""
        system = RegisterSystem(
            FastRegularProtocol(), t=1, n_readers=1,
            policy=WithholdFrom(objects=[object_id(2)], also_invocations=True, clients=None),
        )
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        history = system.history()
        assert history.reads()[0].value == "a"
        assert system.server(object_id(2)).messages_seen == 0
