"""Unit and property tests for quorum arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.quorums.analysis import (
    intersection_size,
    is_dissemination_system,
    is_masking_system,
    quorum_availability,
    threshold_family,
    threshold_fault_sets,
)
from repro.quorums.threshold import (
    ByzantineThresholds,
    CrashThresholds,
    certification_threshold,
    max_tolerable_faults,
    optimal_resilience_objects,
)
from repro.types import object_ids


class TestThresholdBasics:
    def test_optimal_resilience(self):
        assert optimal_resilience_objects(0) == 1
        assert optimal_resilience_objects(1) == 4
        assert optimal_resilience_objects(3) == 10

    def test_max_tolerable_inverts_optimal(self):
        for t in range(0, 20):
            assert max_tolerable_faults(optimal_resilience_objects(t)) == t

    def test_certification(self):
        assert certification_threshold(2) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_resilience_objects(-1)


class TestCrashThresholds:
    def test_abd_configuration(self):
        th = CrashThresholds(S=3, t=1)
        assert th.quorum == 2
        assert th.wait_for == 2
        assert th.quorums_intersect()

    def test_rejects_insufficient_objects(self):
        with pytest.raises(ConfigurationError):
            CrashThresholds(S=2, t=1)

    @given(st.integers(0, 15))
    def test_majority_always_intersects(self, t):
        th = CrashThresholds(S=2 * t + 1, t=t)
        assert th.quorums_intersect()
        assert th.quorum <= th.wait_for


class TestByzantineThresholds:
    def test_optimally_resilient(self):
        th = ByzantineThresholds.optimally_resilient(2)
        assert th.S == 7
        assert th.quorum == 5
        assert th.certify == 3
        assert th.is_optimal

    def test_rejects_below_3t_plus_1(self):
        with pytest.raises(ConfigurationError):
            ByzantineThresholds(S=6, t=2)

    @given(st.integers(1, 20))
    def test_reply_sets_share_a_correct_object(self, t):
        th = ByzantineThresholds.optimally_resilient(t)
        assert th.reply_sets_intersect_correctly()

    @given(st.integers(1, 20))
    def test_single_freshness_witness_at_optimal_resilience(self, t):
        # The phenomenon both lower bounds exploit: exactly ONE correct
        # fresh holder is guaranteed inside any later reply set.
        th = ByzantineThresholds.optimally_resilient(t)
        assert th.freshness_witnesses() == 1

    @given(st.integers(1, 10), st.integers(0, 10))
    def test_more_objects_give_more_witnesses(self, t, extra):
        th = ByzantineThresholds(S=3 * t + 1 + extra, t=t)
        assert th.freshness_witnesses() == 1 + extra

    @given(st.integers(1, 20))
    def test_complete_phase_has_correct_holders(self, t):
        th = ByzantineThresholds.optimally_resilient(t)
        assert th.correct_holders_after_complete_phase() == t + 1


class TestSetSystems:
    def test_intersection_size_of_majorities(self):
        objects = object_ids(5)
        family = threshold_family(objects, 3)
        assert intersection_size(family) == 1

    def test_intersection_edge_cases(self):
        assert intersection_size([]) == 0
        only = threshold_family(object_ids(3), 3)
        assert intersection_size(only) == 3

    def test_availability(self):
        objects = object_ids(4)
        family = threshold_family(objects, 3)
        assert quorum_availability(family, frozenset({objects[0]}))
        assert not quorum_availability(family, frozenset(objects[:2]))

    def test_dissemination_needs_3t_plus_1(self):
        # S = 4, t = 1: quorums of size 3, fault sets of size 1.
        objects = object_ids(4)
        family = threshold_family(objects, 3)
        faults = threshold_fault_sets(objects, 1)
        assert is_dissemination_system(family, faults)

    def test_dissemination_fails_at_3t(self):
        objects = object_ids(3)
        family = threshold_family(objects, 2)
        faults = threshold_fault_sets(objects, 1)
        assert not is_dissemination_system(family, faults)

    def test_masking_needs_4t_plus_1(self):
        objects = object_ids(5)
        family = threshold_family(objects, 4)
        faults = threshold_fault_sets(objects, 1)
        assert is_masking_system(family, faults)

    def test_masking_fails_at_3t_plus_1(self):
        # The reason 3t+1 protocols need write-backs and certification
        # instead of raw masking quorums.
        objects = object_ids(4)
        family = threshold_family(objects, 3)
        faults = threshold_fault_sets(objects, 1)
        assert not is_masking_system(family, faults)

    def test_empty_family_rejected(self):
        with pytest.raises(ConfigurationError):
            is_masking_system([], [frozenset()])

    def test_threshold_family_validation(self):
        with pytest.raises(ConfigurationError):
            threshold_family(object_ids(3), 0)
        with pytest.raises(ConfigurationError):
            threshold_fault_sets(object_ids(3), 5)

    @pytest.mark.parametrize("t", [1, 2])
    def test_masking_threshold_property(self, t):
        """Masking holds at S = 4t+1 and fails at S = 4t (small t only:
        the check enumerates all quorum pairs × fault-set pairs)."""
        good = object_ids(4 * t + 1)
        assert is_masking_system(
            threshold_family(good, 3 * t + 1), threshold_fault_sets(good, t)
        )
        if t == 1:  # keep the combinatorics small
            bad = object_ids(4 * t)
            assert not is_masking_system(
                threshold_family(bad, 3 * t), threshold_fault_sets(bad, t)
            )
