"""Tests for the protocol / fault / scenario registries of the facade."""

import pytest

from repro.api import (
    Cluster,
    available_faults,
    available_protocols,
    fault_spec,
    get_fault,
    get_protocol,
    get_spec,
    protocol_specs,
)
from repro.errors import ConfigurationError
from repro.registers.base import RegisterProtocol
from repro.sim.process import FaultBehavior
from repro.workloads.scenarios import (
    FaultPlan,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
    standard_scenarios,
)


class TestProtocolRegistry:
    def test_registry_covers_the_whole_suite(self):
        names = available_protocols()
        assert len(names) >= 8
        for expected in (
            "abd", "mw-abd", "byz-safe", "fast-regular", "bounded-regular",
            "secret-token", "lucky-atomic", "atomic-fast-regular",
            "atomic-secret-token", "strawman-2r", "strawman-3r",
        ):
            assert expected in names

    def test_every_protocol_constructible_by_name(self):
        for name in available_protocols():
            protocol = get_protocol(name)
            assert isinstance(protocol, RegisterProtocol)

    def test_instances_are_fresh_not_shared(self):
        assert get_protocol("abd") is not get_protocol("abd")

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_metadata_min_size_passes_validation(self, t):
        for spec in protocol_specs():
            get_protocol(spec.name).validate_configuration(spec.min_size(t), t)

    @pytest.mark.parametrize("t", [1, 2])
    def test_one_object_below_minimum_is_rejected(self, t):
        for spec in protocol_specs():
            with pytest.raises(ConfigurationError):
                get_protocol(spec.name).validate_configuration(spec.min_size(t) - 1, t)

    def test_aliases_resolve_to_the_same_spec(self):
        assert get_spec("lucky") is get_spec("lucky-atomic")
        assert get_spec("atomic(fast-regular)") is get_spec("atomic-fast-regular")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="abd"):
            get_protocol("paxos")

    def test_metadata_is_serializable(self):
        import json

        for spec in protocol_specs():
            payload = json.dumps(spec.to_dict())
            assert spec.name in payload

    def test_scenarios_metadata_names_registered_scenarios(self):
        for spec in protocol_specs():
            for scenario in spec.scenarios:
                assert scenario in available_scenarios(), (spec.name, scenario)

    def test_advertised_consistency_check_holds_end_to_end(self):
        """Each protocol satisfies its own semantics rung on a real run."""
        for spec in protocol_specs():
            result = (
                Cluster(spec.name, t=1)
                .with_workload(operations=8, spacing=150)
                .check(spec.default_check())
                .run(trials=1, seed=3)
            )
            assert result.ok, (spec.name, result.failures())
            assert result.incomplete == 0

    def test_atomic_protocols_run_under_stale_echo_by_name(self):
        """The acceptance-criterion loop: structured results under faults."""
        atomic = [s for s in protocol_specs() if s.semantics == "atomic"]
        assert atomic
        for spec in atomic:
            result = (
                Cluster(spec.name, t=2)
                .with_faults("stale-echo", count=1)
                .check("atomicity")
                .run(trials=3, seed=1)
            )
            assert len(result.trials) == 3
            for trial in result.trials:
                assert trial.write_rounds or trial.read_rounds
                assert "atomicity" in trial.checks
            assert result.faults.effective == 1


class TestFaultRegistry:
    def test_builtin_behaviours_present(self):
        names = available_faults()
        for expected in ("crash", "silent", "stale-echo", "fabricating", "flaky"):
            assert expected in names

    def test_instances_are_behaviours_and_fresh(self):
        for name in available_faults():
            behavior = get_fault(name)
            assert isinstance(behavior, FaultBehavior)
            assert behavior is not get_fault(name)

    def test_maker_kwargs_forwarded(self):
        behavior = get_fault("crash", survive_messages=7)
        assert behavior.survive_messages == 7

    def test_aliases(self):
        assert fault_spec("replay") is fault_spec("stale-echo")
        assert fault_spec("fabricate") is fault_spec("fabricating")

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="stale-echo"):
            get_fault("gremlin")


class TestScenarioRegistry:
    def test_standard_scenarios_are_registered(self):
        assert set(s.name for s in standard_scenarios(2)) <= set(available_scenarios())

    def test_get_scenario_builds_for_threshold(self):
        scenario = get_scenario("crash", t=3)
        assert scenario.fault_plan.count == 3
        assert len(scenario.fault_plan.behaviors(3)) == 3

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="fault-free"):
            get_scenario("apocalypse", t=1)

    def test_custom_scenario_registration(self):
        register_scenario(
            "one-silent",
            lambda t: Scenario(
                name="one-silent",
                fault_plan=FaultPlan("one-silent", 1, lambda: get_fault("silent")),
            ),
            overwrite=True,
        )
        assert "one-silent" in available_scenarios()
        result = Cluster("fast-regular", t=2).with_scenario("one-silent").run(seed=5)
        assert result.faults.effective == 1

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scenario("crash", lambda t: get_scenario("crash", t))


class TestFaultPlanClamp:
    def test_effective_count_reports_the_clamp(self):
        plan = FaultPlan("crash", 5, lambda: get_fault("crash"))
        assert plan.effective_count(2) == 2
        assert len(plan.behaviors(2)) == 2

    def test_strict_plan_raises_instead_of_clamping(self):
        plan = FaultPlan("crash", 5, lambda: get_fault("crash"), strict=True)
        with pytest.raises(ConfigurationError, match="strict"):
            plan.behaviors(2)

    def test_strict_plan_within_threshold_is_fine(self):
        plan = FaultPlan("crash", 2, lambda: get_fault("crash"), strict=True)
        assert len(plan.behaviors(2)) == 2

    def test_empty_plan_has_no_effect(self):
        plan = FaultPlan("none", 0, None, strict=True)
        assert plan.effective_count(1) == 0
        assert plan.behaviors(1) == {}
