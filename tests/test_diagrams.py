"""Tests for the Figure 1/2-style diagram renderer."""

from repro.core.diagrams import legend, render_chain, render_run
from repro.core.read_bound import ReadLowerBoundConstruction
from repro.registers.strawman import TwoRoundReadProtocol


def run_chain():
    construction = ReadLowerBoundConstruction(
        lambda: TwoRoundReadProtocol(write_rounds=1), t=1
    )
    return construction.execute(keep_runs=True)


class TestRenderRun:
    def test_grid_contains_all_blocks(self):
        outcome = run_chain()
        text = render_run(outcome.kept_runs[0])
        for block in ("B1", "B2", "B3", "B4"):
            assert block in text

    def test_malicious_block_marked(self):
        outcome = run_chain()
        pr1 = outcome.kept_runs[0]  # B1 forges in pr1
        text = render_run(pr1)
        assert "@B1" in text

    def test_terminated_vs_pending_cells(self):
        outcome = run_chain()
        # A Δ run has unterminated rounds ([~~]); pr1 has only terminated.
        final = render_run(outcome.final_run)
        assert "[~~]" in final
        assert "[##]" in final

    def test_forgery_footnotes(self):
        outcome = run_chain()
        text = render_run(outcome.kept_runs[0])
        assert "forgeries:" in text
        assert "restore to state before" in text

    def test_returns_reported(self):
        outcome = run_chain()
        assert "rd1 -> 1" in render_run(outcome.kept_runs[0])

    def test_title_included(self):
        outcome = run_chain()
        assert render_run(outcome.kept_runs[0], title="(a) pr1").startswith("(a) pr1")


class TestRenderChain:
    def test_lettered_subfigures(self):
        outcome = run_chain()
        text = render_chain(outcome.kept_runs[:3], caption="Figure 1")
        assert text.startswith("Figure 1")
        assert "(a)" in text and "(b)" in text and "(c)" in text

    def test_legend_mentions_all_cells(self):
        text = legend()
        assert "[##]" in text and "[~~]" in text and "@" in text
