"""Integration matrix: every protocol × scenario × random workload.

The central promise of the library — each protocol meets its advertised
consistency level under every in-model adversary regime — checked end to
end on seeded random workloads.  This is where benchmark configurations are
kept honest by the test suite.
"""

import pytest

from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.registers.bounded_regular import BoundedRegularProtocol
from repro.registers.fast_regular import FastRegularProtocol
from repro.registers.lucky import LuckyAtomicProtocol
from repro.registers.secret_token import SecretTokenProtocol
from repro.registers.transform_atomic import RegularToAtomicProtocol
from repro.sim.network import RandomDelivery
from repro.spec.atomicity import check_swmr_atomicity
from repro.spec.regularity import check_swmr_regularity
from repro.workloads.generator import WorkloadGenerator, apply_plan
from repro.workloads.scenarios import standard_scenarios

#: (factory, consistency checker, scenarios the protocol's model covers)
PROTOCOLS = [
    pytest.param(
        lambda n: AbdProtocol(),
        check_swmr_atomicity,
        ("fault-free", "crash", "silent"),
        id="abd",
    ),
    pytest.param(
        lambda n: FastRegularProtocol(trust_model="replay"),
        check_swmr_regularity,
        ("fault-free", "crash", "silent", "replay"),
        id="fast-regular-replay",
    ),
    pytest.param(
        lambda n: FastRegularProtocol(trust_model="unauthenticated"),
        check_swmr_regularity,
        ("fault-free", "crash", "silent", "fabricate"),
        id="fast-regular-unauth",
    ),
    pytest.param(
        lambda n: BoundedRegularProtocol(),
        check_swmr_regularity,
        ("fault-free", "crash", "silent", "fabricate"),
        id="bounded-regular",
    ),
    pytest.param(
        lambda n: SecretTokenProtocol(),
        check_swmr_regularity,
        ("fault-free", "crash", "silent", "replay", "fabricate"),
        id="secret-token",
    ),
    pytest.param(
        lambda n: RegularToAtomicProtocol(lambda: FastRegularProtocol("replay"), n_readers=n),
        check_swmr_atomicity,
        ("fault-free", "crash", "silent", "replay"),
        id="atomic-from-fast-regular",
    ),
    pytest.param(
        lambda n: RegularToAtomicProtocol(lambda: SecretTokenProtocol(), n_readers=n),
        check_swmr_atomicity,
        ("fault-free", "crash", "silent", "replay", "fabricate"),
        id="atomic-from-secret-token",
    ),
    pytest.param(
        lambda n: LuckyAtomicProtocol(),
        check_swmr_atomicity,
        ("fault-free", "crash", "silent", "replay", "fabricate"),
        id="lucky-atomic",
    ),
]


@pytest.mark.parametrize("factory,checker,covered", PROTOCOLS)
@pytest.mark.parametrize("seed", [0, 1])
def test_protocol_meets_spec_under_every_covered_scenario(factory, checker, covered, seed):
    n_readers = 2
    for scenario in standard_scenarios(t=1):
        if scenario.name not in covered:
            continue
        protocol = factory(n_readers)
        system = RegisterSystem(
            protocol,
            t=1,
            n_readers=n_readers,
            behaviors=scenario.fault_plan.behaviors(t=1),
        )
        plans = WorkloadGenerator(seed=seed, n_readers=n_readers, spacing=120).plan(8)
        apply_plan(system, plans)
        system.run()
        history = system.history()
        complete = [op for op in history.records if op.complete]
        assert len(complete) == 8, (scenario.name, "wait-freedom: all ops complete")
        verdict = checker(history)
        assert verdict.ok, f"{scenario.name}: {verdict.explanation}"


@pytest.mark.parametrize("factory,checker,covered", PROTOCOLS)
def test_protocol_meets_spec_under_concurrency(factory, checker, covered):
    """Tight spacing: operations overlap heavily; delivery is randomized."""
    n_readers = 3
    protocol = factory(n_readers)
    system = RegisterSystem(
        protocol, t=1, n_readers=n_readers,
        policy=RandomDelivery(seed=13, max_latency=5),
    )
    plans = WorkloadGenerator(seed=29, n_readers=n_readers, spacing=8).plan(10)
    apply_plan(system, plans)
    system.run()
    history = system.history()
    verdict = checker(history)
    assert verdict.ok, verdict.explanation


def test_wait_freedom_with_max_byzantine_population():
    """t silent + t-… no: exactly t faulty of 3t+1, clients never block."""
    from repro.faults.adversary import SilentBehavior
    from repro.types import object_id

    t = 3
    system = RegisterSystem(
        FastRegularProtocol(), t=t,
        behaviors={object_id(i): SilentBehavior() for i in range(1, t + 1)},
    )
    system.write("a", at=0)
    system.read(1, at=60)
    system.read(2, at=120)
    system.run()
    assert len(system.history().complete()) == 3
