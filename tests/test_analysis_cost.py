"""Tests for latency accounting, table rendering, and the cost model."""

import pytest

from repro.analysis.metrics import measure_latency
from repro.analysis.tables import Table, format_table
from repro.cost.model import CloudCostModel
from repro.errors import ConfigurationError
from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.workloads.generator import WorkloadGenerator


class TestMetrics:
    def test_abd_latency_report(self):
        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        plans = WorkloadGenerator(seed=1, spacing=60).plan(10)
        report = measure_latency(system, plans, scenario="fault-free")
        assert report.worst_write == 1
        assert report.worst_read == 2
        assert report.incomplete == 0
        assert report.mean_read == 2.0

    def test_wire_cross_check_active(self):
        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        plans = WorkloadGenerator(seed=2, spacing=60).plan(6)
        report = measure_latency(system, plans, verify_against_wire=True)
        assert report.worst_read == 2  # would have raised on mismatch

    def test_report_row_formatting(self):
        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        report = measure_latency(system, WorkloadGenerator(seed=3, spacing=60).plan(4),
                                 scenario="x")
        row = report.row()
        assert row["protocol"] == "abd"
        assert "/" in row["writes (worst/mean)"]

    def test_empty_report_defaults(self):
        system = RegisterSystem(AbdProtocol(), t=1, n_readers=2)
        report = measure_latency(system, [])
        assert report.worst_read == 0
        assert report.mean_write == 0.0


class TestTables:
    def test_format_alignment(self):
        text = format_table("T", ["a", "bb"], [{"a": "1", "bb": "2"}, {"a": "333"}])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table_add_and_render(self):
        table = Table(title="x", columns=("c",))
        table.add({"c": "v"})
        assert "v" in table.render()

    def test_missing_cells_render_empty(self):
        text = format_table("T", ["a", "b"], [{"a": "1"}])
        assert text.splitlines()[-1].startswith("1")


class TestCostModel:
    def test_requests_scale_with_rounds_and_objects(self):
        model = CloudCostModel(S=4)
        assert model.operation(2).requests == 8
        assert model.operation(4).requests == 16

    def test_protocol_cost_ratio_is_rounds_ratio(self):
        """The paper's motivation: extra rounds are proportional dollars."""
        model = CloudCostModel(S=4)
        atomic_read = model.operation(4)
        token_read = model.operation(3)
        assert atomic_read.dollars / token_read.dollars == pytest.approx(4 / 3)

    def test_latency_scales_with_rtt(self):
        model = CloudCostModel(S=4, rtt_ms=50.0)
        assert model.operation(2).latency_ms == 100.0

    def test_workload_total(self):
        model = CloudCostModel(S=4, price_per_request=1e-6)
        total = model.workload(reads=10, read_rounds=4, writes=5, write_rounds=2)
        assert total == pytest.approx((10 * 16 + 5 * 8) * 1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CloudCostModel(S=0)
        with pytest.raises(ConfigurationError):
            CloudCostModel(S=1, rtt_ms=-1)
        with pytest.raises(ConfigurationError):
            CloudCostModel(S=1).operation(-1)

    def test_row_formatting(self):
        row = CloudCostModel(S=4).operation(2).row()
        assert row["rounds"] == "2"
        assert "cost ($/Mop)" in row
