"""Tests for the system-backend registry and the three built-in backends."""

import json

import pytest

from repro.api import (
    Cluster,
    available_backends,
    backend_specs,
    get_backend_spec,
    get_spec,
)
from repro.errors import ConfigurationError
from repro.registers.base import RegisterSystem
from repro.registers.sharded import ShardedRegisterSystem
from repro.registers.transform_mwmr import (
    MultiWriterRegisterSystem,
    NativeMultiWriterSystem,
)


def _payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= {"single", "multi-writer", "sharded"}

    def test_aliases_resolve(self):
        assert get_backend_spec("mwmr") is get_backend_spec("multi-writer")
        assert get_backend_spec("swmr") is get_backend_spec("single")

    def test_unknown_backend_rejected_with_listing(self):
        with pytest.raises(ConfigurationError, match="sharded"):
            get_backend_spec("raft")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            Cluster("abd", backend="paxos")

    def test_metadata_is_serializable(self):
        for spec in backend_specs():
            payload = json.dumps(spec.to_dict())
            assert spec.name in payload

    def test_protocols_advertise_their_backend(self):
        assert get_spec("abd").backend == "single"
        assert get_spec("mwmr-fast-regular").backend == "multi-writer"
        assert get_spec("mwmr-secret-token").backend == "multi-writer"


class TestDefaultBackendEquivalence:
    def test_explicit_single_equals_default(self):
        base = Cluster("abd", t=1).check("atomicity").run(trials=2, seed=4, keep_history=False)
        explicit = (
            Cluster("abd", t=1, backend="single")
            .check("atomicity")
            .run(trials=2, seed=4, keep_history=False)
        )
        assert _payload(base) == _payload(explicit)

    def test_default_to_dict_carries_no_backend_metadata(self):
        payload = Cluster("abd").run(seed=0).to_dict()
        assert "backend" not in payload and "keys" not in payload

    def test_build_system_returns_the_wrapped_harness(self):
        assert isinstance(Cluster("abd").build_system(), RegisterSystem)
        assert isinstance(
            Cluster("mwmr-fast-regular").build_system(), MultiWriterRegisterSystem
        )
        assert isinstance(
            Cluster("mw-abd", backend="multi-writer").build_system(),
            NativeMultiWriterSystem,
        )
        assert isinstance(
            Cluster("abd", backend="sharded", keys=3).build_system(),
            ShardedRegisterSystem,
        )


class TestBackendValidation:
    def test_mwmr_stack_rejected_on_single_backend(self):
        with pytest.raises(ConfigurationError, match="multi-writer"):
            Cluster("mwmr-fast-regular", backend="single").run(seed=0)

    def test_single_writer_protocol_rejected_on_multi_writer_backend(self):
        with pytest.raises(ConfigurationError, match="single-writer"):
            Cluster("fast-regular", backend="multi-writer").run(seed=0)

    def test_keys_need_a_keyed_backend(self):
        with pytest.raises(ConfigurationError, match="sharded"):
            Cluster("abd", keys=4)
        with pytest.raises(ConfigurationError, match="sharded"):
            Cluster("mwmr-fast-regular", keys=4)

    def test_n_writers_needs_a_multi_writer_backend(self):
        with pytest.raises(ConfigurationError, match="multi-writer"):
            Cluster("abd", n_writers=3)

    def test_key_layout_validation(self):
        with pytest.raises(ConfigurationError, match="at least one key"):
            Cluster("abd", backend="sharded", keys=0)
        with pytest.raises(ConfigurationError, match="duplicate"):
            Cluster("abd", backend="sharded", keys=("a", "a"))
        with pytest.raises(ConfigurationError, match="'/'"):
            Cluster("abd", backend="sharded", keys=("a/b",))


class TestMultiWriterBackend:
    def test_mwmr_stack_runs_checks_and_accounts_rounds(self):
        result = (
            Cluster("mwmr-fast-regular", t=1, n_readers=2, n_writers=3)
            .with_workload(operations=8, spacing=100)
            .check("atomicity", "linearizability")
            .run(trials=2, seed=6, keep_history=False)
        )
        assert result.ok
        # Section 5 accounting: reads r + w = 4, writes (r + w) + w = 6.
        assert result.worst_read == 4
        assert result.worst_write == 6
        payload = result.to_dict()
        assert payload["backend"] == "multi-writer"
        assert payload["writers"] == 3

    def test_advertised_rounds_match_measured(self):
        spec = get_spec("mwmr-fast-regular")
        result = (
            Cluster(spec.name, t=1)
            .with_workload(operations=6, spacing=120, reads=0.5)
            .run(trials=1, seed=3)
        )
        assert result.worst_write == spec.write_rounds
        assert result.worst_read == spec.read_rounds

    def test_multiple_writers_actually_write(self):
        result = (
            Cluster("mwmr-fast-regular", t=1, n_writers=3)
            .with_workload(operations=12, spacing=90, reads=0.3)
            .run(trials=1, seed=1)
        )
        writers = {
            record.client
            for record in result.trials[0].history.records
            if record.kind == "write"
        }
        assert len(writers) > 1

    def test_native_mw_abd_through_the_backend(self):
        result = (
            Cluster("mw-abd", t=1, backend="multi-writer", n_writers=3)
            .with_workload(operations=10, spacing=80)
            .check("atomicity", "linearizability")
            .run(trials=2, seed=9, keep_history=False)
        )
        assert result.ok
        assert result.worst_write == 2 and result.worst_read == 2

    def test_mwmr_survives_stale_echo(self):
        result = (
            Cluster("mwmr-fast-regular", t=1)
            .with_faults("stale-echo", count=1)
            .with_workload(operations=8, spacing=100)
            .check("atomicity")
            .run(trials=2, seed=2, keep_history=False)
        )
        assert result.ok
        assert result.faults.effective == 1


class TestShardedBackend:
    def test_runs_and_checks_per_key(self):
        result = (
            Cluster("abd", t=1, backend="sharded", keys=4)
            .with_workload(operations=16, spacing=40)
            .check("atomicity")
            .run(trials=2, seed=8, keep_history=False)
        )
        assert result.ok
        verdict = result.trials[0].checks["atomicity"]
        assert verdict.per_key == {"k1": True, "k2": True, "k3": True, "k4": True}
        assert verdict.to_dict()["per_key"]["k1"] is True
        payload = result.to_dict()
        assert payload["backend"] == "sharded" and payload["keys"] == 4

    def test_shards_add_capacity_not_latency(self):
        # Per-shard rounds are the substrate's own: ABD stays 1W/2R.
        result = (
            Cluster("abd", t=1, backend="sharded", keys=6)
            .with_workload(operations=18, spacing=50)
            .run(trials=1, seed=5)
        )
        assert result.worst_write == 1 and result.worst_read == 2

    def test_named_keys_and_explicit_plans(self):
        result = (
            Cluster("abd", backend="sharded", keys=("users", "orders"))
            .with_operations([
                ("write", "alice", 0, "users"),
                ("write", "o-1", 0, "orders"),
                ("read", 1, 60, "users"),
                ("read", 2, 60, "orders"),
            ])
            .check("atomicity")
            .run(trials=1, seed=0)
        )
        assert result.ok
        verdict = result.trials[0].checks["atomicity"]
        assert set(verdict.per_key) == {"users", "orders"}
        reads = [r for r in result.trials[0].history.records if r.kind == "read"]
        assert sorted(r.value for r in reads) == ["alice", "o-1"]

    def test_sharded_over_composite_protocol(self):
        # Nested multiplexing: each shard is itself a regular→atomic stack.
        result = (
            Cluster("atomic-fast-regular", t=1, backend="sharded", keys=2)
            .with_faults("stale-echo", count=1)
            .with_workload(operations=8, spacing=80)
            .check("atomicity")
            .run(trials=1, seed=4)
        )
        assert result.ok
        assert result.worst_write == 2 and result.worst_read == 4

    def test_sharded_failure_names_the_key(self):
        # One fabricating object defeats ABD on whichever shards it hits.
        # The stock fabricator inflates flat payloads only, so give it a
        # multiplex-aware one that forges every shard's inner reply.
        from repro.faults.byzantine import _inflate_timestamps

        def inflate_nested(message, honest):
            calls = honest.get("calls")
            if isinstance(calls, dict):
                return {"calls": {
                    name: _inflate_timestamps(message, reply)
                    for name, reply in calls.items()
                }}
            return _inflate_timestamps(message, honest)

        result = (
            Cluster("abd", t=1, backend="sharded", keys=2)
            .with_faults("fabricating", fabricate=inflate_nested)
            .with_workload(operations=16, spacing=20)
            .check("atomicity")
            .run(trials=4, seed=2, keep_history=False)
        )
        failures = [v for _, v in result.failures()]
        assert failures  # the adversary actually bites
        assert any("[k" in v.explanation for v in failures)
        for verdict in failures:
            assert verdict.per_key is not None and not all(verdict.per_key.values())

    def test_plan_without_key_rejected(self):
        cluster = Cluster("abd", backend="sharded", keys=2).with_operations(
            [("write", "x", 0)]
        )
        with pytest.raises(ConfigurationError, match="key"):
            cluster.run(seed=0)

    def test_keyed_plan_rejected_on_single_backend(self):
        cluster = Cluster("abd").with_operations([("write", "x", 0, "k1")])
        with pytest.raises(ConfigurationError, match="sharded"):
            cluster.run(seed=0)


class TestShardedSystemDirectly:
    def test_histories_partition_the_combined_history(self):
        from repro.registers.abd import AbdProtocol

        system = ShardedRegisterSystem(AbdProtocol, keys=("a", "b"), t=1, n_readers=2)
        system.write("a", "x", at=0)
        system.write("b", "y", at=0)
        system.read("a", 1, at=60)
        system.read("b", 2, at=60)
        system.run()
        per_key = system.histories()
        assert {len(h.records) for h in per_key.values()} == {2}
        total = sum(len(h.records) for h in per_key.values())
        assert total == len(system.history().records)
        assert per_key["a"].reads()[0].value == "x"
        assert per_key["b"].reads()[0].value == "y"

    def test_each_shard_has_its_own_writer(self):
        from repro.registers.abd import AbdProtocol

        system = ShardedRegisterSystem(AbdProtocol, keys=("a", "b"), t=1)
        # Concurrent writes to different shards are legal (distinct writers)…
        system.write("a", "x", at=0)
        system.write("b", "y", at=0)
        system.run()
        clients = {r.client for r in system.history().records}
        assert len(clients) == 2

    def test_unknown_key_rejected(self):
        from repro.registers.abd import AbdProtocol

        system = ShardedRegisterSystem(AbdProtocol, keys=("a",), t=1)
        with pytest.raises(ConfigurationError, match="unknown shard"):
            system.write("z", "x")

    def test_bottom_not_writable(self):
        from repro.registers.abd import AbdProtocol
        from repro.types import BOTTOM

        system = ShardedRegisterSystem(AbdProtocol, keys=("a",), t=1)
        with pytest.raises(ConfigurationError, match="reserved"):
            system.write("a", BOTTOM)
