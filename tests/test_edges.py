"""Edge cases across modules that the focused suites do not reach."""

import pytest

from repro.errors import ConfigurationError, ConstructionEscape
from repro.registers.abd import AbdProtocol
from repro.registers.base import RegisterSystem
from repro.registers.fast_regular import FastRegularProtocol
from repro.types import BOTTOM, object_id


class TestRegisterSystemGuards:
    def test_bottom_cannot_be_written(self):
        system = RegisterSystem(AbdProtocol(), t=1, n_readers=1)
        with pytest.raises(ConfigurationError):
            system.write(BOTTOM)

    def test_unknown_object_behaviour_rejected(self):
        from repro.faults.adversary import SilentBehavior

        with pytest.raises(ConfigurationError):
            RegisterSystem(AbdProtocol(), t=1, S=3, behaviors={object_id(9): SilentBehavior()})

    def test_allow_overfault_escape_hatch(self):
        from repro.faults.adversary import SilentBehavior

        system = RegisterSystem(
            FastRegularProtocol(), t=1, n_readers=1,
            behaviors={object_id(1): SilentBehavior(), object_id(2): SilentBehavior()},
            allow_overfault=True,
        )
        # With t+1 silent objects wait-freedom is forfeit: the read stalls.
        system.write("a", at=0)
        system.run()
        assert system.simulator.pending_operations()


class TestConstructionEscapeShape:
    def test_fields_preserved(self):
        escape = ConstructionEscape(step="pr1:rd1", reason="round rule rejects")
        assert escape.step == "pr1:rd1"
        assert escape.reason == "round rule rejects"
        assert "pr1:rd1" in str(escape)


class TestScenariosFreeze:
    def test_freeze_stale_echo_refreezes_at_current_state(self):
        from repro.faults.byzantine import StaleEchoBehavior
        from repro.workloads.scenarios import freeze_stale_echo

        system = RegisterSystem(FastRegularProtocol(), t=1, n_readers=1)
        system.write("a", at=0)
        system.run()
        rogue = system.server(object_id(1))
        behavior = StaleEchoBehavior(frozen_state={})
        rogue.behavior = behavior
        freeze_stale_echo(system.servers, {object_id(1): behavior})
        system.write("b", at=10)
        system.read(1, at=80)
        system.run()
        # The rogue now echoes ("a"), an old-but-genuine state, yet the
        # read returns the fresh value.
        assert system.history().reads()[0].value == "b"


class TestLinearizationWitnessEdges:
    def test_pending_write_dropped_in_witness(self):
        from repro.spec.history import History, OperationRecord
        from repro.spec.linearizability import linearization_witness
        from repro.types import fresh_operation_id, reader_id, writer_id

        records = [
            OperationRecord(
                op_id=fresh_operation_id(writer_id(), "write"), kind="write",
                client=writer_id(), invoked_at=1, invocation_step=1,
                value="ghost", responded_at=None, response_step=None,
            ),
            OperationRecord(
                op_id=fresh_operation_id(reader_id(1), "read"), kind="read",
                client=reader_id(1), invoked_at=2, invocation_step=2,
                value=BOTTOM, responded_at=3, response_step=3,
            ),
        ]
        witness = linearization_witness(History(records))
        assert witness is not None
        # The read of ⊥ must come before any installation of the pending
        # write (which may be dropped entirely or linearized afterwards).
        kinds = [w.kind for w in witness]
        assert kinds[0] == "read"
        assert kinds in (["read"], ["read", "write"])


class TestProtocolDescribe:
    def test_describe_mentions_rounds(self):
        text = FastRegularProtocol().describe()
        assert "2-round writes" in text
        assert "2-round reads" in text

    def test_describe_unbounded_reads(self):
        from repro.registers.bounded_regular import BoundedRegularProtocol

        assert "unbounded" in BoundedRegularProtocol().describe()


class TestScriptedRunAgainstEventLoopConsistency:
    def test_same_protocol_same_answers(self):
        """A sequential write→read gives identical results through the
        scripted engine and the event-loop simulator."""
        from repro.core.blocks import read_bound_partition
        from repro.core.runs import (
            Deliver,
            ScriptedRun,
            StartRead,
            StartWrite,
            TerminateRound,
        )
        from repro.registers.strawman import TwoRoundReadProtocol

        partition = read_bound_partition(t=1)
        runner = ScriptedRun(lambda: TwoRoundReadProtocol(write_rounds=2),
                             partition, t=1, n_readers=1)
        script = [StartWrite("write", "x")]
        for r in (1, 2):
            script += [Deliver("write", r, ("B1", "B2", "B3", "B4")),
                       TerminateRound("write", r)]
        script += [StartRead("rd", reader=1)]
        for r in (1, 2):
            script += [Deliver("rd", r, ("B1", "B2", "B3", "B4")),
                       TerminateRound("rd", r)]
        scripted = runner.execute("seq", script)

        system = RegisterSystem(TwoRoundReadProtocol(write_rounds=2), t=1, S=4, n_readers=1)
        system.write("x", at=0)
        system.read(1, at=60)
        system.run()
        event_loop_value = system.history().reads()[0].value

        assert scripted.returned("rd") == event_loop_value == "x"
