"""Tests for the lucky (best-case fast) atomic register."""

import pytest

from repro.faults.adversary import SilentBehavior
from repro.faults.byzantine import StaleEchoBehavior
from repro.registers.base import RegisterSystem
from repro.registers.lucky import LuckyAtomicProtocol
from repro.sim.network import RandomDelivery
from repro.spec.atomicity import check_swmr_atomicity
from repro.types import object_id


def make_system(t=1, behaviors=None, policy=None, n_readers=2):
    return RegisterSystem(LuckyAtomicProtocol(), t=t, n_readers=n_readers,
                          behaviors=behaviors, policy=policy)


class TestLuckyPaths:
    def test_fault_free_reads_and_writes_take_one_round(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("write") == 1
        assert system.max_rounds("read") == 1
        assert system.history().reads()[0].value == "a"

    def test_one_silent_object_forces_slow_path(self):
        """The best-case cliff: a single fault ends the luck."""
        system = make_system(behaviors={object_id(3): SilentBehavior()})
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.max_rounds("read") == 3
        assert system.history().reads()[0].value == "a"

    def test_divergent_byzantine_forces_slow_read(self):
        system = make_system()
        system.write("a", at=0)
        system.run()
        rogue = system.server(object_id(2))
        rogue.behavior = StaleEchoBehavior(frozen_state={})  # echoes pristine ⊥
        system.read(1, at=10)
        system.run()
        read_op = [o for o in system.simulator.completed_operations()
                   if o.op_id.kind == "read"][0]
        assert read_op.rounds_used == 3
        assert read_op.result == "a"


class TestLuckyAtomicity:
    def test_sequential_chain_atomic(self):
        system = make_system()
        system.write("a", at=0)
        system.read(1, at=50)
        system.write("b", at=100)
        system.read(2, at=150)
        system.read(1, at=200)
        system.run()
        history = system.history()
        assert [r.value for r in history.reads()] == ["a", "b", "b"]
        assert check_swmr_atomicity(history).ok

    @pytest.mark.parametrize("seed", range(4))
    def test_atomic_under_random_delays(self, seed):
        system = make_system(policy=RandomDelivery(seed=seed, max_latency=7), n_readers=3)
        system.write("a", at=0)
        system.read(1, at=4)
        system.write("b", at=60)
        system.read(2, at=63)
        system.read(3, at=120)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        assert verdict.ok, verdict.explanation

    @pytest.mark.parametrize("seed", range(3))
    def test_atomic_with_stale_byzantine_and_delays(self, seed):
        system = make_system(policy=RandomDelivery(seed=seed, max_latency=6))
        rogue = system.server(object_id(1))
        rogue.behavior = StaleEchoBehavior(frozen_state={})
        system.write("a", at=0)
        system.read(1, at=5)
        system.write("b", at=70)
        system.read(2, at=74)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        assert verdict.ok, verdict.explanation

    def test_unlucky_write_still_readable(self):
        """A write that fast-fails still installs its value durably."""
        system = make_system(behaviors={object_id(4): SilentBehavior()})
        system.write("a", at=0)
        system.write("b", at=80)
        system.read(1, at=160)
        system.run()
        assert system.history().reads()[0].value == "b"


class TestGracefulDegradation:
    def test_round_ladder(self):
        """The [16]-style ladder: 1 round lucky, 3 rounds under faults."""
        lucky = make_system()
        lucky.write("a", at=0)
        lucky.read(1, at=60)
        lucky.run()
        unlucky = make_system(behaviors={object_id(1): SilentBehavior()})
        unlucky.write("a", at=0)
        unlucky.read(1, at=60)
        unlucky.run()
        assert lucky.max_rounds("read") == 1
        assert unlucky.max_rounds("read") == 3
        assert lucky.max_rounds("write") == 1
        assert unlucky.max_rounds("write") == 2
