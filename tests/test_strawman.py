"""Tests for the strawman victims: plausible in benign runs, doomed by design."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversary import SilentBehavior
from repro.registers.base import RegisterSystem
from repro.registers.strawman import ThreeRoundReadProtocol, TwoRoundReadProtocol
from repro.sim.network import RandomDelivery
from repro.spec.atomicity import check_swmr_atomicity
from repro.types import object_id


class TestTwoRoundRead:
    def test_round_counts(self):
        system = RegisterSystem(TwoRoundReadProtocol(write_rounds=3), t=1, S=4)
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("write") == 3
        assert system.max_rounds("read") == 2

    def test_atomic_in_benign_runs(self):
        system = RegisterSystem(TwoRoundReadProtocol(), t=1, S=4, n_readers=3,
                                policy=RandomDelivery(seed=5, max_latency=6))
        system.write("a", at=0)
        system.read(1, at=3)
        system.write("b", at=40)
        system.read(2, at=42)
        system.read(3, at=100)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        assert verdict.ok, verdict.explanation

    def test_atomic_with_silent_fault(self):
        system = RegisterSystem(TwoRoundReadProtocol(), t=1, S=4,
                                behaviors={object_id(4): SilentBehavior()})
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert check_swmr_atomicity(system.history()).ok

    def test_phase_counter_distinguishes_write_rounds(self):
        """σ_i states must be pairwise distinct even with one written value."""
        system = RegisterSystem(TwoRoundReadProtocol(write_rounds=3), t=1, S=4)
        system.write("a", at=0)
        system.run()
        assert system.server(object_id(1)).state["phase"] == 3

    def test_runs_at_4t_objects(self):
        system = RegisterSystem(TwoRoundReadProtocol(), t=2, S=8)
        system.write("a", at=0)
        system.read(1, at=50)
        system.run()
        assert system.history().reads()[0].value == "a"

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TwoRoundReadProtocol(write_rounds=0)
        with pytest.raises(ConfigurationError):
            RegisterSystem(TwoRoundReadProtocol(), t=1, S=3)
        with pytest.raises(ConfigurationError):
            RegisterSystem(TwoRoundReadProtocol(), t=0, S=4)


class TestThreeRoundRead:
    def test_round_counts(self):
        system = RegisterSystem(ThreeRoundReadProtocol(write_rounds=2), t=1)
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        assert system.max_rounds("write") == 2
        assert system.max_rounds("read") == 3

    def test_atomic_in_benign_runs(self):
        system = RegisterSystem(ThreeRoundReadProtocol(), t=1, n_readers=2,
                                policy=RandomDelivery(seed=9, max_latency=5))
        system.write("a", at=0)
        system.read(1, at=4)
        system.write("b", at=50)
        system.read(2, at=52)
        system.run()
        verdict = check_swmr_atomicity(system.history())
        assert verdict.ok, verdict.explanation

    def test_write_back_in_third_round(self):
        system = RegisterSystem(ThreeRoundReadProtocol(), t=1)
        system.write("a", at=0)
        system.read(1, at=60)
        system.run()
        write_backs = [s.state["wb"].value for s in system.servers if s.state["wb"].value != "⊥"]
        assert write_backs and all(v == "a" for v in write_backs)
